#include "learning/feedback.hpp"

#include <utility>

namespace trident::learning {

FeedbackQueue::FeedbackQueue(std::size_t capacity)
    : capacity_(capacity == 0 ? 1 : capacity) {}

bool FeedbackQueue::push(FeedbackSample sample) {
  {
    std::lock_guard lock(mutex_);
    ++offered_;
    if (closed_ || queue_.size() >= capacity_) {
      ++dropped_;
      return false;
    }
    ++enqueued_;
    queue_.push_back(std::move(sample));
  }
  // notify_all, not notify_one: a wait_for_depth() waiter parked for a
  // full pulse and a pop_batch() popper may both be waiting, and waking
  // only one could strand the other past its wake condition.
  not_empty_cv_.notify_all();
  return true;
}

std::vector<FeedbackSample> FeedbackQueue::pop_batch(
    std::size_t max_batch, std::chrono::microseconds max_wait) {
  std::vector<FeedbackSample> batch;
  if (max_batch == 0) {
    return batch;
  }
  std::unique_lock lock(mutex_);
  if (max_wait.count() > 0) {
    ++poppers_waiting_;
    not_empty_cv_.wait_for(lock, max_wait,
                           [&] { return closed_ || !queue_.empty(); });
    --poppers_waiting_;
  }
  while (!queue_.empty() && batch.size() < max_batch) {
    batch.push_back(std::move(queue_.front()));
    queue_.pop_front();
    ++consumed_;
  }
  return batch;
}

std::size_t FeedbackQueue::wait_for_depth(std::size_t n,
                                          std::chrono::microseconds timeout) {
  std::unique_lock lock(mutex_);
  ++poppers_waiting_;
  not_empty_cv_.wait_for(lock, timeout,
                         [&] { return closed_ || queue_.size() >= n; });
  --poppers_waiting_;
  return queue_.size();
}

void FeedbackQueue::close() {
  {
    std::lock_guard lock(mutex_);
    closed_ = true;
  }
  not_empty_cv_.notify_all();
}

std::uint64_t FeedbackQueue::close_and_discard() {
  std::uint64_t n = 0;
  {
    std::lock_guard lock(mutex_);
    closed_ = true;
    n = queue_.size();
    discarded_ += n;
    queue_.clear();
  }
  not_empty_cv_.notify_all();
  return n;
}

bool FeedbackQueue::closed() const {
  std::lock_guard lock(mutex_);
  return closed_;
}

std::size_t FeedbackQueue::depth() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

std::uint64_t FeedbackQueue::offered() const {
  std::lock_guard lock(mutex_);
  return offered_;
}

std::uint64_t FeedbackQueue::enqueued() const {
  std::lock_guard lock(mutex_);
  return enqueued_;
}

std::uint64_t FeedbackQueue::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

std::uint64_t FeedbackQueue::consumed() const {
  std::lock_guard lock(mutex_);
  return consumed_;
}

std::uint64_t FeedbackQueue::discarded() const {
  std::lock_guard lock(mutex_);
  return discarded_;
}

std::size_t FeedbackQueue::poppers_waiting() const {
  std::lock_guard lock(mutex_);
  return poppers_waiting_;
}

}  // namespace trident::learning
