// Co-resident continuous-learning pipeline: shadow retraining + canary
// hot-swap, closing the loop the paper's on-device-training story opens.
//
// While the serving runtime keeps answering requests, a shadow training
// replica — its OWN model copy and its OWN PhotonicBackend with its own
// energy ledger — consumes the labelled feedback stream and retrains in
// pulses.  Candidate weights are never thrust onto the fleet: they go
// through the canary stage (serving::Server::canary_start routes x% of
// traffic by trace id), a CanaryController compares accuracy and p99
// against the incumbent over per-arm observation windows, and the verdict
// either promotes the candidate (Server::hot_swap — the never-torn
// publication) or rolls it back (the incumbent was never displaced, and
// the shadow model is restored from the last known-good weights so one
// poisoned retraining cannot poison the next candidate too).
//
// Every retraining pulse and re-programming write is billed: the trainer
// backend's PhotonicLedger folds across trainer deaths exactly the way
// serving replica ledgers do (retired + live, never dropped, never
// double-counted), and the pipeline's own counters are mirrored into
// trident_learning_* telemetry one-for-one — chaos::check_learning_soak
// audits both sets of books after a soak.
//
// Threading contract: feed() and observe_response() are thread-safe (they
// are designed to be called from serving completion hooks).  train_pulse,
// checkpoint, publish_canary, maybe_decide and stats serialise on an
// internal trainer mutex — one logical trainer, callable from a dedicated
// trainer thread (run_until_closed) or stepped synchronously by the
// deterministic harness.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <optional>
#include <string>

#include "core/photonic_backend.hpp"
#include "learning/canary.hpp"
#include "learning/feedback.hpp"
#include "nn/mlp.hpp"
#include "serving/server.hpp"

namespace trident::learning {

/// The shadow trainer's execution engine + bill accessor, mirroring
/// serving::ReplicaBackend so chaos decorators layer identically.
struct TrainerBackend {
  std::unique_ptr<nn::MatvecBackend> backend;
  std::function<core::PhotonicLedger()> ledger;
};

/// Builds the trainer backend for one incarnation (0 = original, +1 per
/// death).  `cfg` already carries the per-incarnation split seed.
using TrainerFactory =
    std::function<TrainerBackend(int incarnation,
                                 const core::PhotonicBackendConfig& cfg)>;

struct LearningConfig {
  /// Pulse shape: a pulse consumes up to max_pulse_samples from the
  /// feedback queue (non-blocking) and runs epochs_per_pulse SGD epochs
  /// over them.  train_pulse() is a no-op below pulse_threshold queued
  /// samples, so tiny dribbles don't burn programming pulses.
  std::size_t pulse_threshold = 32;
  std::size_t max_pulse_samples = 256;
  int epochs_per_pulse = 1;
  int train_batch_size = 1;
  double learning_rate = 0.1;
  std::size_t feedback_capacity = 1024;
  CanaryPolicy canary;
  /// Trainer hardware; incarnation i trains with seed split(seed, i).
  core::PhotonicBackendConfig backend;
  /// Replacement trainer-backend builder; null uses PhotonicBackend.
  TrainerFactory trainer_factory;
  /// Atomic checkpoint target (state::Snapshot); empty disables.
  std::string checkpoint_path;
  /// Trainer incarnations beyond the first (deaths past this stay dead).
  int max_trainer_restarts = 8;
  /// Checkpoint cadence of run_until_closed (0 = never).
  std::uint64_t checkpoint_every_pulses = 0;
  /// Chaos hook: invoked with the checkpoint ordinal just before the
  /// atomic write; throwing simulates the trainer dying mid-checkpoint
  /// (the previous on-disk snapshot must stay intact — atomic_write_file's
  /// contract, which check_learning_soak verifies by loading it).
  std::function<void(std::uint64_t ordinal)> checkpoint_fault_hook;
};

/// Point-in-time books of the pipeline.  Conservation laws (checked by
/// chaos::check_learning_conservation):
///   offered   == enqueued + dropped
///   enqueued  == consumed + queue depth (+ discarded after close)
///   consumed  == samples_trained + samples_lost
///   publications == promotes + rollbacks + (canary_active ? 1 : 0)
struct LearningStats {
  std::uint64_t offered = 0;
  std::uint64_t enqueued = 0;
  std::uint64_t dropped = 0;
  std::uint64_t consumed = 0;
  std::uint64_t discarded = 0;
  std::uint64_t queue_depth = 0;
  std::uint64_t samples_trained = 0;
  /// Consumed by a pulse whose trainer died before the pulse completed.
  std::uint64_t samples_lost = 0;
  std::uint64_t train_pulses = 0;
  std::uint64_t trainer_deaths = 0;
  std::uint64_t trainer_restarts = 0;
  std::uint64_t checkpoints = 0;
  std::uint64_t checkpoint_failures = 0;
  /// Trainer restarts healed from the on-disk checkpoint.
  std::uint64_t checkpoint_restores = 0;
  std::uint64_t canary_publications = 0;
  std::uint64_t promotes = 0;
  std::uint64_t rollbacks = 0;
  bool canary_active = false;
  /// Completed training pulses since the last promote/rollback/restore —
  /// how far the live shadow has drifted from its last anchor.
  std::uint64_t shadow_generation = 0;
  /// Trainer hardware bill: retired incarnations + the live backend.
  core::PhotonicLedger ledger;
};

class LearningPipeline {
 public:
  /// `shadow_init` seeds the shadow replica (normally a copy of the
  /// incumbent the server was built with) and doubles as the initial
  /// known-good rollback anchor.
  LearningPipeline(serving::Server& server, nn::Mlp shadow_init,
                   LearningConfig config);

  LearningPipeline(const LearningPipeline&) = delete;
  LearningPipeline& operator=(const LearningPipeline&) = delete;

  /// Thread-safe: offers one labelled sample to the feedback stream.
  /// Returns false when the sample was dropped (counted).
  bool feed(FeedbackSample sample);

  /// Thread-safe: accumulates one served-response outcome into the live
  /// canary's observation windows (no-op while no canary is active).
  void observe_response(bool canary_arm, bool correct, double latency_s);

  /// One retraining pulse: consumes queued feedback and runs SGD on the
  /// shadow model through the trainer backend.  Returns samples trained
  /// (0: below threshold, queue empty, or the trainer died — deaths are
  /// counted, the pulse's samples booked as lost, and the trainer healed
  /// from the checkpoint when restart budget remains).
  std::size_t train_pulse();

  /// Atomic state::Snapshot of the shadow model + trainer ledger.  False
  /// when disabled or the write failed (failures counted; a failure never
  /// leaves a torn file on disk).
  bool checkpoint();

  /// Publishes the current shadow weights as a canary via
  /// Server::canary_start.  Returns the canary sequence, or 0 when one is
  /// already active (either here or published by someone else).
  std::uint64_t publish_canary();

  /// Evaluates the live canary and, on a non-pending verdict, resolves it:
  /// promote → Server::canary_end(true) (hot_swap) and the candidate
  /// becomes the new known-good anchor; rollback → Server::canary_end
  /// (false) and the shadow model is restored from the anchor.  The
  /// evaluation (including kPending) is appended to `log` when given.
  CanaryEvaluation maybe_decide(std::uint64_t round, DecisionLog* log);

  /// Trainer-thread loop for co-resident operation: pulse on demand,
  /// checkpoint on cadence, exit once the feedback queue is closed and
  /// drained.  Canary publication/decisions stay with the orchestrator.
  void run_until_closed();

  [[nodiscard]] bool canary_active() const;
  /// True once the trainer died with no restart budget left.
  [[nodiscard]] bool trainer_dead() const;
  [[nodiscard]] LearningStats stats() const;
  [[nodiscard]] FeedbackQueue& feedback() { return queue_; }
  [[nodiscard]] const LearningConfig& config() const { return config_; }

  /// Snapshot of the current shadow weights (trainer-mutex serialised).
  [[nodiscard]] nn::Mlp shadow_model() const;

 private:
  void build_trainer(int incarnation);
  /// Fold the dying incarnation's bill, book the pulse's samples as lost,
  /// and heal from the checkpoint if budget remains.
  void handle_trainer_death(std::size_t samples_in_flight);
  [[nodiscard]] core::PhotonicLedger ledger_locked() const;

  serving::Server& server_;
  LearningConfig config_;
  FeedbackQueue queue_;

  mutable std::mutex trainer_mutex_;
  nn::Mlp shadow_;
  nn::Mlp anchor_;  ///< last known-good weights (rollback restore target)
  /// The exact weights published to the live canary (the shadow may keep
  /// training underneath); promoted into anchor_ on a promote verdict.
  std::optional<nn::Mlp> candidate_;
  TrainerBackend trainer_;
  int incarnation_ = 0;
  bool trainer_dead_ = false;
  core::PhotonicLedger retired_ledger_;
  std::uint64_t samples_trained_ = 0;
  std::uint64_t samples_lost_ = 0;
  std::uint64_t train_pulses_ = 0;
  std::uint64_t trainer_deaths_ = 0;
  std::uint64_t trainer_restarts_ = 0;
  std::uint64_t checkpoints_ = 0;
  std::uint64_t checkpoint_failures_ = 0;
  std::uint64_t checkpoint_restores_ = 0;
  std::uint64_t publications_ = 0;
  std::uint64_t promotes_ = 0;
  std::uint64_t rollbacks_ = 0;
  std::uint64_t shadow_generation_ = 0;
  std::uint64_t active_seq_ = 0;

  mutable std::mutex obs_mutex_;
  CanaryController controller_;
  bool observing_ = false;  ///< windows accumulate only while a canary runs
};

}  // namespace trident::learning
