#include "learning/scripted_stream.hpp"

#include "common/error.hpp"

namespace trident::learning {

ScriptedStream::ScriptedStream(std::vector<DriftPhase> phases, int features,
                               int classes, std::uint64_t seed)
    : phases_(std::move(phases)),
      features_(features),
      classes_(classes),
      master_(seed),
      poison_rng_(master_.split(0x901501)) {
  TRIDENT_REQUIRE(!phases_.empty(), "scripted stream needs at least one phase");
  load_phase(0);
}

void ScriptedStream::load_phase(std::size_t index) {
  phase_index_ = index;
  phase_cursor_ = 0;
  const DriftPhase& phase = phases_[index];
  // Templates are a function of template_seed alone (pattern_classes draws
  // them before any sample), so phases sharing a template_seed share class
  // prototypes — the definition of "no drift".  The per-phase shuffle is
  // keyed off the phase INDEX, so even a repeated template_seed replays its
  // samples in a fresh order.
  Rng rng = master_.split(phase.template_seed);
  phase_data_ =
      nn::pattern_classes(static_cast<int>(phase.samples), classes_, features_,
                          phase.pixel_flip_probability, rng);
  Rng shuffle = master_.split(0x5481ff).split(index);
  phase_data_.shuffle(shuffle);
}

bool ScriptedStream::next(StreamSample& out) {
  while (phase_cursor_ >= phase_data_.size()) {
    if (phase_index_ + 1 >= phases_.size()) {
      return false;
    }
    load_phase(phase_index_ + 1);
  }
  const DriftPhase& phase = phases_[phase_index_];
  out.id = drawn_;
  out.input = phase_data_.inputs[phase_cursor_];
  out.true_label = phase_data_.labels[phase_cursor_];
  out.feedback_label = out.true_label;
  // Label poisoning draws ONE bernoulli per sample regardless of outcome,
  // so the poison stream's draw count — and with it every later draw — is
  // a pure function of the sample index.
  if (poison_rng_.bernoulli(phase.label_flip_probability)) {
    const int offset = static_cast<int>(
        poison_rng_.uniform_int(1, static_cast<std::int64_t>(classes_) - 1));
    out.feedback_label = (out.true_label + offset) % classes_;
  }
  out.phase = phase_index_;
  out.canary_latency_scale = phase.canary_latency_scale;
  ++phase_cursor_;
  ++drawn_;
  return true;
}

nn::Dataset ScriptedStream::eval_set(std::size_t phase,
                                     std::size_t count) const {
  TRIDENT_REQUIRE(phase < phases_.size(), "eval phase out of range");
  // Same split as load_phase, so the templates are the phase's own; clean
  // samples (no pixel noise) make this the held-out ground-truth probe.
  Rng rng = master_.split(phases_[phase].template_seed);
  return nn::pattern_classes(static_cast<int>(count), classes_, features_,
                             0.0, rng);
}

}  // namespace trident::learning
