#include "learning/canary.hpp"

#include <cmath>
#include <cstdio>

#include "state/snapshot.hpp"

namespace trident::learning {

namespace {

/// Fixed-format double: printf %.6f is locale-independent in the "C"
/// locale the tests run under and stable across platforms for the value
/// ranges here (accuracies and small ratios), which keeps the log
/// byte-reproducible.  NaN prints as the literal "nan".
[[nodiscard]] std::string fmt(double v) {
  char buf[64];
  if (std::isnan(v)) {
    return "nan";
  }
  std::snprintf(buf, sizeof(buf), "%.6f", v);
  return buf;
}

}  // namespace

const char* to_string(CanaryVerdict v) {
  switch (v) {
    case CanaryVerdict::kPending:
      return "pending";
    case CanaryVerdict::kPromote:
      return "promote";
    case CanaryVerdict::kRollback:
      return "rollback";
  }
  return "unknown";
}

CanaryController::CanaryController(const CanaryPolicy& policy)
    : policy_(policy) {
  if (policy_.min_samples_per_arm == 0) {
    policy_.min_samples_per_arm = 1;
  }
}

void CanaryController::observe(bool canary_arm, bool correct,
                               double latency_s) {
  ArmWindow& arm = canary_arm ? candidate_ : incumbent_;
  ++arm.total;
  if (correct) {
    ++arm.correct;
  }
  arm.latencies_s.push_back(latency_s);
}

CanaryEvaluation CanaryController::evaluate() const {
  CanaryEvaluation eval;
  eval.incumbent_accuracy = incumbent_.accuracy();
  eval.candidate_accuracy = candidate_.accuracy();
  eval.latency = serving::compare_latency_windows(
      incumbent_.latencies_s, candidate_.latencies_s,
      policy_.min_samples_per_arm);
  // The sample floor guards BOTH gates: an accuracy read off three
  // requests is as degenerate as a p99 off three samples, so neither gate
  // may fire until both arms cleared the floor.
  if (incumbent_.total < policy_.min_samples_per_arm ||
      candidate_.total < policy_.min_samples_per_arm) {
    eval.verdict = CanaryVerdict::kPending;
    eval.reason = "window below sample floor";
    return eval;
  }
  if (eval.candidate_accuracy <
      eval.incumbent_accuracy - policy_.max_accuracy_drop) {
    eval.verdict = CanaryVerdict::kRollback;
    eval.reason = "accuracy regression";
    return eval;
  }
  if (eval.latency.comparable &&
      eval.latency.ratio > policy_.max_p99_ratio) {
    eval.verdict = CanaryVerdict::kRollback;
    eval.reason = "p99 regression";
    return eval;
  }
  eval.verdict = CanaryVerdict::kPromote;
  eval.reason = "gates clear";
  return eval;
}

void CanaryController::reset() {
  incumbent_ = ArmWindow{};
  candidate_ = ArmWindow{};
}

void DecisionLog::append(std::uint64_t round, std::uint64_t canary_seq,
                         const CanaryEvaluation& eval) {
  text_ += "round=" + std::to_string(round) +
           " canary=" + std::to_string(canary_seq) +
           " verdict=" + to_string(eval.verdict) +
           " inc_acc=" + fmt(eval.incumbent_accuracy) +
           " can_acc=" + fmt(eval.candidate_accuracy) +
           " inc_n=" + std::to_string(eval.latency.incumbent_count) +
           " can_n=" + std::to_string(eval.latency.candidate_count) +
           " p99_ratio=" + fmt(eval.latency.ratio) + " reason=\"" +
           eval.reason + "\"\n";
  ++lines_;
}

void DecisionLog::note(std::uint64_t round, const std::string& text) {
  text_ += "round=" + std::to_string(round) + " note=\"" + text + "\"\n";
  ++lines_;
}

void DecisionLog::write(const std::string& path) const {
  state::atomic_write_file(path, text_);
}

}  // namespace trident::learning
