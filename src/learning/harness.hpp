// Deterministic virtual-time end-to-end harness for the learning loop.
//
// The harness stands up a real multi-replica serving::Server plus a
// LearningPipeline and drives both through a ScriptedStream in quiesced
// rounds.  Determinism is by construction, not by luck:
//
//   * one submitting thread → request ids (and therefore trace ids, and
//     therefore canary-arm routing) are a pure function of the script;
//   * every round's futures are drained before anything is published or
//     decided → no in-flight batch ever straddles a weight transition;
//   * observations are fed to the controller in request-id order with
//     SYNTHETIC seeded latencies (Rng::split per request id, scaled by the
//     phase's canary_latency_scale) — wall clock never enters a decision;
//   * training consumes feedback in arrival order with shuffling off.
//
// Net effect: the promote/rollback decision sequence — and the byte-exact
// DecisionLog — is a pure function of (seed, config).  Two runs with the
// same TRIDENT_LEARNING_SEED diff clean; a scripted accuracy regression
// rolls back with the incumbent still serving bit-identical outputs.  The
// harness also re-derives every response on a local reference backend, so
// each run doubles as a full never-torn audit: every output must be
// bit-exactly the incumbent's or the candidate's, per its stamped arm.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "learning/pipeline.hpp"
#include "learning/scripted_stream.hpp"
#include "serving/server.hpp"

namespace trident::learning {

/// Environment override for the master seed (strtoull base 0, so 0x...
/// hex literals work) — the TRIDENT_CHAOS_SEED idiom for learning runs.
inline constexpr const char* kLearningSeedEnv = "TRIDENT_LEARNING_SEED";

/// Reads kLearningSeedEnv, falling back to `fallback` when unset/invalid.
[[nodiscard]] std::uint64_t learning_seed_from_env(std::uint64_t fallback);

struct HarnessConfig {
  std::uint64_t seed = 0x5eedull;
  /// Task shape + model (features and classes bound the MLP ends).
  int features = 12;
  int classes = 3;
  std::vector<int> hidden = {16};
  /// The scripted world.  Defaults (empty) to a two-phase drift script:
  /// phase 0 on the incumbent's templates, phase 1 drifted.
  std::vector<DriftPhase> phases;
  /// Requests per quiesced round.
  std::size_t round_size = 24;
  /// Incumbent pre-training (offline, before serving starts).
  std::size_t incumbent_train_samples = 240;
  int incumbent_epochs = 6;
  /// Serving shape.
  int replicas = 2;
  std::size_t max_batch = 8;
  /// Learning knobs (backend seed, canary policy, pulse shape...).  The
  /// harness fills feedback_capacity generously if left at 0.
  LearningConfig learning;
  /// Publish a canary once the shadow has this many pulses on it.
  std::uint64_t publish_after_pulses = 2;
  /// checkpoint() cadence in rounds (0 = never).
  std::uint64_t checkpoint_every_rounds = 0;
};

/// One resolved canary, as the report records it.
struct DecisionRecord {
  std::uint64_t round = 0;
  std::uint64_t canary_seq = 0;
  CanaryVerdict verdict = CanaryVerdict::kPending;
  std::string reason;
};

struct HarnessReport {
  /// Byte-reproducible decision log (same seed ⇒ same bytes).
  std::string decision_log;
  std::vector<DecisionRecord> decisions;
  std::uint64_t rounds = 0;
  /// Responses whose output was NOT bit-exactly the reference forward of
  /// the arm that stamped them (must be 0 — the never-torn audit).
  std::uint64_t bit_exact_mismatches = 0;
  /// Responses served per arm, recomputed by the harness (cross-checked
  /// against the server's canary/incumbent dispatch counters).
  std::uint64_t canary_responses = 0;
  std::uint64_t incumbent_responses = 0;
  /// Accuracy over the final round's responses (true labels).
  double final_round_accuracy = 0.0;
  serving::ServerStats server;
  LearningStats learning;
};

[[nodiscard]] HarnessReport run_learning_harness(const HarnessConfig& cfg);

}  // namespace trident::learning
