#include "learning/pipeline.hpp"

#include <chrono>
#include <utility>

#include "common/error.hpp"
#include "nn/plan.hpp"
#include "nn/train.hpp"
#include "state/snapshot.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace trident::learning {

namespace {

/// trident_learning_* telemetry: one-for-one mirrors of the pipeline's
/// books, so chaos::check_learning_telemetry_mirror can audit them like
/// the serving counters.
struct LearningMetrics {
  telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::global();
  telemetry::Counter& offered =
      reg.counter("trident_learning_feedback_offered_total",
                  "labelled feedback samples offered to the stream");
  telemetry::Counter& dropped =
      reg.counter("trident_learning_feedback_dropped_total",
                  "feedback samples dropped at the stream (full or closed)");
  telemetry::Counter& trained =
      reg.counter("trident_learning_samples_trained_total",
                  "feedback samples consumed by completed training pulses");
  telemetry::Counter& lost =
      reg.counter("trident_learning_samples_lost_total",
                  "feedback samples consumed by pulses that died mid-train");
  telemetry::Counter& pulses =
      reg.counter("trident_learning_train_pulses_total",
                  "completed shadow retraining pulses");
  telemetry::Counter& trainer_deaths =
      reg.counter("trident_learning_trainer_deaths_total",
                  "shadow trainer incarnations killed by HardwareFailure");
  telemetry::Counter& trainer_restarts =
      reg.counter("trident_learning_trainer_restarts_total",
                  "shadow trainer re-incarnations");
  telemetry::Counter& checkpoints =
      reg.counter("trident_learning_checkpoints_total",
                  "atomic shadow snapshots written");
  telemetry::Counter& checkpoint_failures =
      reg.counter("trident_learning_checkpoint_failures_total",
                  "checkpoint attempts that failed (no torn file remains)");
  telemetry::Counter& checkpoint_restores =
      reg.counter("trident_learning_checkpoint_restores_total",
                  "trainer restarts healed from the on-disk checkpoint");
  telemetry::Counter& publications =
      reg.counter("trident_learning_canary_publications_total",
                  "shadow weight sets published to the canary stage");
  telemetry::Counter& promotes =
      reg.counter("trident_learning_promotes_total",
                  "canary candidates promoted to incumbent");
  telemetry::Counter& rollbacks =
      reg.counter("trident_learning_rollbacks_total",
                  "canary candidates rolled back (incumbent untouched)");
  telemetry::Gauge& shadow_generation =
      reg.gauge("trident_learning_shadow_generation",
                "training pulses since the shadow's last known-good anchor");
};

[[nodiscard]] LearningMetrics& learning_metrics() {
  static LearningMetrics m;
  return m;
}

}  // namespace

LearningPipeline::LearningPipeline(serving::Server& server, nn::Mlp shadow_init,
                                   LearningConfig config)
    : server_(server),
      config_(std::move(config)),
      queue_(config_.feedback_capacity),
      shadow_(shadow_init),
      anchor_(std::move(shadow_init)),
      controller_(config_.canary) {
  if (config_.pulse_threshold == 0) {
    config_.pulse_threshold = 1;
  }
  if (config_.max_pulse_samples < config_.pulse_threshold) {
    config_.max_pulse_samples = config_.pulse_threshold;
  }
  build_trainer(0);
}

void LearningPipeline::build_trainer(int incarnation) {
  core::PhotonicBackendConfig cfg = config_.backend;
  // Trainer stream 0xl34 + per-incarnation split: independent of every
  // serving replica's noise stream, and fresh per re-incarnation.
  cfg.seed = Rng(config_.backend.seed)
                 .split(0x134a)
                 .split(static_cast<std::uint64_t>(incarnation))
                 .seed();
  if (config_.trainer_factory) {
    trainer_ = config_.trainer_factory(incarnation, cfg);
    return;
  }
  auto backend = std::make_unique<core::PhotonicBackend>(cfg);
  core::PhotonicBackend* raw = backend.get();
  trainer_.backend = std::move(backend);
  trainer_.ledger = [raw] { return raw->ledger(); };
}

bool LearningPipeline::feed(FeedbackSample sample) {
  const bool accepted = queue_.push(std::move(sample));
  if (telemetry::enabled()) {
    LearningMetrics& m = learning_metrics();
    m.offered.add(1);
    if (!accepted) {
      m.dropped.add(1);
    }
  }
  return accepted;
}

void LearningPipeline::observe_response(bool canary_arm, bool correct,
                                        double latency_s) {
  std::lock_guard lock(obs_mutex_);
  if (!observing_) {
    return;
  }
  controller_.observe(canary_arm, correct, latency_s);
}

std::size_t LearningPipeline::train_pulse() {
  std::lock_guard lock(trainer_mutex_);
  if (trainer_dead_) {
    return 0;
  }
  // Below the pulse threshold nothing is consumed — tiny dribbles must not
  // burn a programming burst.  Once the stream is closed the remainder is
  // drained regardless (the last pulse of a session may be short).
  if (!queue_.closed() && queue_.depth() < config_.pulse_threshold) {
    return 0;
  }
  std::vector<FeedbackSample> batch = queue_.pop_batch(
      config_.max_pulse_samples, std::chrono::microseconds(0));
  if (batch.empty()) {
    return 0;
  }
  nn::Dataset data;
  data.features = shadow_.layer_sizes().front();
  data.classes = shadow_.layer_sizes().back();
  data.inputs.reserve(batch.size());
  data.labels.reserve(batch.size());
  for (FeedbackSample& s : batch) {
    data.inputs.push_back(std::move(s.input));
    data.labels.push_back(s.label);
  }
  nn::TrainConfig tc;
  tc.epochs = config_.epochs_per_pulse;
  tc.learning_rate = config_.learning_rate;
  tc.batch_size = config_.train_batch_size;
  // No intra-pulse shuffle: the pulse trains in feedback arrival order, so
  // the weight trajectory is a pure function of the sample sequence — the
  // determinism the decision-replay harness pins down.
  tc.shuffle = false;
  try {
    (void)nn::fit(shadow_, std::move(data), tc, *trainer_.backend);
  } catch (const HardwareFailure&) {
    handle_trainer_death(batch.size());
    return 0;
  } catch (const std::exception&) {
    // Transient trainer fault: the pulse is lost, the trainer survives.
    samples_lost_ += batch.size();
    if (telemetry::enabled()) {
      learning_metrics().lost.add(batch.size());
    }
    return 0;
  }
  samples_trained_ += batch.size();
  ++train_pulses_;
  ++shadow_generation_;
  if (telemetry::enabled()) {
    LearningMetrics& m = learning_metrics();
    m.trained.add(batch.size());
    m.pulses.add(1);
    m.shadow_generation.set(static_cast<double>(shadow_generation_));
  }
  return batch.size();
}

void LearningPipeline::handle_trainer_death(std::size_t samples_in_flight) {
  ++trainer_deaths_;
  samples_lost_ += samples_in_flight;
  // Fold the dead incarnation's bill before the backend is replaced —
  // exactly the serving replica discipline: pulses are never dropped and
  // never double-counted across a death.
  if (trainer_.ledger) {
    retired_ledger_ = retired_ledger_ + trainer_.ledger();
  }
  trainer_.backend.reset();
  trainer_.ledger = nullptr;
  if (telemetry::enabled()) {
    LearningMetrics& m = learning_metrics();
    m.trainer_deaths.add(1);
    if (samples_in_flight > 0) {
      m.lost.add(samples_in_flight);
    }
  }
  if (trainer_restarts_ >=
      static_cast<std::uint64_t>(config_.max_trainer_restarts)) {
    trainer_dead_ = true;
    return;
  }
  ++trainer_restarts_;
  ++incarnation_;
  build_trainer(incarnation_);
  // Heal the weights from the non-volatile checkpoint when one loads; a
  // missing/older checkpoint keeps the in-memory weights (numerically
  // valid — SGD just loses the interrupted pulse).
  if (!config_.checkpoint_path.empty()) {
    try {
      const state::Snapshot snap =
          state::Snapshot::load(config_.checkpoint_path);
      state::restore_model_into(snap.model, shadow_);
      ++checkpoint_restores_;
      shadow_generation_ = 0;
      if (telemetry::enabled()) {
        learning_metrics().checkpoint_restores.add(1);
      }
    } catch (const std::exception&) {
      // No checkpoint yet (or unreadable): continue on live weights.
    }
  }
  if (telemetry::enabled()) {
    learning_metrics().trainer_restarts.add(1);
  }
}

bool LearningPipeline::checkpoint() {
  std::lock_guard lock(trainer_mutex_);
  if (config_.checkpoint_path.empty()) {
    return false;
  }
  const std::uint64_t ordinal = checkpoints_ + checkpoint_failures_;
  try {
    if (config_.checkpoint_fault_hook) {
      config_.checkpoint_fault_hook(ordinal);
    }
    state::Snapshot snap;
    snap.model = state::capture_model(shadow_);
    snap.ledger = state::to_ledger_state(ledger_locked());
    snap.save(config_.checkpoint_path);
    ++checkpoints_;
    if (telemetry::enabled()) {
      learning_metrics().checkpoints.add(1);
    }
    return true;
  } catch (const HardwareFailure&) {
    // The trainer died mid-checkpoint.  The atomic write discipline means
    // the previous snapshot is still intact on disk — which is exactly
    // what the healed trainer restores from below.
    ++checkpoint_failures_;
    if (telemetry::enabled()) {
      learning_metrics().checkpoint_failures.add(1);
    }
    handle_trainer_death(0);
    return false;
  } catch (const std::exception&) {
    ++checkpoint_failures_;
    if (telemetry::enabled()) {
      learning_metrics().checkpoint_failures.add(1);
    }
    return false;
  }
}

std::uint64_t LearningPipeline::publish_canary() {
  std::lock_guard lock(trainer_mutex_);
  if (active_seq_ != 0) {
    return 0;
  }
  // Compile the candidate's plan here, off the serving path: canary_start
  // would otherwise build it itself, and on promotion the same plan object
  // carries straight into the incumbent publication without a recompile.
  std::shared_ptr<const nn::ExecutionPlan> plan;
  if (server_.config().use_plan) {
    plan = nn::ExecutionPlan::compile(shadow_, server_.plan_config());
  }
  const std::uint64_t seq = server_.canary_start(
      shadow_, config_.canary.traffic_percent, std::move(plan));
  if (seq == 0) {
    return 0;
  }
  active_seq_ = seq;
  candidate_ = shadow_;
  ++publications_;
  {
    std::lock_guard obs(obs_mutex_);
    controller_.reset();
    observing_ = true;
  }
  if (telemetry::enabled()) {
    learning_metrics().publications.add(1);
  }
  return seq;
}

CanaryEvaluation LearningPipeline::maybe_decide(std::uint64_t round,
                                                DecisionLog* log) {
  std::lock_guard lock(trainer_mutex_);
  CanaryEvaluation eval;
  if (active_seq_ == 0) {
    eval.reason = "no canary active";
    return eval;
  }
  {
    std::lock_guard obs(obs_mutex_);
    eval = controller_.evaluate();
  }
  if (log != nullptr) {
    log->append(round, active_seq_, eval);
  }
  if (eval.verdict == CanaryVerdict::kPending) {
    return eval;
  }
  const bool promote = eval.verdict == CanaryVerdict::kPromote;
  server_.canary_end(promote);
  if (promote) {
    ++promotes_;
    // The candidate — the exact weights that were serving the canary arm,
    // not the since-evolved shadow — becomes the new known-good anchor.
    anchor_ = *candidate_;
    if (telemetry::enabled()) {
      learning_metrics().promotes.add(1);
    }
  } else {
    ++rollbacks_;
    // Roll the SHADOW back too: one poisoned retraining must not seed the
    // next candidate.  The serving incumbent was never displaced.
    shadow_ = anchor_;
    if (telemetry::enabled()) {
      learning_metrics().rollbacks.add(1);
    }
  }
  shadow_generation_ = 0;
  candidate_.reset();
  active_seq_ = 0;
  {
    std::lock_guard obs(obs_mutex_);
    observing_ = false;
    controller_.reset();
  }
  if (telemetry::enabled()) {
    learning_metrics().shadow_generation.set(0.0);
  }
  return eval;
}

void LearningPipeline::run_until_closed() {
  std::uint64_t pulses_since_checkpoint = 0;
  for (;;) {
    (void)queue_.wait_for_depth(config_.pulse_threshold,
                                std::chrono::microseconds(1000));
    const std::size_t trained = train_pulse();
    if (trained > 0 && config_.checkpoint_every_pulses != 0 &&
        ++pulses_since_checkpoint >= config_.checkpoint_every_pulses) {
      pulses_since_checkpoint = 0;
      (void)checkpoint();
    }
    if (trainer_dead()) {
      return;
    }
    if (trained == 0 && queue_.closed() && queue_.depth() == 0) {
      return;
    }
  }
}

bool LearningPipeline::canary_active() const {
  std::lock_guard lock(trainer_mutex_);
  return active_seq_ != 0;
}

bool LearningPipeline::trainer_dead() const {
  std::lock_guard lock(trainer_mutex_);
  return trainer_dead_;
}

nn::Mlp LearningPipeline::shadow_model() const {
  std::lock_guard lock(trainer_mutex_);
  return shadow_;
}

core::PhotonicLedger LearningPipeline::ledger_locked() const {
  core::PhotonicLedger total = retired_ledger_;
  if (trainer_.ledger) {
    total = total + trainer_.ledger();
  }
  return total;
}

LearningStats LearningPipeline::stats() const {
  LearningStats s;
  s.offered = queue_.offered();
  s.enqueued = queue_.enqueued();
  s.dropped = queue_.dropped();
  s.consumed = queue_.consumed();
  s.discarded = queue_.discarded();
  s.queue_depth = queue_.depth();
  std::lock_guard lock(trainer_mutex_);
  s.samples_trained = samples_trained_;
  s.samples_lost = samples_lost_;
  s.train_pulses = train_pulses_;
  s.trainer_deaths = trainer_deaths_;
  s.trainer_restarts = trainer_restarts_;
  s.checkpoints = checkpoints_;
  s.checkpoint_failures = checkpoint_failures_;
  s.checkpoint_restores = checkpoint_restores_;
  s.canary_publications = publications_;
  s.promotes = promotes_;
  s.rollbacks = rollbacks_;
  s.canary_active = active_seq_ != 0;
  s.shadow_generation = shadow_generation_;
  s.ledger = ledger_locked();
  return s;
}

}  // namespace trident::learning
