// Compiled device-model lookup tables for the quantized inference tier.
//
// The device physics only ever sees 255 discrete GST levels, so every
// transfer function the hot path needs — GST level → transmittance, the
// MRR/balanced-photodetector read-out of a programmed ring, and the LDSU
// threshold + activation response — can be evaluated ONCE per level at
// compile time and served from a table afterwards.  The builders below
// walk the same device models the functional simulation uses (GstCell,
// Mrr::response), so every table entry is bit-identical to what the
// per-ring simulation would have computed; the tests pin the MRR table
// against WeightBank's self-calibration sweep.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <vector>

#include "common/quantize.hpp"
#include "common/units.hpp"
#include "photonics/gst.hpp"
#include "photonics/mrr.hpp"

namespace trident::phot {

/// GST level → transmittance, both intensity (power) and amplitude (field)
/// flavours.  Index = programmed level, 0 = fully crystalline.
struct GstTransmissionLut {
  std::vector<double> intensity;
  std::vector<double> amplitude;

  [[nodiscard]] int levels() const {
    return static_cast<int>(intensity.size());
  }
};

[[nodiscard]] GstTransmissionLut build_gst_transmission_lut(
    const GstCellParams& params = {});

/// GST level → realised weight of one add-drop ring read on resonance by
/// the balanced photodetector (drop − through), plus the normalisation
/// that maps the achievable raw range onto [-1, 1].  This is WeightBank's
/// construction-time calibration sweep as a standalone, bank-free table.
struct MrrWeightLut {
  std::vector<double> raw;     ///< level → drop − through at resonance
  std::vector<double> weight;  ///< level → normalised weight in [-1, 1]
  double raw_min = 0.0;
  double raw_max = 0.0;
  double scale = 1.0;  ///< (raw_max − raw_min) / 2: WeightBank::weight_scale

  [[nodiscard]] int levels() const { return static_cast<int>(raw.size()); }

  /// Calibrated level whose realised weight is nearest `target` ∈ [-1, 1]
  /// (the nearest-level search hardware programming performs).
  [[nodiscard]] int nearest_level(double target) const;
};

[[nodiscard]] MrrWeightLut build_mrr_weight_lut(const MrrDesign& design,
                                                units::Length resonance,
                                                const GstCellParams& gst = {});

/// int8 → int8 per-element activation table: input level on the `in`
/// grid → output level on the `out` grid after applying `f` to the
/// reconstructed value.  Folding the LDSU comparator threshold, the GST
/// activation slope, and the requantization into one 256-entry table makes
/// the fused inference path never leave integers between layers; because
/// the tier's activations are piecewise linear and the grids symmetric,
/// the table is EXACT on every representable input — no interpolation
/// error on top of quantization.
struct ActivationLut {
  std::array<std::int8_t, 256> table{};

  [[nodiscard]] std::int8_t operator()(std::int8_t level) const {
    return table[static_cast<std::uint8_t>(level)];
  }
};

/// `f` is the real-valued activation (e.g. the LDSU threshold + 0.34 GST
/// slope); `in`/`out` carry both the bit widths and the physical ranges,
/// so any static per-layer scaling folds into the table for free.
[[nodiscard]] ActivationLut build_activation_lut(
    const std::function<double(double)>& f, const SymmetricQuantizer& in,
    const SymmetricQuantizer& out);

}  // namespace trident::phot
