// Linear Derivative Storage Unit (LDSU) — §III.C, Fig 2d.
//
// Training needs f'(h_k) during the backward pass (Eq. 3), but h_k only
// exists transiently as an analog voltage during the forward pass.  Because
// the GST activation has exactly two derivative values (0.34 above
// threshold, 0 below), ONE BIT per neuron suffices: an analog voltage
// comparator decides h_k ≷ threshold and a D-flip-flop latches the result.
// On the backward pass the TIA gain is programmed from that bit — no ADC,
// no memory fetch of f'(h_k).  An LDSU costs 0.09 mW (Table III).
#pragma once

#include <cstdint>
#include <vector>

#include "common/units.hpp"
#include "photonics/constants.hpp"

namespace trident::phot {

class Ldsu {
 public:
  /// `threshold_volts` is the comparator reference corresponding to the
  /// activation threshold after the TIA (normalised units by default).
  explicit Ldsu(double threshold_volts = 0.0);

  /// Forward pass: compares the logit voltage against the threshold and
  /// latches the 1-bit derivative selector into the flip-flop.
  void latch(double logit_volts);

  /// The latched comparator bit (true ⇔ h was above threshold).
  [[nodiscard]] bool bit() const { return bit_; }

  /// Backward pass: the derivative value the TIA should be programmed to.
  [[nodiscard]] double derivative() const {
    return bit_ ? kActivationDerivativeHigh : kActivationDerivativeLow;
  }

  [[nodiscard]] double threshold() const { return threshold_; }
  [[nodiscard]] std::uint64_t latches() const { return latches_; }

  /// Static power of comparator + DFF (Table III).
  [[nodiscard]] static Power power() { return kLdsuPower; }

 private:
  double threshold_;
  bool bit_ = false;
  std::uint64_t latches_ = 0;
};

/// One LDSU per weight-bank row: latch a whole logit vector in one step.
class LdsuBank {
 public:
  explicit LdsuBank(int rows, double threshold_volts = 0.0);

  [[nodiscard]] int size() const { return static_cast<int>(units_.size()); }
  [[nodiscard]] const Ldsu& unit(int i) const;

  /// Latches logits[i] into unit i.
  void latch(const std::vector<double>& logits);

  /// Derivative vector f'(h) for the backward pass.
  [[nodiscard]] std::vector<double> derivatives() const;

  [[nodiscard]] Power total_power() const {
    return Ldsu::power() * static_cast<double>(size());
  }

 private:
  std::vector<Ldsu> units_;
};

}  // namespace trident::phot
