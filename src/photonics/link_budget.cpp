#include "photonics/link_budget.hpp"

#include <cmath>

namespace trident::phot {

double db_to_linear(double db) { return std::pow(10.0, db / 10.0); }

double linear_to_db(double ratio) {
  TRIDENT_REQUIRE(ratio > 0.0, "power ratio must be positive");
  return 10.0 * std::log10(ratio);
}

double dbm_to_watts(double dbm) { return 1e-3 * std::pow(10.0, dbm / 10.0); }

double watts_to_dbm(double watts) {
  TRIDENT_REQUIRE(watts > 0.0, "power must be positive");
  return 10.0 * std::log10(watts / 1e-3);
}

LinkBudget::LinkBudget(const LossModel& losses, const ReceiverModel& receiver)
    : losses_(losses), receiver_(receiver) {
  losses_.validate();
}

double LinkBudget::worst_channel_loss_db(int channels,
                                         units::Length bus_length) const {
  TRIDENT_REQUIRE(channels >= 1, "need at least one channel");
  TRIDENT_REQUIRE(bus_length.m() >= 0.0, "bus length must be non-negative");
  const double waveguide =
      losses_.waveguide_db_per_cm * bus_length.m() * 100.0;
  // The worst channel passes every other ring off-resonance before its own
  // drop event, then traverses the maximally attenuating GST cell.
  const double rings_through =
      losses_.ring_through_db * static_cast<double>(channels - 1);
  return losses_.coupler_db + waveguide + rings_through +
         losses_.ring_drop_db + losses_.gst_max_attenuation_db;
}

LinkReport LinkBudget::analyze_pe(units::Power launch, int channels,
                                  units::Length bus_length) const {
  TRIDENT_REQUIRE(launch.W() > 0.0, "launch power must be positive");
  LinkReport report;
  report.launch_dbm = watts_to_dbm(launch.W());
  report.total_loss_db = worst_channel_loss_db(channels, bus_length);
  report.received_dbm = report.launch_dbm - report.total_loss_db;
  report.margin_db = report.received_dbm -
                     (receiver_.sensitivity_dbm + receiver_.margin_db);
  report.feasible = report.margin_db >= 0.0;
  return report;
}

int LinkBudget::max_channels(units::Power launch,
                             units::Length bus_length) const {
  int best = 0;
  for (int n = 1; n <= 4096; ++n) {
    if (analyze_pe(launch, n, bus_length).feasible) {
      best = n;
    } else {
      break;  // loss grows monotonically with channel count
    }
  }
  return best;
}

int LinkBudget::max_optical_cascade(units::Power launch, int channels,
                                    units::Length bus_length) const {
  const double per_pe_loss = worst_channel_loss_db(channels, bus_length);
  const double budget = watts_to_dbm(launch.W()) -
                        (receiver_.sensitivity_dbm + receiver_.margin_db);
  if (budget < per_pe_loss) {
    return 0;
  }
  return static_cast<int>(std::floor(budget / per_pe_loss));
}

}  // namespace trident::phot
