#include "photonics/activation_cell.hpp"

#include <cmath>

#include "common/error.hpp"

namespace trident::phot {

GstActivationCell::GstActivationCell(const ActivationCellParams& params)
    : params_(params) {
  TRIDENT_REQUIRE(params_.threshold.J() > 0.0, "threshold must be positive");
  TRIDENT_REQUIRE(params_.transition_width.J() > 0.0,
                  "transition width must be positive");
  TRIDENT_REQUIRE(params_.max_transmission > params_.leakage_transmission &&
                      params_.max_transmission <= 1.0,
                  "max transmission must exceed leakage and be <= 1");
  TRIDENT_REQUIRE(params_.leakage_transmission >= 0.0,
                  "leakage must be non-negative");
}

double GstActivationCell::transmission(Energy input) const {
  TRIDENT_REQUIRE(input.J() >= 0.0, "pulse energy must be non-negative");
  if (bypass_) {
    return params_.max_transmission;  // fully amorphous: always transmits
  }
  // Logistic switching curve centred at the threshold.  transition_width is
  // defined as the 12%→88% rise, i.e. 4 logistic scale units.
  const double scale = params_.transition_width.J() / 4.0;
  const double z = (input.J() - params_.threshold.J()) / scale;
  const double sig = 1.0 / (1.0 + std::exp(-z));
  return params_.leakage_transmission +
         (params_.max_transmission - params_.leakage_transmission) * sig;
}

Energy GstActivationCell::transfer(Energy input) const {
  return input * transmission(input);
}

Energy GstActivationCell::process(Energy input) {
  const Energy out = transfer(input);
  if (!bypass_ && input > params_.threshold) {
    ++firings_;
    ++resets_;  // must recrystallise before the next symbol (§III.C)
  }
  return out;
}

double GstActivationCell::activate(double h) {
  return h > 0.0 ? kActivationDerivativeHigh * h : 0.0;
}

double GstActivationCell::derivative(double h) {
  return h > 0.0 ? kActivationDerivativeHigh : kActivationDerivativeLow;
}

Energy GstActivationCell::total_reset_energy() const {
  return params_.reset_energy * static_cast<double>(resets_);
}

double GstActivationCell::wear() const {
  return static_cast<double>(firings_) / params_.endurance_cycles;
}

}  // namespace trident::phot
