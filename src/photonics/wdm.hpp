// WDM channel plan and inter-channel crosstalk analysis.
//
// A broadcast-and-weight PE carries N inputs on N wavelengths through one
// waveguide (§III.A).  Channels must be spaced ≥ 1.6 nm so that each MRR
// filters only its own wavelength [32].  Two different weighting styles
// interact very differently with crosstalk:
//
//   * SHIFT weighting (thermal / electro-optic): the weight is encoded by
//     detuning the ring *towards* its neighbours' channels.  The leakage
//     from adjacent channels then depends on the weight being applied —
//     it is dynamic, cannot be calibrated away, and caps usable precision
//     at about 6 bits [10].
//   * ATTENUATION weighting (GST): the ring stays centred on its channel
//     and the intracavity GST cell attenuates the dropped light.  Residual
//     leakage is static (weight-independent), can be calibrated out, and
//     precision is set by the 255 GST levels → 8 bits (§III.B).
//
// This module quantifies that argument from the device geometry.
#pragma once

#include <vector>

#include "common/units.hpp"
#include "photonics/constants.hpp"
#include "photonics/mrr.hpp"

namespace trident::phot {

/// An evenly spaced WDM grid.
class ChannelPlan {
 public:
  /// `n` channels spaced `spacing` apart, starting at `anchor`.
  ChannelPlan(int n, Length spacing = kMinChannelSpacing,
              Length anchor = kCBandStart);

  [[nodiscard]] int size() const { return static_cast<int>(channels_.size()); }
  [[nodiscard]] Length spacing() const { return spacing_; }
  [[nodiscard]] Length channel(int i) const;
  [[nodiscard]] const std::vector<Length>& channels() const { return channels_; }

  /// Spectral span from first to last channel.
  [[nodiscard]] Length span() const;

 private:
  std::vector<Length> channels_;
  Length spacing_;
};

/// Result of a worst-case crosstalk analysis for one weighting style.
struct CrosstalkReport {
  /// Worst-case aggregate leaked power from all other channels into one
  /// ring's drop port, as a fraction of a full-scale channel.
  double worst_case_leakage = 0.0;
  /// The part of the leakage that varies with the programmed weights and
  /// therefore cannot be calibrated out.
  double dynamic_leakage = 0.0;
  /// Usable bit resolution implied by the dynamic leakage: levels are
  /// distinguishable while one LSB step exceeds the dynamic error.
  int effective_bits = 0;
};

/// Analyses crosstalk for a bank of identical rings (design `d`) on `plan`.
///
/// `shift_fraction` is how far (as a fraction of the channel spacing) a ring
/// is detuned at full weight swing: thermal weighting uses ≈ 0.2 (§II.B,
/// "shift the resonant wavelength within φ ± 0.2"); GST weighting uses 0.
/// `max_bits_from_device` caps the result by the weight-encoding device's
/// own level count (255 GST levels → 8; heater DAC → typically ≥ 8, so the
/// crosstalk term binds for thermal).
[[nodiscard]] CrosstalkReport analyze_crosstalk(const ChannelPlan& plan,
                                                const MrrDesign& d,
                                                double shift_fraction,
                                                int max_bits_from_device);

/// Lorentzian drop-port leakage of a ring with FWHM `fwhm` for a channel
/// offset `detuning` from its resonance.
[[nodiscard]] double lorentzian_leakage(Length detuning, Length fwhm);

}  // namespace trident::phot
