#include "photonics/ring_design.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace trident::phot {

RingCandidate evaluate_ring(units::Length radius, double coupling,
                            const RingRequirements& req) {
  TRIDENT_REQUIRE(req.channels >= 1, "need at least one channel");
  TRIDENT_REQUIRE(req.fsr_margin >= 1.0, "FSR margin must be >= 1");
  TRIDENT_REQUIRE(req.linewidth_ratio > 1.0, "linewidth ratio must be > 1");

  MrrDesign design;
  design.radius = radius;
  design.self_coupling_1 = coupling;
  design.self_coupling_2 = coupling;
  const Mrr ring(design, units::Length::nanometers(1550.0));

  RingCandidate c;
  c.radius = radius;
  c.coupling = coupling;
  c.fsr = ring.free_spectral_range();
  c.fwhm = ring.fwhm();
  c.quality_factor = ring.quality_factor();
  c.neighbour_leakage = lorentzian_leakage(req.spacing, c.fwhm);

  const double span_m =
      static_cast<double>(req.channels - 1) * req.spacing.m();
  const bool fsr_ok = c.fsr.m() >= span_m * req.fsr_margin;
  const bool linewidth_ok =
      c.fwhm.m() * req.linewidth_ratio <= req.spacing.m();
  c.feasible = fsr_ok && linewidth_ok;
  return c;
}

std::vector<RingCandidate> design_space(const RingRequirements& req,
                                        const std::vector<double>& radii_um,
                                        const std::vector<double>& couplings) {
  std::vector<RingCandidate> out;
  out.reserve(radii_um.size() * couplings.size());
  for (double r : radii_um) {
    for (double t : couplings) {
      out.push_back(
          evaluate_ring(units::Length::micrometers(r), t, req));
    }
  }
  return out;
}

std::optional<RingCandidate> recommend(const RingRequirements& req) {
  std::optional<RingCandidate> best;
  for (const RingCandidate& c : design_space(req)) {
    if (!c.feasible) {
      continue;
    }
    if (!best || c.quality_factor < best->quality_factor) {
      best = c;
    }
  }
  return best;
}

int max_channels_for_ring(units::Length radius, double coupling,
                          const RingRequirements& req) {
  int best = 0;
  for (int n = 1; n <= 256; ++n) {
    RingRequirements trial = req;
    trial.channels = n;
    const RingCandidate c = evaluate_ring(radius, coupling, trial);
    if (c.feasible) {
      best = n;
    } else if (n > 1) {
      // FSR feasibility is monotone in the channel count; the linewidth
      // test is count-independent, so the first failure is final.
      break;
    }
  }
  return best;
}

}  // namespace trident::phot
