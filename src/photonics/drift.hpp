// GST state drift and retention model.
//
// Amorphous GST relaxes structurally over time; in phase-change memories
// the effect is parameterised as a power law, X(t) = X(t₀)·(t/t₀)^ν with a
// small drift exponent ν (electrical resistance drifts with ν ≈ 0.05-0.11;
// the *optical* transmittance of GST is far more stable, ν on the order
// of 10⁻³, which is why the paper can claim ~10-year retention, §III.B).
//
// The model maps drift onto the 255-level weight grid and answers:
//   * how far a programmed level wanders after a given shelf time;
//   * the refresh interval needed to keep weights within half an LSB —
//     and that the default optical parameters need *no* refresh within
//     the 10-year retention window.
#pragma once

#include "common/units.hpp"
#include "photonics/constants.hpp"

namespace trident::phot {

struct DriftParams {
  /// Power-law drift exponent of the optical transmittance.  The default
  /// is calibrated so that the paper's twin claims — 255 distinguishable
  /// levels AND ~10-year retention — are simultaneously consistent: at
  /// ν = 1e-4 the worst-case level error crosses half an LSB at ≈10 years.
  double nu = 1.0e-4;
  /// Reference time after programming at which drift is defined to be zero.
  units::Time t0 = units::Time::seconds(1.0);
  /// Number of programmable levels (for LSB conversions).
  int levels = kGstLevels;
};

class DriftModel {
 public:
  explicit DriftModel(const DriftParams& params = {});

  [[nodiscard]] const DriftParams& params() const { return params_; }

  /// Multiplicative transmittance drift factor after `elapsed` since
  /// programming: T(t) = T₀ · (t/t₀)^(−ν)  (amorphous fraction relaxes,
  /// transmittance decays very slowly).  Clamped to 1 for t ≤ t₀.
  [[nodiscard]] double transmittance_factor(units::Time elapsed) const;

  /// The (fractional) level displacement of a cell programmed to `level`
  /// after `elapsed`: drift acts on the amorphous component, so the top
  /// levels move the most.
  [[nodiscard]] double drifted_level(int level, units::Time elapsed) const;

  /// Worst-case level error (in levels) across the grid after `elapsed`.
  [[nodiscard]] double worst_level_error(units::Time elapsed) const;

  /// Whether every weight is still within half an LSB after `elapsed`
  /// (i.e. re-reads quantize back to the programmed level).
  [[nodiscard]] bool retains(units::Time elapsed) const;

  /// Longest time for which retains() holds (bisection over log time, up
  /// to `horizon`); returns `horizon` if drift never exceeds half an LSB.
  [[nodiscard]] units::Time retention_limit(
      units::Time horizon = units::Time::seconds(3.2e9)) const;  // ~100 y

 private:
  DriftParams params_;
};

/// Seconds in a year (for retention arithmetic in tests/benches).
inline constexpr double kSecondsPerYear = 365.25 * 24.0 * 3600.0;

}  // namespace trident::phot
