#include "photonics/wdm.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace trident::phot {

ChannelPlan::ChannelPlan(int n, Length spacing, Length anchor)
    : spacing_(spacing) {
  TRIDENT_REQUIRE(n >= 1, "channel plan needs at least one channel");
  TRIDENT_REQUIRE(spacing.m() > 0.0, "channel spacing must be positive");
  TRIDENT_REQUIRE(spacing.nm() >= kMinChannelSpacing.nm() - 1e-9,
                  "channel spacing below the 1.6 nm crosstalk limit");
  channels_.reserve(static_cast<std::size_t>(n));
  for (int i = 0; i < n; ++i) {
    channels_.push_back(
        Length::meters(anchor.m() + static_cast<double>(i) * spacing.m()));
  }
}

Length ChannelPlan::channel(int i) const {
  TRIDENT_REQUIRE(i >= 0 && i < size(), "channel index out of range");
  return channels_[static_cast<std::size_t>(i)];
}

Length ChannelPlan::span() const {
  return Length::meters(channels_.back().m() - channels_.front().m());
}

double lorentzian_leakage(Length detuning, Length fwhm) {
  TRIDENT_REQUIRE(fwhm.m() > 0.0, "FWHM must be positive");
  const double x = 2.0 * detuning.m() / fwhm.m();
  return 1.0 / (1.0 + x * x);
}

CrosstalkReport analyze_crosstalk(const ChannelPlan& plan, const MrrDesign& d,
                                  double shift_fraction,
                                  int max_bits_from_device) {
  TRIDENT_REQUIRE(shift_fraction >= 0.0 && shift_fraction < 0.5,
                  "shift fraction must be in [0, 0.5)");
  TRIDENT_REQUIRE(max_bits_from_device >= 1, "device bits must be >= 1");

  // Use a representative ring on the middle channel; all rings share the
  // design, so the middle one sees the worst neighbour population.
  const int n = plan.size();
  const int mid = n / 2;
  Mrr ring(d, plan.channel(mid));
  const Length fwhm = ring.fwhm();

  CrosstalkReport report;
  if (n == 1) {
    report.effective_bits = max_bits_from_device;
    return report;
  }

  // Worst case: this ring is shifted by shift_fraction × spacing towards a
  // neighbour, while every other channel carries full-scale power.
  const double shift_m = shift_fraction * plan.spacing().m();
  double leak_shifted = 0.0;  // ring pulled toward its neighbours
  double leak_centred = 0.0;  // ring on-grid (GST case)
  for (int j = 0; j < n; ++j) {
    if (j == mid) {
      continue;
    }
    const double offset =
        std::abs(plan.channel(j).m() - plan.channel(mid).m());
    leak_centred +=
        lorentzian_leakage(Length::meters(offset), fwhm);
    // Shift reduces the distance to the nearer neighbours.
    leak_shifted +=
        lorentzian_leakage(Length::meters(std::max(1e-15, offset - shift_m)),
                           fwhm);
  }

  report.worst_case_leakage = leak_shifted;
  // The static part (ring centred) is weight-independent and calibratable;
  // only the weight-dependent excess corrupts the encoded value.
  report.dynamic_leakage = std::max(0.0, leak_shifted - leak_centred);

  int bits_from_crosstalk = max_bits_from_device;
  if (report.dynamic_leakage > 0.0) {
    // One LSB of a b-bit weight is 2^-b of full scale; levels stay
    // distinguishable while the dynamic error stays below one LSB.
    bits_from_crosstalk = static_cast<int>(
        std::floor(std::log2(1.0 / report.dynamic_leakage)));
    bits_from_crosstalk = std::clamp(bits_from_crosstalk, 1, 16);
  }
  report.effective_bits = std::min(max_bits_from_device, bits_from_crosstalk);
  return report;
}

}  // namespace trident::phot
