// Thermal crosstalk between micro-heaters in a thermally tuned weight bank.
//
// §III.B: "Optically tuning MRRs eliminates the area requirement for
// thermal heaters, as well as thermal crosstalk issues."  This module
// models the issue being eliminated: in a DEAP-CNN-style bank every MRR
// carries a heater, heat spreads laterally through the silicon/oxide
// stack, and a ring's resonance is shifted not only by its own heater but
// by its neighbours' — an error that depends on the *other* weights being
// programmed and therefore cannot be calibrated out (the physical origin
// of the 6-bit limit [10]).
//
// Model: heaters on a regular grid with pitch `pitch`; the temperature
// rise at distance d from a heater dissipating P is ΔT(d) = (P/P₀)·ΔT₀·
// exp(−d/L) with thermal decay length L; the resonance shift is
// dλ/dT · ΔT (silicon: ≈ 0.08 nm/K).
#pragma once

#include <vector>

#include "common/units.hpp"
#include "photonics/constants.hpp"

namespace trident::phot {

struct ThermalParams {
  /// Heater power at full drive (one MRR's tuning power).
  units::Power full_drive = kThermalHoldPower;
  /// Temperature rise at the heater's own ring at full drive.
  double self_heating_kelvin = 1.5;
  /// Lateral thermal decay length in the SOI stack (oxide trenches keep
  /// heat local; ~10 um is typical for isolated heaters).
  units::Length decay_length = units::Length::micrometers(8.0);
  /// Resonance sensitivity of a silicon MRR.
  double nm_per_kelvin = 0.08;
  /// Heater grid pitch.
  units::Length pitch = units::Length::micrometers(40.0);
};

/// Thermal crosstalk over a rows×cols heater grid.
class ThermalCrosstalkMap {
 public:
  ThermalCrosstalkMap(int rows, int cols, const ThermalParams& params = {});

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }
  [[nodiscard]] const ThermalParams& params() const { return params_; }

  /// Temperature rise at ring (r, c) given per-ring heater drives in
  /// [0, 1] (row-major, drive 1 = full tuning power), including its own
  /// heater.
  [[nodiscard]] double temperature_at(int r, int c,
                                      const std::vector<double>& drives) const;

  /// Resonance shift at (r, c) caused ONLY by the other rings' heaters —
  /// the uncancellable, weight-dependent part.
  [[nodiscard]] units::Length neighbour_shift_at(
      int r, int c, const std::vector<double>& drives) const;

  /// Worst-case neighbour-induced shift anywhere on the grid when every
  /// other heater runs at full drive.
  [[nodiscard]] units::Length worst_case_neighbour_shift() const;

  /// The weight error that shift induces on a ring of FWHM `fwhm` biased
  /// at its half-transmission point (|d(drop)/dλ| is maximal there:
  /// a Lorentzian loses ≈ 2·δλ/FWHM of its full scale per δλ of detuning).
  [[nodiscard]] double weight_error(units::Length shift,
                                    units::Length fwhm) const;

 private:
  [[nodiscard]] double coupling(int r1, int c1, int r2, int c2) const;

  int rows_;
  int cols_;
  ThermalParams params_;
};

}  // namespace trident::phot
