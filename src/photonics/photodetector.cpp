#include "photonics/photodetector.hpp"

#include <cmath>

#include "common/error.hpp"

namespace trident::phot {

namespace {
constexpr double kElectronCharge = 1.602176634e-19;  // C
}

BalancedPhotodetector::BalancedPhotodetector(const BpdParams& params)
    : params_(params) {
  TRIDENT_REQUIRE(params_.responsivity > 0.0, "responsivity must be positive");
  TRIDENT_REQUIRE(params_.bandwidth.Hz() > 0.0, "bandwidth must be positive");
  TRIDENT_REQUIRE(params_.thermal_noise_density >= 0.0,
                  "noise density must be non-negative");
}

double BalancedPhotodetector::noise_rms(double i_avg) const {
  const double b = params_.bandwidth.Hz();
  const double shot = 2.0 * kElectronCharge * std::abs(i_avg) * b;
  const double thermal = params_.thermal_noise_density *
                         params_.thermal_noise_density * b;
  return std::sqrt(shot + thermal);
}

double BalancedPhotodetector::current(Power plus, Power minus,
                                      Rng* rng) const {
  TRIDENT_REQUIRE(plus.W() >= 0.0 && minus.W() >= 0.0,
                  "optical power must be non-negative");
  const double i_plus = params_.responsivity * plus.W();
  const double i_minus = params_.responsivity * minus.W();
  double i = i_plus - i_minus;
  if (params_.enable_noise && rng != nullptr) {
    // Shot noise of the two diodes is independent; total average current
    // (not the difference) sets the shot-noise power.
    i += rng->normal(0.0, noise_rms(i_plus + i_minus));
  }
  return i;
}

double BalancedPhotodetector::accumulate(const std::vector<Power>& drop,
                                         const std::vector<Power>& thru,
                                         Rng* rng) const {
  TRIDENT_REQUIRE(drop.size() == thru.size(),
                  "drop/through vectors must have equal length");
  Power total_drop, total_thru;
  for (std::size_t i = 0; i < drop.size(); ++i) {
    total_drop += drop[i];
    total_thru += thru[i];
  }
  return current(total_drop, total_thru, rng);
}

Tia::Tia(double transimpedance_ohms) : transimpedance_(transimpedance_ohms) {
  TRIDENT_REQUIRE(transimpedance_ohms > 0.0,
                  "transimpedance must be positive");
}

double Tia::amplify(double current_amps) const {
  return current_amps * transimpedance_ * gain_;
}

void Tia::set_gain(double gain) {
  TRIDENT_REQUIRE(gain >= 0.0, "TIA gain must be non-negative");
  gain_ = gain;
}

}  // namespace trident::phot
