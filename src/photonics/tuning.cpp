#include "photonics/tuning.hpp"

#include "common/error.hpp"

namespace trident::phot {

TuningMethod thermal_tuning() {
  TuningMethod m;
  m.kind = TuningKind::kThermal;
  m.name = "Thermal";
  m.write_energy = kThermalTuningEnergy;
  m.write_time = kThermalTuningTime;
  m.hold_power = kThermalHoldPower;
  m.bit_resolution = kThermalBits;
  m.non_volatile = false;
  m.practical_for_edge = true;
  return m;
}

TuningMethod electro_optic_tuning() {
  TuningMethod m;
  m.kind = TuningKind::kElectroOptic;
  m.name = "Electric";
  // Charging energy of the junction at full drive, ~CV²/2 with C ≈ 10 fF for
  // a 60 µm ring: 0.5 · 10 fF · (100 V)² = 50 nJ.  The dominant cost is the
  // impractical ±100 V drive, not the energy itself.
  m.write_energy = Energy::nanojoules(50.0);
  m.write_time = kElectroOpticTime;
  m.hold_power = Power::watts(0.0);  // junction holds with negligible leakage
  m.bit_resolution = kThermalBits;
  m.non_volatile = false;
  m.practical_for_edge = false;  // §II.B: excluded from this work
  return m;
}

TuningMethod gst_tuning() {
  TuningMethod m;
  m.kind = TuningKind::kGst;
  m.name = "GST";
  m.write_energy = kGstWriteEnergy;
  m.write_time = kGstWriteTime;
  m.hold_power = Power::watts(0.0);  // non-volatile: zero hold power
  m.bit_resolution = kGstBits;
  m.non_volatile = true;
  m.practical_for_edge = true;
  return m;
}

TuningMethod hybrid_tuning() {
  TuningMethod m = thermal_tuning();
  m.name = "Hybrid (TO+EO)";
  // CrossLight adds an electro-optic fine-tuning stage on top of the
  // thermal coarse stage; the EO write is faster but the thermal component
  // still dominates energy and hold power.  The fine stage buys one extra
  // bit of usable resolution.
  m.bit_resolution = kThermalBits + 1;
  return m;
}

std::vector<TuningMethod> table1_methods() {
  return {thermal_tuning(), electro_optic_tuning(), gst_tuning()};
}

double electro_optic_volts_for_shift(Length shift) {
  TRIDENT_REQUIRE(shift.m() >= 0.0, "shift must be non-negative");
  const double picometers = shift.nm() * 1e3;
  return picometers / kElectroOpticPmPerVolt;
}

}  // namespace trident::phot
