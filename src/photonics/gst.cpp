#include "photonics/gst.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace trident::phot {

GstCell::GstCell(const GstCellParams& params) : params_(params), level_(0) {
  TRIDENT_REQUIRE(params_.levels >= 2, "GST cell needs at least two levels");
  TRIDENT_REQUIRE(params_.transmittance_crystalline >= 0.0 &&
                      params_.transmittance_crystalline < 1.0,
                  "crystalline transmittance must be in [0, 1)");
  TRIDENT_REQUIRE(params_.transmittance_amorphous >
                          params_.transmittance_crystalline &&
                      params_.transmittance_amorphous <= 1.0,
                  "amorphous transmittance must exceed crystalline");
  TRIDENT_REQUIRE(params_.programming_noise_levels >= 0.0,
                  "programming noise must be non-negative");
}

double GstCell::crystalline_fraction() const {
  return 1.0 - static_cast<double>(level_) /
                   static_cast<double>(params_.levels - 1);
}

double GstCell::transmittance() const {
  const double x = crystalline_fraction();
  return params_.transmittance_amorphous * (1.0 - x) +
         params_.transmittance_crystalline * x;
}

double GstCell::amplitude_transmittance() const {
  return std::sqrt(transmittance());
}

int GstCell::program(int target_level, Rng* rng) {
  TRIDENT_REQUIRE(target_level >= 0 && target_level < params_.levels,
                  "GST level out of range");
  if (target_level == level_) {
    // True no-op: the control logic compares against the non-volatile
    // state and never fires a pulse, so nothing is billed.
    return level_;
  }
  // A pulse is commanded the moment the target differs from the current
  // level.  It melts/quenches the cell regardless of where placement noise
  // lands the achieved level — even back on the starting level — so the
  // energy, time, and endurance cost is unconditional.
  ++writes_;
  int achieved = target_level;
  if (rng != nullptr && params_.programming_noise_levels > 0.0) {
    // Placement jitter accumulates over the partial crystallisation pulses
    // of the move: long moves are noisy, short trim moves are precise —
    // the property write-verify calibration exploits.
    const double distance = std::abs(target_level - level_) /
                            static_cast<double>(params_.levels - 1);
    const double sigma =
        params_.programming_noise_levels * std::sqrt(distance);
    achieved = static_cast<int>(
        std::lround(target_level + rng->normal(0.0, sigma)));
    achieved = std::clamp(achieved, 0, params_.levels - 1);
  }
  level_ = achieved;
  return level_;
}

void GstCell::restore(int level, std::uint64_t writes, std::uint64_t reads) {
  TRIDENT_REQUIRE(level >= 0 && level < params_.levels,
                  "GST level out of range");
  // Snapshot restore: the physical cell retained its phase across the
  // process restart (non-volatility is the whole point), so no pulse is
  // fired and nothing new is billed — the historical counters carry over.
  level_ = level;
  writes_ = writes;
  reads_ = reads;
}

double GstCell::program_transmittance(double target, Rng* rng) {
  const double lo = params_.transmittance_crystalline;
  const double hi = params_.transmittance_amorphous;
  const double clamped = std::clamp(target, lo, hi);
  const double frac = (clamped - lo) / (hi - lo);
  const int level = static_cast<int>(std::lround(frac * (params_.levels - 1)));
  program(level, rng);
  return transmittance();
}

double GstCell::read() {
  ++reads_;
  return transmittance();
}

Energy GstCell::total_write_energy() const {
  return params_.write_energy * static_cast<double>(writes_);
}

Energy GstCell::total_read_energy() const {
  return params_.read_energy * static_cast<double>(reads_);
}

Time GstCell::total_write_time() const {
  return params_.write_time * static_cast<double>(writes_);
}

double GstCell::wear() const {
  return static_cast<double>(writes_) / params_.endurance_cycles;
}

}  // namespace trident::phot
