// Optical power budget of the broadcast-and-weight link.
//
// Every photonic-accelerator design is ultimately gated by a loss budget:
// the laser launches P_in; couplers, waveguide runs, every off-resonance
// ring passed on the bus, the drop event itself, and the GST attenuation
// all take their share; whatever reaches the photodetector must clear its
// sensitivity with enough margin to resolve the signal at the target bit
// resolution.  This module computes that budget and answers the design
// questions behind §III.A:
//
//   * how many wavelengths can share one PE's bus before the worst
//     channel starves;
//   * why Trident regenerates the signal electrically (TIA + E/O laser)
//     at every PE instead of chaining PEs optically — the per-PE insertion
//     loss makes deep all-optical cascades infeasible.
#pragma once

#include "common/error.hpp"
#include "common/units.hpp"
#include "photonics/constants.hpp"

namespace trident::phot {

/// dB helpers (power ratios).
[[nodiscard]] double db_to_linear(double db);
[[nodiscard]] double linear_to_db(double ratio);
[[nodiscard]] double dbm_to_watts(double dbm);
[[nodiscard]] double watts_to_dbm(double watts);

/// Per-element insertion losses of the link (positive dB values), typical
/// silicon-photonics figures.
struct LossModel {
  double coupler_db = 1.5;            ///< fiber/laser-to-chip coupler
  double waveguide_db_per_cm = 2.0;   ///< propagation loss
  double ring_through_db = 0.05;      ///< passing an off-resonance MRR
  double ring_drop_db = 0.5;          ///< being dropped by the target MRR
  double gst_max_attenuation_db = 13.0;  ///< fully crystalline GST cell
  double splitter_db = 0.2;           ///< per Y-junction / tap

  void validate() const {
    TRIDENT_REQUIRE(coupler_db >= 0 && waveguide_db_per_cm >= 0 &&
                        ring_through_db >= 0 && ring_drop_db >= 0 &&
                        gst_max_attenuation_db >= 0 && splitter_db >= 0,
                    "losses must be non-negative");
  }
};

/// Receiver requirement.
struct ReceiverModel {
  /// Minimum detectable power for the required SNR at the clock bandwidth;
  /// −30 dBm is a conservative figure for a [19]-style receiver at 8 bits.
  double sensitivity_dbm = -30.0;
  /// Extra margin demanded on top of sensitivity.
  double margin_db = 3.0;
};

/// One PE's worst-channel link analysis.
struct LinkReport {
  double launch_dbm = 0.0;
  double total_loss_db = 0.0;
  double received_dbm = 0.0;
  double margin_db = 0.0;  ///< received − (sensitivity + required margin)
  bool feasible = false;
};

class LinkBudget {
 public:
  LinkBudget(const LossModel& losses = {}, const ReceiverModel& receiver = {});

  [[nodiscard]] const LossModel& losses() const { return losses_; }
  [[nodiscard]] const ReceiverModel& receiver() const { return receiver_; }

  /// Loss seen by the worst channel of a `channels`-wavelength PE bus of
  /// physical length `bus_length`: coupler in, full bus run, passes all
  /// other rings off-resonance, is dropped by its own ring through a
  /// worst-case (fully attenuating) GST cell.
  [[nodiscard]] double worst_channel_loss_db(int channels,
                                             units::Length bus_length) const;

  /// Full report for one PE at the given launch power.
  [[nodiscard]] LinkReport analyze_pe(units::Power launch, int channels,
                                      units::Length bus_length) const;

  /// Largest channel count that still closes the budget at `launch`.
  [[nodiscard]] int max_channels(units::Power launch,
                                 units::Length bus_length) const;

  /// How many PEs could be chained *all-optically* (no E/O regeneration)
  /// before the budget fails — the reason Trident regenerates per PE.
  [[nodiscard]] int max_optical_cascade(units::Power launch, int channels,
                                        units::Length bus_length) const;

 private:
  LossModel losses_;
  ReceiverModel receiver_;
};

}  // namespace trident::phot
