// GST photonic activation cell (§III.C, Figs 2e & 3).
//
// A 60 µm ring with a GST patch at the ring/waveguide crossing.  While the
// GST is crystalline, an incoming weighted-sum pulse couples strongly into
// the ring: essentially no output.  If the pulse energy exceeds the
// switching threshold (430 pJ), the absorbed energy amorphises the GST, the
// ring detunes, and the remainder of the pulse is transmitted — an output
// "spike".  The device therefore computes a ReLU-like non-linearity
// *directly on optical power*, with no ADC, no memory round trip, and no
// digital activation kernel (the key latency/energy lever vs DEAP-CNN and
// CrossLight).
//
// Two views are exposed:
//   * transfer(E_in): the smooth measured-style device curve at 1553.4 nm
//     (regenerates Fig 3);
//   * activate(h) / derivative(h): the linearised functional form the paper
//     uses for training — slope 0.34 above threshold, 0 below — applied to
//     normalised logits.
//
// Every firing amorphises the cell, so it must be recrystallised (reset)
// before the next symbol; reset energy and endurance are tracked.
#pragma once

#include <cstdint>

#include "common/units.hpp"
#include "photonics/constants.hpp"
#include "photonics/gst.hpp"

namespace trident::phot {

struct ActivationCellParams {
  Length wavelength = kActivationWavelength;
  Length ring_radius = kActivationRingRadius;
  Energy threshold = kActivationThreshold;
  /// Width of the switching transition (energy over which transmission
  /// climbs from ~12% to ~88% of its ceiling); GST switching is steep.
  Energy transition_width = Energy::picojoules(40.0);
  /// Transmission ceiling above threshold; the paper's linearisation slope
  /// (0.34) is the ceiling-limited mean slope of the measured curve.
  double max_transmission = 0.55;
  /// Sub-threshold residual transmission (ring not perfectly critical).
  double leakage_transmission = 0.01;
  /// Energy to recrystallise after a firing event; same order as the write
  /// pulse of the weighting cells [8].
  Energy reset_energy = kGstWriteEnergy;
  double endurance_cycles = kGstEnduranceCycles;
};

class GstActivationCell {
 public:
  explicit GstActivationCell(const ActivationCellParams& params = {});

  [[nodiscard]] const ActivationCellParams& params() const { return params_; }

  /// Device-level intensity transmission for an input pulse of energy E
  /// (the Fig 3 curve: ~0 below threshold, steep rise, saturating ceiling).
  [[nodiscard]] double transmission(Energy input) const;

  /// Device-level output pulse energy = transmission(E) × E.
  [[nodiscard]] Energy transfer(Energy input) const;

  /// Processes one weighted-sum pulse: returns the output energy, records
  /// whether the cell fired (switched amorphous), and if it fired accrues
  /// the mandatory reset cost for the next cycle.
  [[nodiscard]] Energy process(Energy input);

  /// Linearised activation on a normalised logit h (threshold mapped to 0):
  /// f(h) = 0.34·h for h > 0, else 0.  (§III.C's two-derivative view.)
  [[nodiscard]] static double activate(double h);
  /// f'(h): 0.34 above threshold, 0 below.
  [[nodiscard]] static double derivative(double h);

  /// Setting the cell fully amorphous turns it into a pass-through,
  /// "effectively eliminating the activation cell" for layers without a
  /// non-linearity (§III.C).
  void set_bypass(bool bypass) { bypass_ = bypass; }
  [[nodiscard]] bool bypassed() const { return bypass_; }

  /// --- accounting -------------------------------------------------------
  [[nodiscard]] std::uint64_t firings() const { return firings_; }
  [[nodiscard]] std::uint64_t resets() const { return resets_; }
  [[nodiscard]] Energy total_reset_energy() const;
  [[nodiscard]] double wear() const;

 private:
  ActivationCellParams params_;
  bool bypass_ = false;
  std::uint64_t firings_ = 0;
  std::uint64_t resets_ = 0;
};

}  // namespace trident::phot
