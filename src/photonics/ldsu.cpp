#include "photonics/ldsu.hpp"

#include "common/error.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace trident::phot {

namespace {

[[nodiscard]] telemetry::Counter& latch_counter() {
  static telemetry::Counter& c = telemetry::MetricsRegistry::global().counter(
      "trident_ldsu_latches_total",
      "sign-bit latch events across all LDSU comparators");
  return c;
}

}  // namespace

Ldsu::Ldsu(double threshold_volts) : threshold_(threshold_volts) {}

void Ldsu::latch(double logit_volts) {
  bit_ = logit_volts > threshold_;
  ++latches_;
  if (telemetry::enabled()) {
    latch_counter().add(1);
  }
}

LdsuBank::LdsuBank(int rows, double threshold_volts) {
  TRIDENT_REQUIRE(rows >= 1, "LDSU bank needs at least one row");
  units_.assign(static_cast<std::size_t>(rows), Ldsu(threshold_volts));
}

const Ldsu& LdsuBank::unit(int i) const {
  TRIDENT_REQUIRE(i >= 0 && i < size(), "LDSU index out of range");
  return units_[static_cast<std::size_t>(i)];
}

void LdsuBank::latch(const std::vector<double>& logits) {
  TRIDENT_REQUIRE(static_cast<int>(logits.size()) == size(),
                  "logit vector must match bank size");
  for (std::size_t i = 0; i < logits.size(); ++i) {
    units_[i].latch(logits[i]);
  }
}

std::vector<double> LdsuBank::derivatives() const {
  std::vector<double> out;
  out.reserve(units_.size());
  for (const auto& u : units_) {
    out.push_back(u.derivative());
  }
  return out;
}

}  // namespace trident::phot
