#include "photonics/drift.hpp"

#include <cmath>

#include "common/error.hpp"

namespace trident::phot {

DriftModel::DriftModel(const DriftParams& params) : params_(params) {
  TRIDENT_REQUIRE(params_.nu >= 0.0 && params_.nu < 0.1,
                  "optical drift exponent out of plausible range");
  TRIDENT_REQUIRE(params_.t0.s() > 0.0, "reference time must be positive");
  TRIDENT_REQUIRE(params_.levels >= 2, "need at least two levels");
}

double DriftModel::transmittance_factor(units::Time elapsed) const {
  TRIDENT_REQUIRE(elapsed.s() >= 0.0, "elapsed time must be non-negative");
  if (elapsed.s() <= params_.t0.s() || params_.nu == 0.0) {
    return 1.0;
  }
  return std::pow(elapsed.s() / params_.t0.s(), -params_.nu);
}

double DriftModel::drifted_level(int level, units::Time elapsed) const {
  TRIDENT_REQUIRE(level >= 0 && level < params_.levels, "level out of range");
  // Drift relaxes the amorphous component; the transmittance above the
  // crystalline floor is proportional to the level, so the level decays by
  // the same factor.
  return static_cast<double>(level) * transmittance_factor(elapsed);
}

double DriftModel::worst_level_error(units::Time elapsed) const {
  // The fully amorphous (top) level moves the most.
  const double top = static_cast<double>(params_.levels - 1);
  return top * (1.0 - transmittance_factor(elapsed));
}

bool DriftModel::retains(units::Time elapsed) const {
  return worst_level_error(elapsed) < 0.5;
}

units::Time DriftModel::retention_limit(units::Time horizon) const {
  if (retains(horizon)) {
    return horizon;
  }
  // Bisection over log-time between t0 (retains by construction) and the
  // horizon (does not retain).
  double lo = std::log(params_.t0.s());
  double hi = std::log(horizon.s());
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = (lo + hi) / 2.0;
    if (retains(units::Time::seconds(std::exp(mid)))) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return units::Time::seconds(std::exp(lo));
}

}  // namespace trident::phot
