#include "photonics/enob.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace trident::phot {

EnobReport readout_enob(const BpdParams& bpd, units::Power full_scale) {
  TRIDENT_REQUIRE(full_scale.W() > 0.0, "full-scale power must be positive");
  BalancedPhotodetector detector(bpd);
  EnobReport report;
  report.signal_current = bpd.responsivity * full_scale.W();
  // Worst case: the full optical power sits on one diode (maximum shot
  // noise for the given swing).
  report.noise_rms = detector.noise_rms(report.signal_current);
  TRIDENT_ASSERT(report.noise_rms > 0.0, "noise floor must be positive");
  const double ratio = report.signal_current / report.noise_rms;
  report.snr_db = 20.0 * std::log10(ratio);
  report.effective_bits = std::clamp(
      static_cast<int>(std::floor(std::log2(ratio / 2.0))), 0, 24);
  return report;
}

units::Power required_power_for_bits(const BpdParams& bpd, int bits) {
  TRIDENT_REQUIRE(bits >= 1 && bits <= 20, "bits must be in [1, 20]");
  double lo = 1e-12, hi = 1.0;  // watts
  TRIDENT_REQUIRE(
      readout_enob(bpd, units::Power::watts(hi)).effective_bits >= bits,
      "requested resolution unreachable at any sane power");
  for (int iter = 0; iter < 200; ++iter) {
    const double mid = std::sqrt(lo * hi);  // geometric bisection
    if (readout_enob(bpd, units::Power::watts(mid)).effective_bits >= bits) {
      hi = mid;
    } else {
      lo = mid;
    }
  }
  return units::Power::watts(hi);
}

}  // namespace trident::phot
