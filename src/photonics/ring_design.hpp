// Weight-bank ring design-space solver.
//
// The spectral studies surfaced two hard constraints the paper leaves
// implicit: a bank's rings must have (a) FSR larger than the WDM span
// (else distant channels alias onto other resonance orders) and (b) loaded
// linewidth comfortably below the channel spacing (else neighbour leakage
// erodes precision).  Both are set by two knobs — ring radius and bus
// coupling — pulling in opposite directions (small rings: big FSR but, at
// fixed coupling, broad linewidth).  This module solves the design space:
// given a channel plan and a crosstalk budget, find the feasible (radius,
// coupling) region and a recommended design point.
#pragma once

#include <optional>
#include <vector>

#include "common/units.hpp"
#include "photonics/mrr.hpp"
#include "photonics/wdm.hpp"

namespace trident::phot {

struct RingRequirements {
  /// Channels the bank must serve.
  int channels = 16;
  units::Length spacing = kMinChannelSpacing;
  /// FSR must exceed span × this margin (guard band for the edge rings).
  double fsr_margin = 1.15;
  /// Loaded FWHM must stay below spacing / this ratio (leakage at one
  /// spacing ≈ (FWHM / 2Δ)²: ratio 6 → ~0.7% nearest-neighbour leakage,
  /// in line with the crosstalk budget of the 8-bit analysis).
  double linewidth_ratio = 6.0;
};

struct RingCandidate {
  units::Length radius;
  double coupling = 0.0;  ///< t1 = t2
  units::Length fsr;
  units::Length fwhm;
  double quality_factor = 0.0;
  /// Worst nearest-neighbour drop leakage at one channel spacing.
  double neighbour_leakage = 0.0;
  bool feasible = false;
};

/// Evaluates a single (radius, coupling) point against the requirements.
[[nodiscard]] RingCandidate evaluate_ring(units::Length radius,
                                          double coupling,
                                          const RingRequirements& req);

/// Sweeps a radius × coupling grid and returns every evaluated point
/// (feasible flag set per the requirements).
[[nodiscard]] std::vector<RingCandidate> design_space(
    const RingRequirements& req,
    const std::vector<double>& radii_um = {2.0, 2.5, 3.0, 4.0, 5.0, 7.5,
                                           10.0},
    const std::vector<double>& couplings = {0.90, 0.95, 0.98, 0.99, 0.995});

/// The feasible candidate with the lowest quality factor (lower Q = wider
/// optical bandwidth = faster modulation headroom), if any exists.
[[nodiscard]] std::optional<RingCandidate> recommend(
    const RingRequirements& req);

/// Largest channel count a given ring supports on `spacing` grids under
/// the requirements' margins.
[[nodiscard]] int max_channels_for_ring(units::Length radius, double coupling,
                                        const RingRequirements& req);

}  // namespace trident::phot
