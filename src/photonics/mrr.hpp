// Add-drop microring resonator (MRR) device model.
//
// The weight bank of every broadcast-and-weight photonic accelerator —
// Trident included — is built from add-drop MRRs: a ring evanescently
// coupled to two bus waveguides.  On resonance, light is routed to the drop
// port; off resonance it continues on the through port.  The intensity
// split between the two ports, read differentially by a balanced
// photodetector, realises a signed weight w ∈ [-1, 1] (Tait et al. [32]).
//
// This model implements the standard all-pass/add-drop transfer functions
// (Bogaerts et al. [4]):
//
//   phase per round trip   φ(λ) = 2π · n_eff(λ) · L / λ,   L = 2πR
//   through-port intensity T_t(φ) = (t2²a² − 2t1t2a cosφ + t1²) / D(φ)
//   drop-port intensity    T_d(φ) = (1−t1²)(1−t2²)a / D(φ)
//   with D(φ) = 1 − 2t1t2a cosφ + (t1t2a)²
//
// where t1, t2 are the bus self-coupling coefficients and `a` the single
// round-trip amplitude transmission (waveguide loss × any intracavity
// attenuator — for Trident, the embedded GST cell).
#pragma once

#include <vector>

#include "common/units.hpp"
#include "photonics/constants.hpp"

namespace trident::phot {

/// Geometric / coupling description of an add-drop ring.
struct MrrDesign {
  Length radius = kWeightMrrRadius;
  double self_coupling_1 = 0.95;  ///< t1: input-bus self-coupling
  double self_coupling_2 = 0.95;  ///< t2: drop-bus self-coupling
  /// Round-trip amplitude transmission from waveguide loss alone (excludes
  /// any intracavity attenuator such as a GST cell).
  double intrinsic_loss_amplitude = 0.999;
  double effective_index = kEffectiveIndex;
  double group_index = kGroupIndex;
};

/// Port intensities for a single wavelength (fractions of input power).
struct MrrResponse {
  double through = 0.0;
  double drop = 0.0;
  /// Fraction lost in the cavity (absorption): 1 - through - drop.
  [[nodiscard]] double absorbed() const { return 1.0 - through - drop; }
};

class Mrr {
 public:
  /// Constructs a ring whose resonance order is chosen to sit closest to
  /// `target_resonance` (the fabricated resonance can then be fine-set with
  /// set_resonance()).
  Mrr(const MrrDesign& design, Length target_resonance);

  /// Resonant wavelength of the tracked longitudinal mode.
  [[nodiscard]] Length resonance() const { return resonance_; }

  /// Shifts the tracked resonance (models thermal / electro-optic tuning;
  /// Trident's GST weighting leaves this fixed).
  void set_resonance(Length wavelength);

  /// Free spectral range near the tracked resonance: FSR = λ² / (n_g · L).
  [[nodiscard]] Length free_spectral_range() const;

  /// Full width at half maximum of the (Lorentzian-like) drop resonance.
  [[nodiscard]] Length fwhm() const;

  /// Loaded quality factor Q = λ / FWHM.
  [[nodiscard]] double quality_factor() const;

  /// Port response at `wavelength` given an intracavity amplitude
  /// transmission `cavity_attenuation` ∈ (0, 1] (e.g. a GST cell's amplitude
  /// transmittance; 1.0 = no attenuator).
  [[nodiscard]] MrrResponse response(Length wavelength,
                                     double cavity_attenuation = 1.0) const;

  /// Sweeps `response` over a wavelength range (helper for spectra plots
  /// and the WDM crosstalk analysis).
  [[nodiscard]] std::vector<MrrResponse> spectrum(
      Length start, Length stop, int points,
      double cavity_attenuation = 1.0) const;

  [[nodiscard]] const MrrDesign& design() const { return design_; }

  /// Circumference L = 2πR.
  [[nodiscard]] Length circumference() const;

 private:
  /// Round-trip phase at `wavelength`, first-order dispersion included.
  [[nodiscard]] double round_trip_phase(Length wavelength) const;

  MrrDesign design_;
  Length resonance_;
  int mode_order_;  ///< longitudinal mode number m at the tracked resonance
};

}  // namespace trident::phot
