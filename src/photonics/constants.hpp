// Device constants used by the Trident paper's evaluation.
//
// Every number here is taken directly from the paper (Tables I and III,
// Sections III-IV) or from the device papers it cites; the citation key in
// brackets matches the paper's reference list.  Centralising them makes the
// benches' provenance auditable and lets ablations override a single value.
#pragma once

#include "common/units.hpp"

namespace trident::phot {

using namespace trident::units::literals;
using units::Area;
using units::Energy;
using units::Frequency;
using units::Length;
using units::Power;
using units::Time;

// ---------------------------------------------------------------------------
// Table I — tuning method comparison
// ---------------------------------------------------------------------------

/// Thermal tuning energy per weight update [9].
inline constexpr Energy kThermalTuningEnergy = 1.02_nJ;
/// Thermal tuning latency [9].
inline constexpr Time kThermalTuningTime = 0.6_us;
/// Thermal hold power per MRR while tuned (§III.B: "1.7 mW of power needed to
/// thermally tune an MRR"); volatile — drawn continuously.
inline constexpr Power kThermalHoldPower = 1.7_mW;

/// Electro-optic sensitivity: 0.18 pm of resonance shift per volt [15].
inline constexpr double kElectroOpticPmPerVolt = 0.18;
/// Electro-optic switching latency [15].
inline constexpr Time kElectroOpticTime = 500.0_ns;
/// Electro-optic rings need a 60 µm radius and ±100 V drive [15].
inline constexpr Length kElectroOpticRingRadius = 60.0_um;
inline constexpr double kElectroOpticMaxVolts = 100.0;

/// GST write-pulse energy per weight update [37].
inline constexpr Energy kGstWriteEnergy = 660.0_pJ;
/// GST programming (crystallisation/amorphisation) latency [13]; §III.B says
/// 0.3 µs, "two times faster than thermally tuning an MRR".
inline constexpr Time kGstWriteTime = 300.0_ns;
/// GST read-pulse energy [8].
inline constexpr Energy kGstReadEnergy = 20.0_pJ;
/// Peak power while actively programming a GST cell (§III.B: 2.0 mW).
inline constexpr Power kGstProgramPower = 2.0_mW;
/// Number of programmable GST transmission levels [5] → 8-bit resolution.
inline constexpr int kGstLevels = 255;
inline constexpr int kGstBits = 8;
/// Thermal tuning bit resolution limited by crosstalk [10].
inline constexpr int kThermalBits = 6;
/// Demonstrated GST endurance, switching cycles [17].
inline constexpr double kGstEnduranceCycles = 1e12;
/// GST retention (non-volatile for up to 10 years, §III.B).
inline constexpr double kGstRetentionYears = 10.0;

// ---------------------------------------------------------------------------
// Table III — Trident per-PE device power breakdown (256-MRR PE)
// ---------------------------------------------------------------------------

inline constexpr Power kLdsuPower = 0.09_mW;               // [3], [16]
inline constexpr Power kEoLaserPower = 0.032_mW;           // [28]
inline constexpr Power kGstMrrTuningPowerPerPe = 563.2_mW; // [37]
inline constexpr Power kGstMrrReadPowerPerPe = 17.1_mW;    // [8]
inline constexpr Power kGstActivationResetPower = 53.3_mW; // [8]
inline constexpr Power kBpdTiaPower = 12.1_mW;             // [19]
inline constexpr Power kCachePowerPerPe = 30.0_mW;         // [30]
/// Total PE power while programming weights (Table III).
inline constexpr Power kPePowerTotal = 0.67_W;
/// PE power once weights are resident: tuning power disappears (§IV:
/// "the power draw is reduced by 83.34% from 0.67 W to 0.11 W").
inline constexpr Power kPePowerWeightsLoaded = 0.11_W;

// ---------------------------------------------------------------------------
// §III-IV architecture parameters
// ---------------------------------------------------------------------------

/// WDM channel spacing lower bound (§III.A, after [32]).
inline constexpr Length kMinChannelSpacing = 1.6_nm;
/// C-band anchor wavelength; the GST activation curve was measured at
/// 1553.4 nm (§III.C / Fig 3).
inline constexpr Length kActivationWavelength = 1553.4_nm;
inline constexpr Length kCBandStart = 1530.0_nm;

/// GST activation threshold: the weighted-sum pulse energy above which the
/// activation cell switches amorphous and transmits (§III.C: 430.0 pJ).
inline constexpr Energy kActivationThreshold = 430.0_pJ;
/// Linearised derivative of the activation transfer above threshold (§III.C).
inline constexpr double kActivationDerivativeHigh = 0.34;
inline constexpr double kActivationDerivativeLow = 0.0;
/// Activation-cell ring radius (§III.C).
inline constexpr Length kActivationRingRadius = 60.0_um;

/// Edge power budget the paper scales every accelerator to (§IV).
inline constexpr Power kEdgePowerBudget = 30.0_W;
/// PEs that fit the 30 W budget (§IV).
inline constexpr int kTridentPeCount = 44;
/// MRRs per PE weight bank (§IV: "each with 256 MRRs"); arranged 16×16.
inline constexpr int kMrrsPerPe = 256;
inline constexpr int kWeightBankRows = 16;
inline constexpr int kWeightBankCols = 16;
/// Electronic clock for modulation / peripheral control (§IV).
inline constexpr Frequency kClockRate = 1.37_GHz;
/// Total area of the 44-PE accelerator (§IV).
inline constexpr Area kTridentTotalArea = 604.6_mm2;
/// Per-PE L1 cache: 16 kB, 0.092 mm × 0.085 mm (§IV).
inline constexpr double kPeCacheBytes = 16.0 * 1024.0;
inline constexpr Area kPeCacheArea = Area::square_millimeters(0.092 * 0.085);
/// Shared L2: 32 MB (§IV).
inline constexpr double kL2CacheBytes = 32.0 * 1024.0 * 1024.0;

/// Peak Trident throughput under the 30 W budget (§V.A).
inline constexpr double kTridentPeakTops = 7.8;

// ---------------------------------------------------------------------------
// Generic silicon-photonics parameters (standard SOI values; used by the
// device-level spectra, not by the paper's analytical tables)
// ---------------------------------------------------------------------------

/// Waveguide effective index near 1550 nm.
inline constexpr double kEffectiveIndex = 2.35;
/// Waveguide group index near 1550 nm.
inline constexpr double kGroupIndex = 4.2;
/// Typical weight-bank MRR radius.
inline constexpr Length kWeightMrrRadius = 10.0_um;
/// Photodetector responsivity (A/W), typical Ge-on-Si PD.
inline constexpr double kPdResponsivity = 1.0;

}  // namespace trident::phot
