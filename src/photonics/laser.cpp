#include "photonics/laser.hpp"

#include "common/error.hpp"

namespace trident::phot {

LaserSource::LaserSource(Length wavelength, Power peak_power, int dac_bits)
    : wavelength_(wavelength), peak_power_(peak_power), dac_(dac_bits, 1.0) {
  TRIDENT_REQUIRE(wavelength.m() > 0.0, "wavelength must be positive");
  TRIDENT_REQUIRE(peak_power.W() > 0.0, "peak power must be positive");
}

Power LaserSource::modulate(double x) const {
  return peak_power_ * encoded_value(x);
}

double LaserSource::encoded_value(double x) const { return dac_.quantize(x); }

WdmSourceBank::WdmSourceBank(std::vector<Length> wavelengths, Power peak_power,
                             Frequency symbol_rate, int dac_bits)
    : symbol_rate_(symbol_rate) {
  TRIDENT_REQUIRE(!wavelengths.empty(), "source bank needs >= 1 wavelength");
  TRIDENT_REQUIRE(symbol_rate.Hz() > 0.0, "symbol rate must be positive");
  sources_.reserve(wavelengths.size());
  for (Length w : wavelengths) {
    sources_.emplace_back(w, peak_power, dac_bits);
  }
}

const LaserSource& WdmSourceBank::source(int i) const {
  TRIDENT_REQUIRE(i >= 0 && i < size(), "source index out of range");
  return sources_[static_cast<std::size_t>(i)];
}

std::vector<Power> WdmSourceBank::encode(const std::vector<double>& xs) const {
  TRIDENT_REQUIRE(static_cast<int>(xs.size()) == size(),
                  "input vector size must match channel count");
  std::vector<Power> out;
  out.reserve(xs.size());
  for (std::size_t i = 0; i < xs.size(); ++i) {
    out.push_back(sources_[i].modulate(xs[i]));
  }
  return out;
}

Energy WdmSourceBank::symbol_energy_full_scale() const {
  Energy total;
  for (const auto& s : sources_) {
    total += s.peak_power() * symbol_time();
  }
  return total;
}

}  // namespace trident::phot
