// Effective number of bits (ENOB) of the analog read-out chain.
//
// The 8-bit story has three gatekeepers: the GST level count (255), the
// crosstalk budget (photonics/wdm, core/spectral_bank), and — analysed
// here — the balanced photodetector's noise floor.  A weight step is only
// meaningful if the corresponding photocurrent step clears the shot +
// thermal noise at the detection bandwidth, which couples the achievable
// resolution to the *optical power* arriving at the BPD: the link budget,
// the laser power, and the precision claim are one system.
#pragma once

#include "common/units.hpp"
#include "photonics/photodetector.hpp"

namespace trident::phot {

struct EnobReport {
  double signal_current = 0.0;  ///< full-scale differential current (A)
  double noise_rms = 0.0;       ///< at the operating point (A)
  double snr_db = 0.0;
  int effective_bits = 0;       ///< floor(log2(signal / (2·noise)))
};

/// Read-out resolution for a full-scale optical swing of `full_scale`
/// reaching the BPD (per row, after all link losses).
[[nodiscard]] EnobReport readout_enob(const BpdParams& bpd,
                                      units::Power full_scale);

/// Minimum optical power at the detector for `bits` of read-out
/// resolution (bisection over power).
[[nodiscard]] units::Power required_power_for_bits(const BpdParams& bpd,
                                                   int bits);

}  // namespace trident::phot
