// Laser sources and input modulation.
//
// Each PE input x_i is amplitude-encoded onto its own wavelength λ_i
// (§III.A).  A WdmSourceBank models the array of input lasers plus the
// DAC-limited modulators that imprint the (non-negative) signal values onto
// the optical carriers; signed values are handled upstream by the add-drop /
// balanced-photodetector arrangement, so the modulated amplitude is |x|
// with the sign folded into the weight path.
//
// The E/O laser is the small directly modulated laser that re-emits a PE
// row's electronic result into the optical domain for the next PE (Fig 1);
// its 0.032 mW draw is the cheapest entry in Table III.
#pragma once

#include <vector>

#include "common/quantize.hpp"
#include "common/units.hpp"
#include "photonics/constants.hpp"

namespace trident::phot {

/// One continuous-wave source plus amplitude modulator.
class LaserSource {
 public:
  LaserSource(Length wavelength, Power peak_power, int dac_bits = 8);

  [[nodiscard]] Length wavelength() const { return wavelength_; }
  [[nodiscard]] Power peak_power() const { return peak_power_; }
  [[nodiscard]] int dac_bits() const { return dac_.bits(); }

  /// Modulates a normalised value x ∈ [0, 1] onto the carrier; returns the
  /// emitted optical power after DAC quantization.
  [[nodiscard]] Power modulate(double x) const;

  /// The normalised value actually encoded for x (post-quantization).
  [[nodiscard]] double encoded_value(double x) const;

 private:
  Length wavelength_;
  Power peak_power_;
  UnsignedQuantizer dac_;
};

/// Array of N sources on a WDM grid; encodes an input vector per symbol.
class WdmSourceBank {
 public:
  /// Sources on channels `wavelengths`, all at `peak_power`, sharing one
  /// modulation clock (symbol rate).
  WdmSourceBank(std::vector<Length> wavelengths, Power peak_power,
                Frequency symbol_rate = kClockRate, int dac_bits = 8);

  [[nodiscard]] int size() const { return static_cast<int>(sources_.size()); }
  [[nodiscard]] const LaserSource& source(int i) const;
  [[nodiscard]] Frequency symbol_rate() const { return symbol_rate_; }
  [[nodiscard]] Time symbol_time() const { return units::period(symbol_rate_); }

  /// Encodes xs[i] ∈ [0, 1] onto channel i.  Returns per-channel powers.
  [[nodiscard]] std::vector<Power> encode(
      const std::vector<double>& xs) const;

  /// Optical energy emitted for one symbol with all channels at x = 1.
  [[nodiscard]] Energy symbol_energy_full_scale() const;

 private:
  std::vector<LaserSource> sources_;
  Frequency symbol_rate_;
};

/// Inter-PE electro-optic conversion laser (Table III: 0.032 mW).
struct EoLaser {
  Power power = kEoLaserPower;
  Frequency symbol_rate = kClockRate;

  /// Energy per re-emitted symbol.
  [[nodiscard]] Energy energy_per_symbol() const {
    return power * units::period(symbol_rate);
  }
};

}  // namespace trident::phot
