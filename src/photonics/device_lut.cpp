#include "photonics/device_lut.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace trident::phot {

GstTransmissionLut build_gst_transmission_lut(const GstCellParams& params) {
  TRIDENT_REQUIRE(params.levels >= 2, "GST LUT needs at least two levels");
  GstTransmissionLut lut;
  lut.intensity.resize(static_cast<std::size_t>(params.levels));
  lut.amplitude.resize(static_cast<std::size_t>(params.levels));
  // Probe cell: programming it through every level reproduces the exact
  // effective-medium interpolation the per-ring simulation computes.  The
  // probe is discarded, so its pulse accounting bills nothing real.
  GstCell probe(params);
  for (int l = 0; l < params.levels; ++l) {
    probe.program(l);
    lut.intensity[static_cast<std::size_t>(l)] = probe.transmittance();
    lut.amplitude[static_cast<std::size_t>(l)] =
        probe.amplitude_transmittance();
  }
  return lut;
}

MrrWeightLut build_mrr_weight_lut(const MrrDesign& design,
                                  units::Length resonance,
                                  const GstCellParams& gst) {
  TRIDENT_REQUIRE(gst.levels >= 2, "MRR weight LUT needs at least two levels");
  const Mrr ring(design, resonance);
  MrrWeightLut lut;
  lut.raw.resize(static_cast<std::size_t>(gst.levels));
  // Same probe sweep as WeightBank::raw_weight_for_level: on-resonance
  // (drop − through) of a ring whose intracavity loss is the probed level's
  // amplitude transmittance.
  GstCell probe(gst);
  for (int l = 0; l < gst.levels; ++l) {
    probe.program(l);
    const MrrResponse r =
        ring.response(ring.resonance(), probe.amplitude_transmittance());
    lut.raw[static_cast<std::size_t>(l)] = r.drop - r.through;
  }
  const auto [lo, hi] = std::minmax_element(lut.raw.begin(), lut.raw.end());
  lut.raw_min = *lo;
  lut.raw_max = *hi;
  TRIDENT_ASSERT(lut.raw_max > lut.raw_min,
                 "GST sweep produced a degenerate weight range");
  lut.scale = (lut.raw_max - lut.raw_min) / 2.0;
  const double mid = (lut.raw_min + lut.raw_max) / 2.0;
  lut.weight.resize(lut.raw.size());
  for (std::size_t l = 0; l < lut.raw.size(); ++l) {
    lut.weight[l] = (lut.raw[l] - mid) / lut.scale;
  }
  return lut;
}

int MrrWeightLut::nearest_level(double target) const {
  const double clamped = std::clamp(target, -1.0, 1.0);
  const double desired_raw =
      (raw_min + raw_max) / 2.0 + clamped * scale;
  int best = 0;
  double best_err = std::abs(raw[0] - desired_raw);
  for (int l = 1; l < levels(); ++l) {
    const double err = std::abs(raw[static_cast<std::size_t>(l)] - desired_raw);
    if (err < best_err) {
      best_err = err;
      best = l;
    }
  }
  return best;
}

ActivationLut build_activation_lut(const std::function<double(double)>& f,
                                   const SymmetricQuantizer& in,
                                   const SymmetricQuantizer& out) {
  TRIDENT_REQUIRE(in.bits() <= 8 && out.bits() <= 8,
                  "activation LUT grids must fit int8");
  ActivationLut lut;
  const int half = (in.levels() - 1) / 2;
  for (int raw = -128; raw <= 127; ++raw) {
    // Byte patterns outside the input grid (|level| > half_steps, incl.
    // -128 which no ≤8-bit symmetric grid produces) saturate to the edge.
    const int level = std::clamp(raw, -half, half);
    const std::int8_t result =
        static_cast<std::int8_t>(out.to_level(f(in.from_level(level))));
    lut.table[static_cast<std::uint8_t>(static_cast<std::int8_t>(raw))] =
        result;
  }
  return lut;
}

}  // namespace trident::phot
