// Ge₂Sb₂Te₅ (GST) phase-change cell model.
//
// GST switches between an amorphous phase (low optical absorption — the
// waveguide is highly transmissive, encoding a LARGE weight) and a
// crystalline phase (high absorption — SMALL weight) [37].  Partial
// crystallisation yields intermediate transmission; current devices resolve
// 255 levels → 8-bit weights [5].  Programming is optical: a high-power
// write pulse (≥ 660 pJ [37], 300 ns [13]) melts/quenches or anneals the
// cell; a low-power read pulse (≈ 20 pJ [8]) probes it.  The state is
// non-volatile (≈10-year retention) so a programmed weight costs *zero*
// static power — the property the whole Trident energy argument rests on.
//
// The model tracks:
//   * the discrete programmed level (0 = fully crystalline … 254 = fully
//     amorphous) and the corresponding amplitude/intensity transmittance;
//   * cumulative write energy/time and switching-cycle count (endurance);
//   * optional programming noise (level-placement error), used by the
//     functional accuracy studies.
#pragma once

#include <cstdint>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "photonics/constants.hpp"

namespace trident::phot {

/// Static device parameters of a GST cell.
struct GstCellParams {
  int levels = kGstLevels;                ///< programmable levels (255 → 8 bit)
  Energy write_energy = kGstWriteEnergy;  ///< per write pulse
  Time write_time = kGstWriteTime;        ///< per write pulse
  Energy read_energy = kGstReadEnergy;    ///< per read pulse
  /// Intensity transmittance of the fully crystalline state (light mostly
  /// absorbed) and the fully amorphous state (mostly transmitted) [37].
  double transmittance_crystalline = 0.05;
  double transmittance_amorphous = 0.95;
  /// Std-dev of the placement error of a full-swing write, in *levels*
  /// (0 = ideal).  Short moves scale as sqrt(distance): trim pulses are
  /// precise, which is what write-verify calibration exploits.
  double programming_noise_levels = 0.0;
  double endurance_cycles = kGstEnduranceCycles;  ///< [17]
};

class GstCell {
 public:
  explicit GstCell(const GstCellParams& params = {});

  [[nodiscard]] const GstCellParams& params() const { return params_; }

  /// Number of programmable levels.
  [[nodiscard]] int levels() const { return params_.levels; }

  /// Current level: 0 = fully crystalline, levels-1 = fully amorphous.
  [[nodiscard]] int level() const { return level_; }

  /// Crystalline fraction ∈ [0, 1] implied by the current level.
  [[nodiscard]] double crystalline_fraction() const;

  /// Intensity transmittance at the current level.  Partial states
  /// interpolate between the crystalline and amorphous extremes following
  /// an effective-medium (linear in crystalline fraction) approximation.
  [[nodiscard]] double transmittance() const;

  /// Amplitude transmittance = sqrt(intensity transmittance); this is what
  /// multiplies the intracavity field of a host MRR.
  [[nodiscard]] double amplitude_transmittance() const;

  /// Programs the cell to `target_level`.  Commanding a level different
  /// from the current one fires one write pulse, billed unconditionally
  /// (energy, time, endurance) — even when programming noise lands the
  /// achieved level back on the starting one, the pulse physically fired.
  /// Re-programming to the *commanded* current level is free: the control
  /// logic skips unchanged weights (non-volatility makes the comparison
  /// trivial) and never issues a pulse.  Returns the level actually
  /// reached.
  int program(int target_level, Rng* rng = nullptr);

  /// Restores a snapshotted level and its historical pulse counters without
  /// firing a pulse — the physical cell kept its phase across the process
  /// restart, so nothing new is billed.
  void restore(int level, std::uint64_t writes, std::uint64_t reads);

  /// Programs the transmittance closest to `target` ∈ [0, 1] (clamped to
  /// the device's achievable range).  Returns the achieved transmittance.
  double program_transmittance(double target, Rng* rng = nullptr);

  /// Registers a read pulse and returns the transmittance it would observe.
  double read();

  /// --- accounting -------------------------------------------------------
  [[nodiscard]] std::uint64_t writes() const { return writes_; }
  [[nodiscard]] std::uint64_t reads() const { return reads_; }
  [[nodiscard]] Energy total_write_energy() const;
  [[nodiscard]] Energy total_read_energy() const;
  [[nodiscard]] Time total_write_time() const;
  /// Fraction of rated endurance consumed so far.
  [[nodiscard]] double wear() const;

 private:
  GstCellParams params_;
  int level_;
  std::uint64_t writes_ = 0;
  std::uint64_t reads_ = 0;
};

}  // namespace trident::phot
