#include "photonics/thermal.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace trident::phot {

ThermalCrosstalkMap::ThermalCrosstalkMap(int rows, int cols,
                                         const ThermalParams& params)
    : rows_(rows), cols_(cols), params_(params) {
  TRIDENT_REQUIRE(rows >= 1 && cols >= 1, "grid dimensions must be positive");
  TRIDENT_REQUIRE(params_.self_heating_kelvin > 0.0 &&
                      params_.decay_length.m() > 0.0 &&
                      params_.nm_per_kelvin > 0.0 && params_.pitch.m() > 0.0,
                  "thermal parameters must be positive");
}

double ThermalCrosstalkMap::coupling(int r1, int c1, int r2, int c2) const {
  const double dr = static_cast<double>(r1 - r2);
  const double dc = static_cast<double>(c1 - c2);
  const double distance = std::sqrt(dr * dr + dc * dc) * params_.pitch.m();
  return std::exp(-distance / params_.decay_length.m());
}

double ThermalCrosstalkMap::temperature_at(
    int r, int c, const std::vector<double>& drives) const {
  TRIDENT_REQUIRE(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                  "grid index out of range");
  TRIDENT_REQUIRE(drives.size() == static_cast<std::size_t>(rows_ * cols_),
                  "drive vector must cover the grid");
  double kelvin = 0.0;
  for (int rr = 0; rr < rows_; ++rr) {
    for (int cc = 0; cc < cols_; ++cc) {
      const double drive = drives[static_cast<std::size_t>(rr * cols_ + cc)];
      TRIDENT_REQUIRE(drive >= 0.0 && drive <= 1.0,
                      "heater drives must be in [0, 1]");
      kelvin += drive * params_.self_heating_kelvin * coupling(r, c, rr, cc);
    }
  }
  return kelvin;
}

units::Length ThermalCrosstalkMap::neighbour_shift_at(
    int r, int c, const std::vector<double>& drives) const {
  std::vector<double> others = drives;
  others[static_cast<std::size_t>(r * cols_ + c)] = 0.0;
  return units::Length::nanometers(params_.nm_per_kelvin *
                                   temperature_at(r, c, others));
}

units::Length ThermalCrosstalkMap::worst_case_neighbour_shift() const {
  std::vector<double> all_on(static_cast<std::size_t>(rows_ * cols_), 1.0);
  double worst = 0.0;
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      worst = std::max(worst, neighbour_shift_at(r, c, all_on).nm());
    }
  }
  return units::Length::nanometers(worst);
}

double ThermalCrosstalkMap::weight_error(units::Length shift,
                                         units::Length fwhm) const {
  TRIDENT_REQUIRE(fwhm.m() > 0.0, "FWHM must be positive");
  // At the half-transmission bias point a Lorentzian's slope is maximal:
  // |dT/dλ| = 2/FWHM of full scale, so a detuning δλ moves the encoded
  // weight by ≈ 2·δλ/FWHM (clamped to full scale).
  return std::min(1.0, 2.0 * shift.m() / fwhm.m());
}

}  // namespace trident::phot
