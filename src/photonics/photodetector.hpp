// Balanced photodetector (BPD) and transimpedance amplifier (TIA).
//
// Each weight-bank row terminates in a BPD: two photodiodes wired in
// opposition, one fed by the summed drop ports, one by the summed through
// ports.  The differential photocurrent is proportional to
// Σᵢ (T_drop,i − T_thru,i)·Pᵢ, i.e. a signed dot product accumulated in the
// analog domain — the "accumulate" half of the photonic MAC [32].
//
// The TIA converts that current to a voltage.  In Trident it is also the
// programmable-gain element used during the backward pass: for the gradient
// vector computation its gain is set to f'(h_k) ∈ {0, 0.34} to realise the
// Hadamard product of Eq. (3) without extra hardware (§III.A.2).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "photonics/constants.hpp"

namespace trident::phot {

/// Noise/behaviour parameters of the BPD.
struct BpdParams {
  double responsivity = kPdResponsivity;  ///< A/W
  Frequency bandwidth = kClockRate;       ///< detection bandwidth
  /// Input-referred thermal noise current density (A/√Hz); ~10 pA/√Hz is
  /// typical for a receiver like [19].
  double thermal_noise_density = 10e-12;
  bool enable_noise = false;
};

class BalancedPhotodetector {
 public:
  explicit BalancedPhotodetector(const BpdParams& params = {});

  [[nodiscard]] const BpdParams& params() const { return params_; }

  /// Differential photocurrent (A) for total plus/minus port powers.
  /// With noise enabled, adds shot noise of both diodes plus thermal noise.
  [[nodiscard]] double current(Power plus, Power minus,
                               Rng* rng = nullptr) const;

  /// Accumulates row dot product: powers on the drop side and through side
  /// of each channel; returns the differential current.
  [[nodiscard]] double accumulate(const std::vector<Power>& drop,
                                  const std::vector<Power>& thru,
                                  Rng* rng = nullptr) const;

  /// RMS noise current (A) at operating photocurrent `i_avg`.
  [[nodiscard]] double noise_rms(double i_avg) const;

 private:
  BpdParams params_;
};

/// Transimpedance amplifier with a programmable gain used for f'(h).
class Tia {
 public:
  /// `transimpedance_ohms` converts BPD current to output voltage.
  explicit Tia(double transimpedance_ohms = 1.0e4);

  /// Output voltage for input current (A), scaled by the programmed gain.
  [[nodiscard]] double amplify(double current_amps) const;

  /// Programs the extra gain factor (1.0 for inference; f'(h) ∈ {0, 0.34}
  /// during the gradient-vector pass).
  void set_gain(double gain);
  [[nodiscard]] double gain() const { return gain_; }

  [[nodiscard]] double transimpedance() const { return transimpedance_; }

  /// Combined BPD + TIA power (Table III: 12.1 mW per PE) is accounted at
  /// the architecture level; this constant is exposed for the breakdown.
  [[nodiscard]] static Power pair_power() { return kBpdTiaPower; }

 private:
  double transimpedance_;
  double gain_ = 1.0;
};

}  // namespace trident::phot
