// MRR tuning-method models (paper Table I and §II.B).
//
// The central premise of Trident: MRR tuning dominates photonic-accelerator
// energy, and the choice of tuning mechanism sets write energy, write speed,
// *hold* power (volatile methods draw power continuously to keep a weight),
// and achievable bit resolution.  Three mechanisms are modelled:
//
//   thermal       1.02 nJ / write, 0.6 µs, 1.7 mW hold (volatile), 6 bits
//   electro-optic 0.18 pm/V sensitivity, 500 ns, needs ±100 V on a 60 µm
//                 ring — impractical for edge devices (the paper drops it)
//   GST (PCM)     660 pJ / write, 300 ns, ZERO hold power (non-volatile),
//                 8 bits (255 levels)
#pragma once

#include <string>
#include <vector>

#include "common/units.hpp"
#include "photonics/constants.hpp"

namespace trident::phot {

enum class TuningKind { kThermal, kElectroOptic, kGst };

/// Behavioural summary of one tuning mechanism.
struct TuningMethod {
  TuningKind kind = TuningKind::kGst;
  std::string name;
  Energy write_energy;     ///< energy to (re)program one MRR weight
  Time write_time;         ///< latency of one weight write
  Power hold_power;        ///< continuous power per MRR to *keep* the weight
  int bit_resolution = 0;  ///< usable weight precision
  bool non_volatile = false;
  bool practical_for_edge = true;

  /// Energy to program a bank of `mrrs` weights.  All MRRs in a bank are
  /// written in parallel (each has its own wavelength / driver), so the
  /// *time* is one write_time but the *energy* scales with the bank size.
  [[nodiscard]] Energy program_energy(int mrrs) const {
    return write_energy * static_cast<double>(mrrs);
  }
  [[nodiscard]] Time program_time(int /*mrrs*/) const { return write_time; }

  /// Total tuning energy for holding a programmed bank of `mrrs` weights for
  /// `duration` (zero for non-volatile methods).
  [[nodiscard]] Energy hold_energy(int mrrs, Time duration) const {
    return hold_power * static_cast<double>(mrrs) * duration;
  }

  /// Whether this method supports in-situ training: the paper requires
  /// ≥ 8-bit weight resolution (Wang et al. [34]).
  [[nodiscard]] bool supports_training() const { return bit_resolution >= 8; }
};

/// Thermal micro-heater tuning (DEAP-CNN, PIXEL baselines).
[[nodiscard]] TuningMethod thermal_tuning();

/// Electro-optic tuning (characterised for Table I; not practical at the
/// edge — §II.B — and excluded from the accelerator comparisons).
[[nodiscard]] TuningMethod electro_optic_tuning();

/// GST phase-change tuning (Trident).
[[nodiscard]] TuningMethod gst_tuning();

/// CrossLight's hybrid scheme: thermo-optic coarse + electro-optic fine
/// tuning to reduce crosstalk (Sunny et al. [31]).  Modelled with thermal
/// energy/hold cost but improved (thermal+1) resolution.
[[nodiscard]] TuningMethod hybrid_tuning();

/// All Table I rows, in the paper's order.
[[nodiscard]] std::vector<TuningMethod> table1_methods();

/// Voltage needed to shift a resonance by `shift` with the electro-optic
/// effect (0.18 pm/V).  Illustrates why EO tuning is impractical: shifting
/// by even a fraction of a 1.6 nm channel takes hundreds of volts.
[[nodiscard]] double electro_optic_volts_for_shift(Length shift);

}  // namespace trident::phot
