#include "photonics/mrr.hpp"

#include <cmath>
#include <numbers>

#include "common/error.hpp"

namespace trident::phot {

namespace {
constexpr double kPi = std::numbers::pi;
}

Mrr::Mrr(const MrrDesign& design, Length target_resonance)
    : design_(design), resonance_(target_resonance), mode_order_(0) {
  TRIDENT_REQUIRE(design.radius.m() > 0.0, "ring radius must be positive");
  TRIDENT_REQUIRE(design.self_coupling_1 > 0.0 && design.self_coupling_1 < 1.0,
                  "self-coupling t1 must be in (0, 1)");
  TRIDENT_REQUIRE(design.self_coupling_2 > 0.0 && design.self_coupling_2 < 1.0,
                  "self-coupling t2 must be in (0, 1)");
  TRIDENT_REQUIRE(design.intrinsic_loss_amplitude > 0.0 &&
                      design.intrinsic_loss_amplitude <= 1.0,
                  "round-trip amplitude must be in (0, 1]");
  TRIDENT_REQUIRE(target_resonance.m() > 0.0, "resonance must be positive");

  // Pick the longitudinal mode whose resonance lands nearest the target,
  // then snap the tracked resonance onto that mode so that
  // round_trip_phase(resonance_) is an exact multiple of 2π.
  const double optical_length = design_.effective_index * circumference().m();
  mode_order_ = static_cast<int>(
      std::lround(optical_length / target_resonance.m()));
  TRIDENT_ASSERT(mode_order_ >= 1, "ring too small for target wavelength");
  resonance_ = Length::meters(optical_length / mode_order_);
}

void Mrr::set_resonance(Length wavelength) {
  TRIDENT_REQUIRE(wavelength.m() > 0.0, "resonance must be positive");
  resonance_ = wavelength;
}

Length Mrr::circumference() const {
  return Length::meters(2.0 * kPi * design_.radius.m());
}

Length Mrr::free_spectral_range() const {
  const double lambda = resonance_.m();
  return Length::meters(lambda * lambda /
                        (design_.group_index * circumference().m()));
}

double Mrr::round_trip_phase(Length wavelength) const {
  // Linearised around the tracked resonance using the group index, which is
  // the standard first-order-dispersion treatment: at λres the phase is an
  // exact multiple of 2π; it changes by 2π per FSR of detuning.
  const double detuning = wavelength.m() - resonance_.m();
  const double lambda_res = resonance_.m();
  return 2.0 * kPi * mode_order_ -
         2.0 * kPi * design_.group_index * circumference().m() * detuning /
             (lambda_res * lambda_res);
}

Length Mrr::fwhm() const {
  const double t1 = design_.self_coupling_1;
  const double t2 = design_.self_coupling_2;
  const double a = design_.intrinsic_loss_amplitude;
  const double lambda = resonance_.m();
  const double denom = kPi * design_.group_index * circumference().m() *
                       std::sqrt(t1 * t2 * a);
  return Length::meters((1.0 - t1 * t2 * a) * lambda * lambda / denom);
}

double Mrr::quality_factor() const { return resonance_.m() / fwhm().m(); }

MrrResponse Mrr::response(Length wavelength, double cavity_attenuation) const {
  TRIDENT_REQUIRE(cavity_attenuation > 0.0 && cavity_attenuation <= 1.0,
                  "cavity attenuation must be in (0, 1]");
  const double t1 = design_.self_coupling_1;
  const double t2 = design_.self_coupling_2;
  const double a = design_.intrinsic_loss_amplitude * cavity_attenuation;
  const double phi = round_trip_phase(wavelength);
  const double cos_phi = std::cos(phi);

  const double denom = 1.0 - 2.0 * t1 * t2 * a * cos_phi +
                       (t1 * t2 * a) * (t1 * t2 * a);
  MrrResponse r;
  r.through = (t2 * t2 * a * a - 2.0 * t1 * t2 * a * cos_phi + t1 * t1) / denom;
  r.drop = (1.0 - t1 * t1) * (1.0 - t2 * t2) * a / denom;
  return r;
}

std::vector<MrrResponse> Mrr::spectrum(Length start, Length stop, int points,
                                       double cavity_attenuation) const {
  TRIDENT_REQUIRE(points >= 2, "spectrum needs at least two points");
  TRIDENT_REQUIRE(stop.m() > start.m(), "spectrum range must be increasing");
  std::vector<MrrResponse> out;
  out.reserve(static_cast<std::size_t>(points));
  const double step = (stop.m() - start.m()) / (points - 1);
  for (int i = 0; i < points; ++i) {
    out.push_back(response(Length::meters(start.m() + i * step),
                           cavity_attenuation));
  }
  return out;
}

}  // namespace trident::phot
