// Live trace spans: RAII scoped timers feeding a per-thread in-memory
// trace buffer, with optional request-scoped trace correlation.
//
// A Span measures one scope on the steady clock and, at destruction,
// appends a complete event to the calling thread's buffer.  Buffers are
// registered once per thread with the global TraceBuffer; recording locks
// only the thread's own chunk (uncontended in steady state — "lock-cheap"),
// while snapshot() briefly locks each chunk to copy events out.
//
// Spans honour the telemetry switch at construction: with telemetry
// disabled a Span is inert (no clock read, no allocation beyond what the
// caller already built).  Hot paths therefore guard span creation:
//
//   std::optional<telemetry::Span> span;
//   if (telemetry::enabled()) {
//     span.emplace("forward/layer" + std::to_string(k), "mlp");
//   }
//
// Request-scoped tracing: a TraceContext {trace id, span id} names one
// causal tree.  The serving runtime mints a trace id per admitted request;
// a TraceScope installs a context as the calling thread's *current* trace,
// and every Span built underneath inherits it automatically — so the
// per-layer nn spans and the GEMM dispatch spans nest under the serving
// batch span with zero changes at those sites.  Trace/span/parent ids are
// exported as Chrome-trace `args`, so one request renders as a single
// causal tree in Perfetto next to the existing thread tracks.
//
// The exported form (exporters.hpp) is Chrome-tracing JSON, the same
// format core/trace_export.cpp writes for ArraySim schedules — so a live
// training run opens in Perfetto next to an offline array schedule.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace trident::telemetry {

/// Identity of one causal trace: which tree an event belongs to
/// (`trace_id`, 0 = untraced) and the span acting as parent for children
/// created underneath (`span_id`).
struct TraceContext {
  std::uint64_t trace_id = 0;
  std::uint64_t span_id = 0;

  [[nodiscard]] bool active() const { return trace_id != 0; }
  friend bool operator==(const TraceContext&, const TraceContext&) = default;
};

/// Returns a pointer to the process-lifetime interned copy of `category`.
/// Idempotent and thread-safe; equal strings intern to the same pointer.
/// This is what makes TraceEvent::category safe to snapshot: a caller may
/// build the category dynamically and free it immediately — the event
/// stores the interned copy, never the caller's buffer.
[[nodiscard]] const char* intern_category(std::string_view category);

/// The calling thread's current trace context ({0,0} when none is
/// installed).  Spans inherit this as their parent by default.
[[nodiscard]] TraceContext current_trace();

/// RAII: installs `ctx` as the calling thread's current trace context and
/// restores the previous one on destruction.  Cheap (two thread-local
/// stores); used by the serving runtime around each micro-batch so the
/// nn/GEMM spans underneath attach to the batch's trace.
class TraceScope {
 public:
  explicit TraceScope(TraceContext ctx);
  TraceScope(const TraceScope&) = delete;
  TraceScope& operator=(const TraceScope&) = delete;
  ~TraceScope();

 private:
  TraceContext previous_;
};

/// One completed span ("X" event in the Chrome trace format).
struct TraceEvent {
  std::string name;
  /// Interned category string (see intern_category); callers constructing
  /// events directly may pass any string — record() interns it.
  const char* category = "app";
  double ts_us = 0.0;  ///< start, µs since the trace epoch
  double dur_us = 0.0;
  std::uint32_t tid = 0;  ///< small per-thread id (first-use order)
  // --- request-scoped correlation (all 0 / empty when untraced) ----------
  std::uint64_t trace_id = 0;  ///< causal tree this event belongs to
  std::uint64_t span_id = 0;   ///< this event's own id within the trace
  std::uint64_t parent_id = 0;  ///< parent span id (0 = trace root)
  /// Extra Chrome-trace `args` members, as a pre-rendered JSON fragment
  /// without braces (e.g. `"replica":0,"attempt":2`).  Empty = none.
  std::string args;
};

/// Process-wide collector of per-thread span buffers.
class TraceBuffer {
 public:
  static TraceBuffer& global();

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// Appends a completed event to the calling thread's chunk.  Drops (and
  /// counts) the event when the per-thread capacity is reached.
  void record(std::string name, const char* category, double ts_us,
              double dur_us);

  /// Full-fidelity append: interns `event.category`, stamps the calling
  /// thread's tid, and buffers the event (same capacity/drop rules).  This
  /// is how the serving runtime records retro-dated request phases (queue
  /// wait measured at the batch cut) with trace correlation attached.
  void record(TraceEvent event);

  /// Copy of all recorded events, sorted by start time.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// Total events currently buffered across threads.
  [[nodiscard]] std::size_t size() const;

  /// Discards all buffered events (thread registrations persist).
  void clear();

  /// Events dropped due to the per-thread cap since the last clear().
  /// (`trident_trace_dropped_total` mirrors the lifetime total — it is a
  /// monotonic counter and does not rewind on clear().)
  [[nodiscard]] std::uint64_t dropped() const;

  /// Per-thread buffer cap (default 1M events ≈ 64 MB worst case).
  void set_thread_capacity(std::size_t cap);

  /// Microseconds since the trace epoch (first use of the buffer).
  [[nodiscard]] double now_us() const;

  /// Converts a steady-clock time point to µs since the trace epoch
  /// (clamped at 0 for pre-epoch stamps).
  [[nodiscard]] double to_us(std::chrono::steady_clock::time_point tp) const;

 private:
  struct ThreadChunk {
    std::mutex mutex;
    std::vector<TraceEvent> events;
    std::uint32_t tid = 0;
  };

  TraceBuffer();
  ThreadChunk& local_chunk();

  mutable std::mutex registry_mutex_;
  std::vector<std::shared_ptr<ThreadChunk>> chunks_;
  std::atomic<std::uint32_t> next_tid_{0};
  std::atomic<std::size_t> thread_capacity_{1u << 20};
  std::atomic<std::uint64_t> dropped_{0};
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII scoped timer.  Inert when telemetry is disabled at construction.
class Span {
 public:
  /// Inert span (records nothing).
  Span() = default;

  /// Starts timing immediately when telemetry is enabled.  `category` is
  /// interned (a dynamically built string is safe).  The span inherits the
  /// calling thread's current trace context as its parent.
  explicit Span(std::string name, const char* category = "app");

  /// Starts timing with an explicit parent context (overrides the thread's
  /// current trace).  `args` is a pre-rendered JSON fragment without
  /// braces, attached to the exported event.
  Span(std::string name, const char* category, TraceContext parent,
       std::string args = {});

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  ~Span() { end(); }

  /// Finishes the span early (idempotent).
  void end();

  [[nodiscard]] bool active() const { return active_; }

  /// This span's own context (its trace id + span id) — what children
  /// should use as their parent.  {0,0} when the span is untraced.
  [[nodiscard]] TraceContext context() const {
    return {trace_id_, span_id_};
  }

  /// Replaces the exported args fragment (no-op on an inert span).
  void set_args(std::string args);

 private:
  std::string name_;
  const char* category_ = "app";
  double start_us_ = 0.0;
  bool active_ = false;
  std::uint64_t trace_id_ = 0;
  std::uint64_t span_id_ = 0;
  std::uint64_t parent_id_ = 0;
  std::string args_;
};

}  // namespace trident::telemetry
