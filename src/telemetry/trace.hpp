// Live trace spans: RAII scoped timers feeding a per-thread in-memory
// trace buffer.
//
// A Span measures one scope on the steady clock and, at destruction,
// appends a complete event to the calling thread's buffer.  Buffers are
// registered once per thread with the global TraceBuffer; recording locks
// only the thread's own chunk (uncontended in steady state — "lock-cheap"),
// while snapshot() briefly locks each chunk to copy events out.
//
// Spans honour the telemetry switch at construction: with telemetry
// disabled a Span is inert (no clock read, no allocation beyond what the
// caller already built).  Hot paths therefore guard span creation:
//
//   std::optional<telemetry::Span> span;
//   if (telemetry::enabled()) {
//     span.emplace("forward/layer" + std::to_string(k), "mlp");
//   }
//
// The exported form (exporters.hpp) is Chrome-tracing JSON, the same
// format core/trace_export.cpp writes for ArraySim schedules — so a live
// training run opens in Perfetto next to an offline array schedule.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"

namespace trident::telemetry {

/// One completed span ("X" event in the Chrome trace format).
struct TraceEvent {
  std::string name;
  const char* category = "app";  ///< static string supplied by the site
  double ts_us = 0.0;            ///< start, µs since the trace epoch
  double dur_us = 0.0;
  std::uint32_t tid = 0;         ///< small per-thread id (first-use order)
};

/// Process-wide collector of per-thread span buffers.
class TraceBuffer {
 public:
  static TraceBuffer& global();

  TraceBuffer(const TraceBuffer&) = delete;
  TraceBuffer& operator=(const TraceBuffer&) = delete;

  /// Appends a completed event to the calling thread's chunk.  Drops (and
  /// counts) the event when the per-thread capacity is reached.
  void record(std::string name, const char* category, double ts_us,
              double dur_us);

  /// Copy of all recorded events, sorted by start time.
  [[nodiscard]] std::vector<TraceEvent> snapshot() const;

  /// Total events currently buffered across threads.
  [[nodiscard]] std::size_t size() const;

  /// Discards all buffered events (thread registrations persist).
  void clear();

  /// Events dropped due to the per-thread cap since the last clear().
  [[nodiscard]] std::uint64_t dropped() const;

  /// Per-thread buffer cap (default 1M events ≈ 64 MB worst case).
  void set_thread_capacity(std::size_t cap);

  /// Microseconds since the trace epoch (first use of the buffer).
  [[nodiscard]] double now_us() const;

 private:
  struct ThreadChunk {
    std::mutex mutex;
    std::vector<TraceEvent> events;
    std::uint32_t tid = 0;
  };

  TraceBuffer();
  ThreadChunk& local_chunk();

  mutable std::mutex registry_mutex_;
  std::vector<std::shared_ptr<ThreadChunk>> chunks_;
  std::atomic<std::uint32_t> next_tid_{0};
  std::atomic<std::size_t> thread_capacity_{1u << 20};
  std::atomic<std::uint64_t> dropped_{0};
  std::chrono::steady_clock::time_point epoch_;
};

/// RAII scoped timer.  Inert when telemetry is disabled at construction.
class Span {
 public:
  /// Inert span (records nothing).
  Span() = default;

  /// Starts timing immediately when telemetry is enabled.  `category` must
  /// be a static string (it is stored by pointer).
  explicit Span(std::string name, const char* category = "app");

  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  Span(Span&& other) noexcept;
  Span& operator=(Span&& other) noexcept;
  ~Span() { end(); }

  /// Finishes the span early (idempotent).
  void end();

  [[nodiscard]] bool active() const { return active_; }

 private:
  std::string name_;
  const char* category_ = "app";
  double start_us_ = 0.0;
  bool active_ = false;
};

}  // namespace trident::telemetry
