#include "telemetry/health.hpp"

#include <algorithm>
#include <cstdio>

#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace trident::telemetry {

namespace {

struct HealthMetrics {
  MetricsRegistry& reg = MetricsRegistry::global();
  Gauge& state = reg.gauge("trident_health_state",
                           "serving health: 0 healthy, 1 warning, 2 critical");
  Gauge& slo_short = reg.gauge("trident_health_slo_burn_short",
                               "SLO-violation burn rate, short window");
  Gauge& slo_long = reg.gauge("trident_health_slo_burn_long",
                              "SLO-violation burn rate, long window");
  Gauge& shed_short = reg.gauge("trident_health_shed_burn_short",
                                "shed burn rate, short window");
  Gauge& shed_long = reg.gauge("trident_health_shed_burn_long",
                               "shed burn rate, long window");
  Gauge& degraded_short = reg.gauge("trident_health_degraded_burn_short",
                                    "degraded-response burn rate, short window");
  Gauge& degraded_long = reg.gauge("trident_health_degraded_burn_long",
                                   "degraded-response burn rate, long window");
  Counter& transitions = reg.counter("trident_health_transitions_total",
                                     "health state changes");
};

HealthMetrics& health_metrics() {
  static HealthMetrics m;
  return m;
}

/// Counter delta that tolerates resets (monotonic counters only grow; a
/// smaller current value means the registry was reset — treat as 0).
[[nodiscard]] std::uint64_t delta(std::uint64_t now, std::uint64_t base) {
  return now >= base ? now - base : 0;
}

/// burn = violation-fraction ÷ budget.  No traffic in the window means no
/// budget is burning.
[[nodiscard]] double burn(std::uint64_t violations, std::uint64_t total,
                          double budget) {
  if (total == 0 || budget <= 0.0) {
    return 0.0;
  }
  return (static_cast<double>(violations) / static_cast<double>(total)) /
         budget;
}

[[nodiscard]] std::string format_burn(double v) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.1f", v);
  return buf;
}

}  // namespace

const char* to_string(HealthState s) {
  switch (s) {
    case HealthState::kHealthy:
      return "healthy";
    case HealthState::kWarning:
      return "warning";
    case HealthState::kCritical:
      return "critical";
  }
  return "unknown";
}

HealthMonitor::HealthMonitor(HealthConfig config) : config_(config) {}

const HealthSample& HealthMonitor::window_base(double window_s) const {
  // Newest sample at least `window_s` old — the tightest base that still
  // spans the window.  Falls back to the oldest retained sample while the
  // history is shorter than the window (burn is then computed over the
  // whole observed history, which is what makes a cold-start storm
  // escalate without waiting a full long window).
  const double cutoff = history_.back().t_s - window_s;
  const HealthSample* base = &history_.front();
  for (const HealthSample& s : history_) {
    if (s.t_s > cutoff) {
      break;
    }
    base = &s;
  }
  return *base;
}

HealthState HealthMonitor::classify(const HealthReport& report) const {
  const auto critical = [&](const BurnRate& b) {
    return b.short_burn >= config_.critical_burn &&
           b.long_burn >= config_.critical_burn;
  };
  const auto warning = [&](const BurnRate& b) {
    return b.short_burn >= config_.warning_burn;
  };
  const bool p99_over =
      config_.p99_limit_s > 0.0 && report.p99_s > config_.p99_limit_s;
  const bool p99_way_over =
      config_.p99_limit_s > 0.0 && report.p99_s > 2.0 * config_.p99_limit_s;
  const bool energy_over = config_.energy_limit_j > 0.0 &&
                           report.energy_per_inference_j >
                               config_.energy_limit_j;
  const bool energy_way_over = config_.energy_limit_j > 0.0 &&
                               report.energy_per_inference_j >
                                   2.0 * config_.energy_limit_j;
  if (critical(report.slo) || critical(report.shed) ||
      critical(report.degraded) || p99_way_over || energy_way_over) {
    return HealthState::kCritical;
  }
  if (warning(report.slo) || warning(report.shed) ||
      warning(report.degraded) || p99_over || energy_over) {
    return HealthState::kWarning;
  }
  return HealthState::kHealthy;
}

HealthReport HealthMonitor::update(const HealthSample& sample) {
  // Keep time monotone even under a sloppy caller clock.
  HealthSample s = sample;
  if (!history_.empty() && s.t_s < history_.back().t_s) {
    s.t_s = history_.back().t_s;
  }
  history_.push_back(s);

  // Prune to the long window, keeping one base sample older than it.
  const double cutoff = s.t_s - config_.long_window_s;
  std::size_t keep_from = 0;
  for (std::size_t i = 0; i + 1 < history_.size(); ++i) {
    if (history_[i + 1].t_s <= cutoff) {
      keep_from = i + 1;
    }
  }
  history_.erase(history_.begin(),
                 history_.begin() + static_cast<std::ptrdiff_t>(keep_from));

  HealthReport report;
  const auto rates = [&](double window_s) {
    const HealthSample& base = window_base(window_s);
    const std::uint64_t completed = delta(s.completed, base.completed);
    const std::uint64_t slo = delta(s.slo_violations, base.slo_violations);
    const std::uint64_t shed = delta(s.shed, base.shed);
    const std::uint64_t degraded = delta(s.degraded, base.degraded);
    const std::uint64_t offered = completed + shed + degraded;
    struct R {
      double slo, shed, degraded;
    };
    return R{burn(slo, completed, config_.slo_budget),
             burn(shed, offered, config_.shed_budget),
             burn(degraded, completed + degraded, config_.degraded_budget)};
  };
  const auto sr = rates(config_.short_window_s);
  const auto lr = rates(config_.long_window_s);
  report.slo = {sr.slo, lr.slo};
  report.shed = {sr.shed, lr.shed};
  report.degraded = {sr.degraded, lr.degraded};
  report.p99_s = s.p99_s;
  report.energy_per_inference_j = s.energy_per_inference_j;

  report.raw = classify(report);
  if (report.raw == HealthState::kCritical) {
    if (report.shed.short_burn >= config_.critical_burn) {
      report.reason = "shed burn " + format_burn(report.shed.short_burn) +
                      " over both windows";
    } else if (report.slo.short_burn >= config_.critical_burn) {
      report.reason = "slo burn " + format_burn(report.slo.short_burn) +
                      " over both windows";
    } else if (report.degraded.short_burn >= config_.critical_burn) {
      report.reason = "degraded burn " +
                      format_burn(report.degraded.short_burn) +
                      " over both windows";
    } else {
      report.reason = "gauge limit exceeded 2x";
    }
  } else if (report.raw == HealthState::kWarning) {
    report.reason = "short-window budget burning";
  } else {
    report.reason = state_ == HealthState::kHealthy ? "healthy" : "recovered";
  }

  // Hysteresis: escalation is immediate; de-escalation waits until every
  // signal has been below the current level for recovery_s.
  const HealthState before = state_;
  if (report.raw >= state_) {
    state_ = report.raw;
    if (state_ != HealthState::kHealthy) {
      last_breach_s_ = s.t_s;
    }
  } else if (last_breach_s_ < 0.0 ||
             s.t_s - last_breach_s_ >= config_.recovery_s) {
    state_ = report.raw;
  }
  report.state = state_;

  publish(report);
  if (state_ != before && on_transition_) {
    on_transition_(before, state_, report);
  }
  return report;
}

void HealthMonitor::publish(const HealthReport& report) {
  if (!enabled()) {
    return;
  }
  HealthMetrics& m = health_metrics();
  const auto previous = static_cast<int>(m.state.value());
  m.state.set(static_cast<double>(static_cast<int>(report.state)));
  m.slo_short.set(report.slo.short_burn);
  m.slo_long.set(report.slo.long_burn);
  m.shed_short.set(report.shed.short_burn);
  m.shed_long.set(report.shed.long_burn);
  m.degraded_short.set(report.degraded.short_burn);
  m.degraded_long.set(report.degraded.long_burn);
  if (previous != static_cast<int>(report.state)) {
    m.transitions.add(1);
  }
}

HealthSample HealthMonitor::sample_registry(double t_s) {
  const MetricsSnapshot snap = MetricsRegistry::global().snapshot();
  HealthSample s;
  s.t_s = t_s;
  s.completed = snap.counter_value("trident_serving_requests_completed_total");
  s.slo_violations =
      snap.counter_value("trident_serving_slo_violations_total");
  s.shed = snap.counter_value("trident_serving_requests_shed_total");
  s.degraded = snap.counter_value("trident_serving_requests_failed_total");
  s.p99_s = snap.gauge_value("trident_serving_sojourn_p99_seconds");
  return s;
}

}  // namespace trident::telemetry
