// Telemetry exporters.
//
// Three formats cover the project's consumers:
//
//   * Chrome-tracing JSON ("X" complete events, µs timestamps) — the same
//     format core/trace_export.cpp renders ArraySim schedules in (it uses
//     the ChromeTraceWriter below), so live MLP/CNN training spans and
//     offline array schedules open side by side in Perfetto /
//     about://tracing;
//   * Prometheus text exposition — scrape-able counters/gauges/histograms
//     for long-running serving experiments;
//   * a flat JSON snapshot — the BENCH_*.json-style artifact CI uploads
//     and diffs across commits (scripts/metrics_schema.json describes it).
#pragma once

#include <cstdint>
#include <iosfwd>
#include <span>
#include <string>
#include <string_view>

#include "telemetry/metrics.hpp"
#include "telemetry/trace.hpp"

namespace trident::telemetry {

/// JSON string escaping: quotes, backslashes, and control characters
/// (shared by every exporter; previously each trace writer rolled its own
/// partial version).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Microsecond timestamp formatting for Chrome traces: rounded to
/// nanosecond resolution (3 decimals), trailing zeros trimmed, never
/// scientific notation (a plain `operator<<` rounds large traces to six
/// significant digits, which collapses distinct events).
[[nodiscard]] std::string format_trace_us(double us);

/// Streaming Chrome-trace writer: prologue, one `event()` per record,
/// `finish()` (or destruction) closes the JSON.
class ChromeTraceWriter {
 public:
  explicit ChromeTraceWriter(std::ostream& os);
  ChromeTraceWriter(const ChromeTraceWriter&) = delete;
  ChromeTraceWriter& operator=(const ChromeTraceWriter&) = delete;
  ~ChromeTraceWriter();

  /// Emits one complete ("ph":"X") event.
  void event(std::string_view name, std::string_view category, double ts_us,
             double dur_us, int pid, std::uint64_t tid);

  /// Same, with a Chrome-trace `args` object.  `args_json` is the object's
  /// member list *without* the surrounding braces (already valid JSON, e.g.
  /// `"trace":7,"replica":0`); empty emits no args key.
  void event(std::string_view name, std::string_view category, double ts_us,
             double dur_us, int pid, std::uint64_t tid,
             std::string_view args_json);

  /// Closes the traceEvents array and the document (idempotent).
  void finish();

 private:
  std::ostream& os_;
  bool first_ = true;
  bool finished_ = false;
};

/// Renders live span events (TraceBuffer::snapshot()) as a Chrome trace.
void write_chrome_trace(std::span<const TraceEvent> events, std::ostream& os);
[[nodiscard]] std::string chrome_trace_json(std::span<const TraceEvent> events);

/// Prometheus text exposition (# HELP / # TYPE / samples).
void write_prometheus(const MetricsSnapshot& snapshot, std::ostream& os);
[[nodiscard]] std::string prometheus_text(const MetricsSnapshot& snapshot);

/// Flat JSON snapshot of the registry (schema_version 1; see
/// scripts/metrics_schema.json).  Empty-stat min/max (NaN) serialise as
/// null — JSON has no NaN.
void write_json_snapshot(const MetricsSnapshot& snapshot, std::ostream& os);
[[nodiscard]] std::string json_snapshot(const MetricsSnapshot& snapshot);

}  // namespace trident::telemetry
