// SLO burn-rate health monitor.
//
// Turns the serving counters/gauges the registry already carries into a
// machine-readable health *decision*: healthy / warning / critical.  The
// classifier is the multi-window burn-rate scheme from SRE practice — a
// signal only escalates when its error budget is burning fast over BOTH a
// short window (responsive, catches storms in seconds) and a long window
// (suppresses blips), and only de-escalates after the condition has been
// clear for a configured recovery period (hysteresis, so flapping load
// does not flap the state).
//
// Inputs are explicit `HealthSample`s carrying cumulative counter values
// and an explicit timestamp, so tests drive synthetic counters and a
// synthetic clock; `sample_registry()` builds a sample from the live
// serving metrics for production use.  Each `update()` publishes the
// state and per-signal burn gauges through the normal exporters
// (`trident_health_state` ∈ {0,1,2}) and fires an `on_transition`
// callback — the hook the fleet autoscaler and canary auto-rollback
// consume.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace trident::telemetry {

/// Machine-readable health state, ordered by severity.  The numeric
/// values are the exported `trident_health_state` gauge encoding.
enum class HealthState : int {
  kHealthy = 0,
  kWarning = 1,
  kCritical = 2,
};

/// Human/export label ("healthy" / "warning" / "critical").
[[nodiscard]] const char* to_string(HealthState s);

/// One observation of the cumulative serving counters at time `t_s`.
/// Counters are lifetime totals (monotonic); the monitor differences
/// them across its windows.  Gauges are instantaneous.
struct HealthSample {
  double t_s = 0.0;  ///< sample time, seconds on any monotonic clock

  std::uint64_t completed = 0;       ///< requests completed (any tier)
  std::uint64_t slo_violations = 0;  ///< deadline/SLO misses
  std::uint64_t shed = 0;            ///< admission-rejected requests
  std::uint64_t degraded = 0;        ///< failed/degraded responses

  double p99_s = 0.0;                  ///< sojourn p99 gauge (0 = unknown)
  double energy_per_inference_j = 0.0; ///< derived gauge (0 = unknown)
};

/// Burn-rate thresholds.  A signal's *rate* is its violation fraction
/// over a window (e.g. shed / offered); its *burn* is rate ÷ budget, so
/// burn 1.0 means "consuming exactly the error budget".
struct HealthConfig {
  double short_window_s = 5.0;
  double long_window_s = 60.0;

  /// Error budgets (allowed violation fraction per signal).
  double slo_budget = 0.01;       ///< ≤1% of completions may miss SLO
  double shed_budget = 0.01;      ///< ≤1% of offered requests may shed
  double degraded_budget = 0.005; ///< ≤0.5% of responses may be degraded

  /// Escalation thresholds on the burn value.  Warning fires on the
  /// short window alone; critical requires BOTH windows burning.
  double warning_burn = 1.0;
  double critical_burn = 10.0;

  /// De-escalation hysteresis: the state steps down only after every
  /// signal has been below its threshold for this long.
  double recovery_s = 10.0;

  /// Instantaneous gauge limits (0 disables the check).  Breach raises
  /// at least warning; breach at 2x the limit raises critical.
  double p99_limit_s = 0.0;
  double energy_limit_j = 0.0;
};

/// Burn values for one signal over both windows.
struct BurnRate {
  double short_burn = 0.0;
  double long_burn = 0.0;
};

/// The decision plus everything that went into it.
struct HealthReport {
  HealthState state = HealthState::kHealthy;
  HealthState raw = HealthState::kHealthy;  ///< pre-hysteresis classification
  BurnRate slo;
  BurnRate shed;
  BurnRate degraded;
  double p99_s = 0.0;
  double energy_per_inference_j = 0.0;
  /// Short reason for the raw classification ("slo burn 14.2 over both
  /// windows", "recovered"); stable enough for logs, not an API.
  std::string reason;
};

/// Multi-window burn-rate classifier with hysteresis.  Not thread-safe:
/// one owner calls update() (the serving loop's sampler or a test).
class HealthMonitor {
 public:
  explicit HealthMonitor(HealthConfig config = {});

  /// Feeds one sample (t_s must be non-decreasing), reclassifies, and —
  /// when telemetry is enabled — publishes `trident_health_state`, the
  /// per-signal burn gauges, and `trident_health_transitions_total`.
  HealthReport update(const HealthSample& sample);

  /// Callback fired inside update() on every state change
  /// (old state, new state, full report).
  void on_transition(
      std::function<void(HealthState, HealthState, const HealthReport&)> cb) {
    on_transition_ = std::move(cb);
  }

  [[nodiscard]] HealthState state() const { return state_; }
  [[nodiscard]] const HealthConfig& config() const { return config_; }

  /// Builds a sample from the live registry's serving metrics
  /// (`trident_serving_requests_completed_total`,
  /// `trident_serving_slo_violations_total`,
  /// `trident_serving_requests_shed_total`,
  /// `trident_serving_requests_failed_total`,
  /// `trident_serving_sojourn_p99_seconds`).  `energy_per_inference_j`
  /// stays 0 — energy is ledger-derived, so callers that track a ledger
  /// fill it in themselves.
  [[nodiscard]] static HealthSample sample_registry(double t_s);

 private:
  /// Oldest retained sample no younger than `t - window`; differences
  /// against it give the windowed deltas.
  [[nodiscard]] const HealthSample& window_base(double window_s) const;
  [[nodiscard]] HealthState classify(const HealthReport& report) const;
  void publish(const HealthReport& report);

  HealthConfig config_;
  std::vector<HealthSample> history_;  ///< time-ordered, pruned to long window
  HealthState state_ = HealthState::kHealthy;
  double last_breach_s_ = -1.0;  ///< last time raw >= current state level
  std::function<void(HealthState, HealthState, const HealthReport&)>
      on_transition_;
};

}  // namespace trident::telemetry
