#include "telemetry/telemetry.hpp"

#include <cstdlib>
#include <cstring>

namespace trident::telemetry {

namespace {

/// Environment opt-in: `TRIDENT_TELEMETRY=1` (or anything other than "0",
/// "false", "off" or empty) turns the runtime switch on at load, so any
/// binary can be observed without a code change or a flag.
struct EnvInit {
  EnvInit() {
    const char* v = std::getenv("TRIDENT_TELEMETRY");
    if (v == nullptr) {
      return;
    }
    const bool off = v[0] == '\0' || std::strcmp(v, "0") == 0 ||
                     std::strcmp(v, "false") == 0 || std::strcmp(v, "off") == 0;
    set_enabled(!off);
  }
};
const EnvInit g_env_init;

}  // namespace

}  // namespace trident::telemetry
