// Unified telemetry switchboard.
//
// The paper's headline numbers are all *measured* quantities (energy per
// inference, ≤30 W peak power, IPS, the non-volatility saving), so the
// simulator carries first-class observability: a metrics registry
// (metrics.hpp), live trace spans (trace.hpp) and exporters
// (exporters.hpp).  This header holds the one switch everything else
// checks.
//
// Cost model, in order of decreasing cheapness:
//
//   * compile-time OFF (`-DTRIDENT_TELEMETRY=0`, CMake option
//     TRIDENT_TELEMETRY): `enabled()` is a constexpr false — every
//     instrumentation block is dead code and the optimiser removes it;
//   * runtime OFF (the default): `enabled()` is one branch on a relaxed
//     atomic load — the contract the `micro_kernels` bench verifies;
//   * runtime ON: call sites pay for what they record (counters are a
//     relaxed fetch_add; spans are two clock reads plus one uncontended
//     per-thread buffer append).
//
// Instrumentation sites therefore guard with `if (telemetry::enabled())`
// and only build metric names / span labels inside the guard.
#pragma once

#include <atomic>

#ifndef TRIDENT_TELEMETRY
#define TRIDENT_TELEMETRY 1
#endif

namespace trident::telemetry {

#if TRIDENT_TELEMETRY

namespace detail {
/// The single runtime switch.  Relaxed everywhere: flipping it is advisory
/// (a site that read the old value records or skips one extra event, never
/// corrupts state).
inline std::atomic<bool> g_enabled{false};
}  // namespace detail

/// True when telemetry is compiled in AND enabled at runtime.
[[nodiscard]] inline bool enabled() {
  return detail::g_enabled.load(std::memory_order_relaxed);
}

inline void set_enabled(bool on) {
  detail::g_enabled.store(on, std::memory_order_relaxed);
}

#else  // compiled out: everything folds to constants

[[nodiscard]] constexpr bool enabled() { return false; }
constexpr void set_enabled(bool) {}

#endif

/// True when instrumentation was compiled in at all.
[[nodiscard]] constexpr bool compiled_in() { return TRIDENT_TELEMETRY != 0; }

}  // namespace trident::telemetry
