#include "telemetry/trace.hpp"

#include <algorithm>
#include <utility>

namespace trident::telemetry {

TraceBuffer::TraceBuffer() : epoch_(std::chrono::steady_clock::now()) {}

TraceBuffer& TraceBuffer::global() {
  // Leaked: spans on pool worker threads may finish during static
  // destruction; see MetricsRegistry::global() for the same reasoning.
  static TraceBuffer* buffer = new TraceBuffer();
  return *buffer;
}

TraceBuffer::ThreadChunk& TraceBuffer::local_chunk() {
  thread_local std::shared_ptr<ThreadChunk> chunk = [this] {
    auto c = std::make_shared<ThreadChunk>();
    c->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard lock(registry_mutex_);
    chunks_.push_back(c);
    return c;
  }();
  return *chunk;
}

void TraceBuffer::record(std::string name, const char* category, double ts_us,
                         double dur_us) {
  ThreadChunk& chunk = local_chunk();
  std::lock_guard lock(chunk.mutex);
  if (chunk.events.size() >= thread_capacity_.load(std::memory_order_relaxed)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  chunk.events.push_back(
      {std::move(name), category, ts_us, dur_us, chunk.tid});
}

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  std::vector<std::shared_ptr<ThreadChunk>> chunks;
  {
    std::lock_guard lock(registry_mutex_);
    chunks = chunks_;
  }
  std::vector<TraceEvent> out;
  for (const auto& chunk : chunks) {
    std::lock_guard lock(chunk->mutex);
    out.insert(out.end(), chunk->events.begin(), chunk->events.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return out;
}

std::size_t TraceBuffer::size() const {
  std::vector<std::shared_ptr<ThreadChunk>> chunks;
  {
    std::lock_guard lock(registry_mutex_);
    chunks = chunks_;
  }
  std::size_t n = 0;
  for (const auto& chunk : chunks) {
    std::lock_guard lock(chunk->mutex);
    n += chunk->events.size();
  }
  return n;
}

void TraceBuffer::clear() {
  std::vector<std::shared_ptr<ThreadChunk>> chunks;
  {
    std::lock_guard lock(registry_mutex_);
    chunks = chunks_;
  }
  for (const auto& chunk : chunks) {
    std::lock_guard lock(chunk->mutex);
    chunk->events.clear();
  }
  dropped_.store(0, std::memory_order_relaxed);
}

std::uint64_t TraceBuffer::dropped() const {
  return dropped_.load(std::memory_order_relaxed);
}

void TraceBuffer::set_thread_capacity(std::size_t cap) {
  thread_capacity_.store(cap, std::memory_order_relaxed);
}

double TraceBuffer::now_us() const {
  return std::chrono::duration<double, std::micro>(
             std::chrono::steady_clock::now() - epoch_)
      .count();
}

Span::Span(std::string name, const char* category) {
  if (!enabled()) {
    return;
  }
  name_ = std::move(name);
  category_ = category;
  start_us_ = TraceBuffer::global().now_us();
  active_ = true;
}

Span::Span(Span&& other) noexcept
    : name_(std::move(other.name_)),
      category_(other.category_),
      start_us_(other.start_us_),
      active_(other.active_) {
  other.active_ = false;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    name_ = std::move(other.name_);
    category_ = other.category_;
    start_us_ = other.start_us_;
    active_ = other.active_;
    other.active_ = false;
  }
  return *this;
}

void Span::end() {
  if (!active_) {
    return;
  }
  active_ = false;
  TraceBuffer& buffer = TraceBuffer::global();
  const double dur = buffer.now_us() - start_us_;
  buffer.record(std::move(name_), category_, start_us_, dur);
}

}  // namespace trident::telemetry
