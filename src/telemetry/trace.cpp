#include "telemetry/trace.hpp"

#include <algorithm>
#include <shared_mutex>
#include <unordered_set>
#include <utility>

#include "telemetry/metrics.hpp"

namespace trident::telemetry {

namespace {

/// Monotonic span-id source.  Ids are only consumed by traced spans, so an
/// untraced workload never touches this cache line.
std::atomic<std::uint64_t> g_next_span_id{0};

[[nodiscard]] std::uint64_t next_span_id() {
  return g_next_span_id.fetch_add(1, std::memory_order_relaxed) + 1;
}

/// The calling thread's installed trace context ({0,0} = none).
thread_local TraceContext t_current_trace{};

/// Registry mirror of TraceBuffer::dropped(): lifetime-monotonic, so the
/// exporters surface buffer overflow without polling the buffer.
Counter& dropped_counter() {
  static Counter& c = MetricsRegistry::global().counter(
      "trident_trace_dropped_total",
      "trace events dropped at the per-thread buffer cap");
  return c;
}

/// Transparent hash/equality so interning looks up by string_view without
/// allocating a temporary std::string per span.
struct TransparentHash {
  using is_transparent = void;
  [[nodiscard]] std::size_t operator()(std::string_view s) const {
    return std::hash<std::string_view>{}(s);
  }
};
struct TransparentEq {
  using is_transparent = void;
  [[nodiscard]] bool operator()(std::string_view a, std::string_view b) const {
    return a == b;
  }
};

}  // namespace

const char* intern_category(std::string_view category) {
  // Leaked, like the registry: spans on pool workers may intern during
  // static destruction.  unordered_set gives stable element addresses
  // (rehash moves buckets, not nodes), so the returned c_str() pointers
  // live as long as the process.
  static std::shared_mutex* mutex = new std::shared_mutex();
  static auto* table =
      new std::unordered_set<std::string, TransparentHash, TransparentEq>();
  {
    std::shared_lock lock(*mutex);
    const auto it = table->find(category);
    if (it != table->end()) {
      return it->c_str();
    }
  }
  std::unique_lock lock(*mutex);
  return table->emplace(category).first->c_str();
}

TraceContext current_trace() { return t_current_trace; }

TraceScope::TraceScope(TraceContext ctx) : previous_(t_current_trace) {
  t_current_trace = ctx;
}

TraceScope::~TraceScope() { t_current_trace = previous_; }

TraceBuffer::TraceBuffer() : epoch_(std::chrono::steady_clock::now()) {}

TraceBuffer& TraceBuffer::global() {
  // Leaked: spans on pool worker threads may finish during static
  // destruction; see MetricsRegistry::global() for the same reasoning.
  static TraceBuffer* buffer = new TraceBuffer();
  return *buffer;
}

TraceBuffer::ThreadChunk& TraceBuffer::local_chunk() {
  thread_local std::shared_ptr<ThreadChunk> chunk = [this] {
    auto c = std::make_shared<ThreadChunk>();
    c->tid = next_tid_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard lock(registry_mutex_);
    chunks_.push_back(c);
    return c;
  }();
  return *chunk;
}

void TraceBuffer::record(std::string name, const char* category, double ts_us,
                         double dur_us) {
  TraceEvent event;
  event.name = std::move(name);
  event.category = category;
  event.ts_us = ts_us;
  event.dur_us = dur_us;
  record(std::move(event));
}

void TraceBuffer::record(TraceEvent event) {
  event.category = intern_category(event.category);
  ThreadChunk& chunk = local_chunk();
  event.tid = chunk.tid;
  std::lock_guard lock(chunk.mutex);
  if (chunk.events.size() >= thread_capacity_.load(std::memory_order_relaxed)) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    dropped_counter().add(1);
    return;
  }
  chunk.events.push_back(std::move(event));
}

std::vector<TraceEvent> TraceBuffer::snapshot() const {
  std::vector<std::shared_ptr<ThreadChunk>> chunks;
  {
    std::lock_guard lock(registry_mutex_);
    chunks = chunks_;
  }
  std::vector<TraceEvent> out;
  for (const auto& chunk : chunks) {
    std::lock_guard lock(chunk->mutex);
    out.insert(out.end(), chunk->events.begin(), chunk->events.end());
  }
  std::stable_sort(out.begin(), out.end(),
                   [](const TraceEvent& a, const TraceEvent& b) {
                     return a.ts_us < b.ts_us;
                   });
  return out;
}

std::size_t TraceBuffer::size() const {
  std::vector<std::shared_ptr<ThreadChunk>> chunks;
  {
    std::lock_guard lock(registry_mutex_);
    chunks = chunks_;
  }
  std::size_t n = 0;
  for (const auto& chunk : chunks) {
    std::lock_guard lock(chunk->mutex);
    n += chunk->events.size();
  }
  return n;
}

void TraceBuffer::clear() {
  std::vector<std::shared_ptr<ThreadChunk>> chunks;
  {
    std::lock_guard lock(registry_mutex_);
    chunks = chunks_;
  }
  for (const auto& chunk : chunks) {
    std::lock_guard lock(chunk->mutex);
    chunk->events.clear();
  }
  dropped_.store(0, std::memory_order_relaxed);
}

std::uint64_t TraceBuffer::dropped() const {
  return dropped_.load(std::memory_order_relaxed);
}

void TraceBuffer::set_thread_capacity(std::size_t cap) {
  thread_capacity_.store(cap, std::memory_order_relaxed);
}

double TraceBuffer::now_us() const { return to_us(std::chrono::steady_clock::now()); }

double TraceBuffer::to_us(std::chrono::steady_clock::time_point tp) const {
  const double us =
      std::chrono::duration<double, std::micro>(tp - epoch_).count();
  return us < 0.0 ? 0.0 : us;
}

Span::Span(std::string name, const char* category)
    : Span(std::move(name), category, current_trace()) {}

Span::Span(std::string name, const char* category, TraceContext parent,
           std::string args) {
  if (!enabled()) {
    return;
  }
  name_ = std::move(name);
  category_ = intern_category(category);
  args_ = std::move(args);
  if (parent.active()) {
    trace_id_ = parent.trace_id;
    parent_id_ = parent.span_id;
    span_id_ = next_span_id();
  }
  start_us_ = TraceBuffer::global().now_us();
  active_ = true;
}

Span::Span(Span&& other) noexcept
    : name_(std::move(other.name_)),
      category_(other.category_),
      start_us_(other.start_us_),
      active_(other.active_),
      trace_id_(other.trace_id_),
      span_id_(other.span_id_),
      parent_id_(other.parent_id_),
      args_(std::move(other.args_)) {
  other.active_ = false;
}

Span& Span::operator=(Span&& other) noexcept {
  if (this != &other) {
    end();
    name_ = std::move(other.name_);
    category_ = other.category_;
    start_us_ = other.start_us_;
    active_ = other.active_;
    trace_id_ = other.trace_id_;
    span_id_ = other.span_id_;
    parent_id_ = other.parent_id_;
    args_ = std::move(other.args_);
    other.active_ = false;
  }
  return *this;
}

void Span::set_args(std::string args) {
  if (active_) {
    args_ = std::move(args);
  }
}

void Span::end() {
  if (!active_) {
    return;
  }
  active_ = false;
  TraceBuffer& buffer = TraceBuffer::global();
  TraceEvent event;
  event.name = std::move(name_);
  event.category = category_;  // already interned at construction
  event.ts_us = start_us_;
  event.dur_us = buffer.now_us() - start_us_;
  event.trace_id = trace_id_;
  event.span_id = span_id_;
  event.parent_id = parent_id_;
  event.args = std::move(args_);
  buffer.record(std::move(event));
}

}  // namespace trident::telemetry
