#include "telemetry/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/error.hpp"

namespace trident::telemetry {

namespace {

[[nodiscard]] bool valid_metric_name(const std::string& name) {
  if (name.empty()) {
    return false;
  }
  const auto head = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' ||
           c == ':';
  };
  if (!head(name.front())) {
    return false;
  }
  return std::all_of(name.begin() + 1, name.end(), [&](char c) {
    return head(c) || (c >= '0' && c <= '9');
  });
}

}  // namespace

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  TRIDENT_REQUIRE(std::is_sorted(bounds_.begin(), bounds_.end()) &&
                      std::adjacent_find(bounds_.begin(), bounds_.end()) ==
                          bounds_.end(),
                  "histogram bounds must be strictly ascending");
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double x) {
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), x);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  std::lock_guard lock(mutex_);
  ++counts_[bucket];
  stats_.add(x);
  sum_ += x;
}

HistogramSnapshot Histogram::snapshot() const {
  std::lock_guard lock(mutex_);
  HistogramSnapshot s;
  s.bounds = bounds_;
  s.counts = counts_;
  s.count = stats_.count();
  s.sum = sum_;
  s.mean = stats_.mean();
  s.stddev = stats_.stddev();
  s.min = stats_.min();
  s.max = stats_.max();
  return s;
}

void Histogram::reset() {
  std::lock_guard lock(mutex_);
  std::fill(counts_.begin(), counts_.end(), 0);
  stats_ = RunningStats{};
  sum_ = 0.0;
}

double HistogramSnapshot::quantile(double q) const {
  TRIDENT_REQUIRE(q >= 0.0 && q <= 1.0, "quantile must be in [0, 1]");
  if (count == 0) {
    return std::numeric_limits<double>::quiet_NaN();
  }
  // Rank of the target observation (1-based, clamped into [1, count]).
  const double rank =
      std::max(1.0, std::ceil(q * static_cast<double>(count)));
  std::uint64_t cumulative = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) {
      continue;
    }
    const double before = static_cast<double>(cumulative);
    cumulative += counts[i];
    if (rank > static_cast<double>(cumulative)) {
      continue;
    }
    // Bucket edges: the observed min/max tighten the outermost buckets,
    // and the +Inf bucket's upper edge is the observed max.
    double lo = i == 0 ? min : bounds[i - 1];
    double hi = i < bounds.size() ? bounds[i] : max;
    lo = std::max(lo, min);
    hi = std::min(hi, max);
    if (hi < lo) {
      return lo;
    }
    const double frac =
        (rank - before) / static_cast<double>(counts[i]);
    return lo + (hi - lo) * frac;
  }
  return max;  // unreachable when counts sum to count
}

std::vector<double> duration_buckets_seconds() {
  return {1e-6, 3e-6, 1e-5, 3e-5, 1e-4, 3e-4, 1e-3, 3e-3,
          1e-2, 3e-2, 1e-1, 3e-1, 1.0,  3.0,  10.0};
}

std::uint64_t MetricsSnapshot::counter_value(const std::string& name) const {
  for (const auto& c : counters) {
    if (c.name == name) {
      return c.value;
    }
  }
  return 0;
}

double MetricsSnapshot::gauge_value(const std::string& name) const {
  for (const auto& g : gauges) {
    if (g.name == name) {
      return g.value;
    }
  }
  return 0.0;
}

MetricsRegistry& MetricsRegistry::global() {
  // Intentionally leaked: instrumentation in thread-pool workers and other
  // statics may record during shutdown, after function-local statics in
  // other translation units were destroyed.
  static MetricsRegistry* registry = new MetricsRegistry();
  return *registry;
}

Counter& MetricsRegistry::counter(const std::string& name,
                                  const std::string& help) {
  TRIDENT_REQUIRE(valid_metric_name(name),
                  "invalid metric name '" + name + "'");
  std::lock_guard lock(mutex_);
  auto& slot = counters_[name];
  if (!slot.second) {
    slot.first = help;
    slot.second = std::make_unique<Counter>();
  }
  return *slot.second;
}

Gauge& MetricsRegistry::gauge(const std::string& name,
                              const std::string& help) {
  TRIDENT_REQUIRE(valid_metric_name(name),
                  "invalid metric name '" + name + "'");
  std::lock_guard lock(mutex_);
  auto& slot = gauges_[name];
  if (!slot.second) {
    slot.first = help;
    slot.second = std::make_unique<Gauge>();
  }
  return *slot.second;
}

Histogram& MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds,
                                      const std::string& help) {
  TRIDENT_REQUIRE(valid_metric_name(name),
                  "invalid metric name '" + name + "'");
  std::lock_guard lock(mutex_);
  auto& slot = histograms_[name];
  if (!slot.second) {
    slot.first = help;
    slot.second = std::make_unique<Histogram>(std::move(bounds));
  }
  return *slot.second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::lock_guard lock(mutex_);
  MetricsSnapshot s;
  s.counters.reserve(counters_.size());
  for (const auto& [name, entry] : counters_) {
    s.counters.push_back({name, entry.first, entry.second->value()});
  }
  s.gauges.reserve(gauges_.size());
  for (const auto& [name, entry] : gauges_) {
    s.gauges.push_back({name, entry.first, entry.second->value()});
  }
  s.histograms.reserve(histograms_.size());
  for (const auto& [name, entry] : histograms_) {
    s.histograms.push_back({name, entry.first, entry.second->snapshot()});
  }
  return s;
}

void MetricsRegistry::reset_values() {
  std::lock_guard lock(mutex_);
  for (auto& [name, entry] : counters_) {
    entry.second->reset();
  }
  for (auto& [name, entry] : gauges_) {
    entry.second->reset();
  }
  for (auto& [name, entry] : histograms_) {
    entry.second->reset();
  }
}

}  // namespace trident::telemetry
