// CLI-driven telemetry lifecycle for benches and examples.
//
// Every instrumented binary does the same three things: turn telemetry on
// when the user asked for output files, run, then write the metrics
// snapshot / Chrome trace on exit.  TelemetrySession packages that:
//
//   int main(int argc, char** argv) {
//     const trident::CliArgs args(argc, argv);
//     trident::telemetry::TelemetrySession telemetry(args);
//     ...                       // --metrics-out / --trace-out just work
//   }
//
// With neither flag present (and TRIDENT_TELEMETRY env unset) the session
// is inert and the binary behaves exactly as before.
#pragma once

#include <optional>
#include <string>

#include "common/cli.hpp"

namespace trident::telemetry {

class TelemetrySession {
 public:
  /// Reads `--metrics-out <file>` / `--trace-out <file>` from `args` and
  /// enables telemetry when either is present.
  explicit TelemetrySession(const CliArgs& args);

  /// Explicit paths (tests, embedding without a CLI).
  TelemetrySession(std::optional<std::string> metrics_out,
                   std::optional<std::string> trace_out);

  TelemetrySession(const TelemetrySession&) = delete;
  TelemetrySession& operator=(const TelemetrySession&) = delete;

  /// Flushes on destruction (best-effort: failures are reported to stderr,
  /// never thrown).
  ~TelemetrySession();

  /// Writes the requested artifacts now (idempotent).  Returns false if
  /// any file could not be written.
  bool flush();

  /// True when at least one output was requested.
  [[nodiscard]] bool active() const {
    return metrics_out_.has_value() || trace_out_.has_value();
  }

 private:
  std::optional<std::string> metrics_out_;
  std::optional<std::string> trace_out_;
  bool flushed_ = false;
};

}  // namespace trident::telemetry
