#include "telemetry/session.hpp"

#include <fstream>
#include <iostream>

#include "telemetry/exporters.hpp"
#include "telemetry/telemetry.hpp"

namespace trident::telemetry {

TelemetrySession::TelemetrySession(const CliArgs& args)
    : TelemetrySession(args.metrics_out(), args.trace_out()) {}

TelemetrySession::TelemetrySession(std::optional<std::string> metrics_out,
                                   std::optional<std::string> trace_out)
    : metrics_out_(std::move(metrics_out)), trace_out_(std::move(trace_out)) {
  if (active()) {
    set_enabled(true);
  }
}

TelemetrySession::~TelemetrySession() { flush(); }

bool TelemetrySession::flush() {
  if (flushed_) {
    return true;
  }
  flushed_ = true;
  bool ok = true;
  const auto write_file = [&ok](const std::string& path, const auto& render) {
    std::ofstream os(path);
    if (os) {
      render(os);
    }
    if (!os) {
      std::cerr << "telemetry: failed to write " << path << '\n';
      ok = false;
    }
  };
  if (metrics_out_) {
    write_file(*metrics_out_, [](std::ostream& os) {
      write_json_snapshot(MetricsRegistry::global().snapshot(), os);
      os << '\n';
    });
  }
  if (trace_out_) {
    write_file(*trace_out_, [](std::ostream& os) {
      const auto events = TraceBuffer::global().snapshot();
      write_chrome_trace(events, os);
      os << '\n';
    });
  }
  return ok;
}

}  // namespace trident::telemetry
