#include "telemetry/exporters.hpp"

#include <charconv>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>
#include <unordered_set>
#include <utility>

namespace trident::telemetry {

namespace {

/// Shortest round-trip decimal for a finite double (JSON number).
[[nodiscard]] std::string format_double(double v) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  return std::string(buf, ptr);
}

/// JSON value for a possibly-NaN statistic: numbers pass through, NaN and
/// infinities become null (JSON has neither).
[[nodiscard]] std::string json_number_or_null(double v) {
  return std::isfinite(v) ? format_double(v) : "null";
}

/// Series name for a histogram's bucket-estimated percentile gauge.  The
/// unit suffix stays last per Prometheus naming conventions:
/// `lat_seconds` -> `lat_p99_seconds`, `batch_size` -> `batch_size_p99`.
[[nodiscard]] std::string percentile_name(std::string_view name,
                                          std::string_view tag) {
  constexpr std::string_view kUnit = "_seconds";
  const bool has_unit = name.size() > kUnit.size() &&
                        name.substr(name.size() - kUnit.size()) == kUnit;
  std::string out(has_unit ? name.substr(0, name.size() - kUnit.size())
                           : name);
  out += '_';
  out += tag;
  if (has_unit) {
    out += kUnit;
  }
  return out;
}

}  // namespace

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\b':
        out += "\\b";
        break;
      case '\f':
        out += "\\f";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\r':
        out += "\\r";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string format_trace_us(double us) {
  // Round to nanosecond resolution.  Negative or non-finite timestamps
  // clamp to 0 — they only arise from clock misuse and must not produce
  // invalid JSON.
  if (!std::isfinite(us) || us < 0.0) {
    us = 0.0;
  }
  const long long thousandths = std::llround(us * 1000.0);
  const long long whole = thousandths / 1000;
  const long long frac = thousandths % 1000;
  if (frac == 0) {
    return std::to_string(whole);
  }
  char buf[8];
  std::snprintf(buf, sizeof(buf), "%03lld", frac);
  std::string s(buf);
  while (!s.empty() && s.back() == '0') {
    s.pop_back();
  }
  return std::to_string(whole) + "." + s;
}

ChromeTraceWriter::ChromeTraceWriter(std::ostream& os) : os_(os) {
  os_ << "{\"traceEvents\":[";
}

ChromeTraceWriter::~ChromeTraceWriter() { finish(); }

void ChromeTraceWriter::event(std::string_view name, std::string_view category,
                              double ts_us, double dur_us, int pid,
                              std::uint64_t tid) {
  event(name, category, ts_us, dur_us, pid, tid, {});
}

void ChromeTraceWriter::event(std::string_view name, std::string_view category,
                              double ts_us, double dur_us, int pid,
                              std::uint64_t tid, std::string_view args_json) {
  if (!first_) {
    os_ << ',';
  }
  first_ = false;
  os_ << "{\"name\":\"" << json_escape(name) << "\","
      << "\"cat\":\"" << json_escape(category) << "\","
      << "\"ph\":\"X\","
      << "\"ts\":" << format_trace_us(ts_us) << ','
      << "\"dur\":" << format_trace_us(dur_us) << ','
      << "\"pid\":" << pid << ",\"tid\":" << tid;
  if (!args_json.empty()) {
    os_ << ",\"args\":{" << args_json << '}';
  }
  os_ << '}';
}

void ChromeTraceWriter::finish() {
  if (finished_) {
    return;
  }
  finished_ = true;
  os_ << "],\"displayTimeUnit\":\"ns\"}";
}

void write_chrome_trace(std::span<const TraceEvent> events, std::ostream& os) {
  ChromeTraceWriter writer(os);
  std::string args;
  for (const TraceEvent& e : events) {
    // Request-scoped correlation renders as Chrome-trace args so Perfetto
    // shows one causal tree per trace id next to the thread tracks.
    args.clear();
    if (e.trace_id != 0) {
      args += "\"trace\":" + std::to_string(e.trace_id);
      args += ",\"span\":" + std::to_string(e.span_id);
      if (e.parent_id != 0) {
        args += ",\"parent\":" + std::to_string(e.parent_id);
      }
    }
    if (!e.args.empty()) {
      if (!args.empty()) {
        args += ',';
      }
      args += e.args;
    }
    writer.event(e.name, e.category, e.ts_us, e.dur_us, 0, e.tid, args);
  }
  writer.finish();
}

std::string chrome_trace_json(std::span<const TraceEvent> events) {
  std::ostringstream os;
  write_chrome_trace(events, os);
  return os.str();
}

void write_prometheus(const MetricsSnapshot& snapshot, std::ostream& os) {
  const auto header = [&](const std::string& name, const std::string& help,
                          const char* type) {
    if (!help.empty()) {
      os << "# HELP " << name << ' ' << help << '\n';
    }
    os << "# TYPE " << name << ' ' << type << '\n';
  };
  for (const auto& c : snapshot.counters) {
    header(c.name, c.help, "counter");
    os << c.name << ' ' << c.value << '\n';
  }
  for (const auto& g : snapshot.gauges) {
    header(g.name, g.help, "gauge");
    os << g.name << ' ' << format_double(g.value) << '\n';
  }
  for (const auto& h : snapshot.histograms) {
    header(h.name, h.help, "histogram");
    // Prometheus buckets are cumulative and end at +Inf.
    std::uint64_t cumulative = 0;
    for (std::size_t i = 0; i < h.data.bounds.size(); ++i) {
      cumulative += h.data.counts[i];
      os << h.name << "_bucket{le=\"" << format_double(h.data.bounds[i])
         << "\"} " << cumulative << '\n';
    }
    cumulative += h.data.counts.back();
    os << h.name << "_bucket{le=\"+Inf\"} " << cumulative << '\n';
    os << h.name << "_sum " << format_double(h.data.sum) << '\n';
    os << h.name << "_count " << h.data.count << '\n';
  }
  // Bucket-estimated percentiles as companion gauge series, so SLO
  // numbers are scrape-able without a histogram_quantile() query.  They
  // cannot live inside the histogram family: the OpenMetrics grammar
  // only allows _bucket/_sum/_count samples under `# TYPE ... histogram`.
  // A registered metric that already owns the companion name wins — e.g.
  // the serving runtime exports exact-order-statistic sojourn p50/p99
  // gauges under the same names the estimate would take.
  std::unordered_set<std::string_view> taken;
  for (const auto& c : snapshot.counters) {
    taken.insert(c.name);
  }
  for (const auto& g : snapshot.gauges) {
    taken.insert(g.name);
  }
  for (const auto& h : snapshot.histograms) {
    constexpr std::pair<double, std::string_view> kPercentiles[] = {
        {0.5, "p50"}, {0.9, "p90"}, {0.99, "p99"}};
    for (const auto& [q, tag] : kPercentiles) {
      const double v = h.data.quantile(q);
      if (!std::isfinite(v)) {
        continue;
      }
      const std::string pname = percentile_name(h.name, tag);
      if (taken.count(pname) != 0) {
        continue;
      }
      header(pname,
             "bucket-estimated " + std::string(tag) + " of " + h.name,
             "gauge");
      os << pname << ' ' << format_double(v) << '\n';
    }
  }
}

std::string prometheus_text(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  write_prometheus(snapshot, os);
  return os.str();
}

void write_json_snapshot(const MetricsSnapshot& snapshot, std::ostream& os) {
  os << "{\"schema_version\":1,\"counters\":{";
  bool first = true;
  for (const auto& c : snapshot.counters) {
    os << (first ? "" : ",") << '"' << json_escape(c.name)
       << "\":" << c.value;
    first = false;
  }
  os << "},\"gauges\":{";
  first = true;
  for (const auto& g : snapshot.gauges) {
    os << (first ? "" : ",") << '"' << json_escape(g.name)
       << "\":" << json_number_or_null(g.value);
    first = false;
  }
  os << "},\"histograms\":{";
  first = true;
  for (const auto& h : snapshot.histograms) {
    os << (first ? "" : ",") << '"' << json_escape(h.name) << "\":{"
       << "\"count\":" << h.data.count << ",\"sum\":"
       << json_number_or_null(h.data.sum)
       << ",\"mean\":" << json_number_or_null(h.data.mean)
       << ",\"stddev\":" << json_number_or_null(h.data.stddev)
       << ",\"min\":" << json_number_or_null(h.data.min)
       << ",\"max\":" << json_number_or_null(h.data.max)
       << ",\"p50\":" << json_number_or_null(h.data.quantile(0.50))
       << ",\"p90\":" << json_number_or_null(h.data.quantile(0.90))
       << ",\"p99\":" << json_number_or_null(h.data.quantile(0.99))
       << ",\"buckets\":[";
    for (std::size_t i = 0; i < h.data.counts.size(); ++i) {
      os << (i == 0 ? "" : ",") << "{\"le\":"
         << (i < h.data.bounds.size() ? format_double(h.data.bounds[i])
                                      : std::string("null"))
         << ",\"count\":" << h.data.counts[i] << '}';
    }
    os << "]}";
    first = false;
  }
  os << "}}";
}

std::string json_snapshot(const MetricsSnapshot& snapshot) {
  std::ostringstream os;
  write_json_snapshot(snapshot, os);
  return os.str();
}

}  // namespace trident::telemetry
