// Thread-safe metrics registry: counters, gauges and fixed-bucket
// histograms with Welford running statistics (common/stats.hpp).
//
// Usage pattern (the only one the hot paths use):
//
//   namespace {
//   struct Metrics {
//     telemetry::Counter& symbols =
//         telemetry::MetricsRegistry::global().counter(
//             "trident_photonic_symbols_total", "optical symbols streamed");
//   };
//   Metrics& metrics() { static Metrics m; return m; }
//   }  // namespace
//   ...
//   if (telemetry::enabled()) {
//     metrics().symbols.add(batch);
//   }
//
// Registration (name lookup, allocation) happens once per site behind a
// function-local static; the recording calls are a relaxed fetch_add
// (Counter/Gauge) or a short uncontended mutex (Histogram).  Instruments
// never record on their own — call sites guard with telemetry::enabled(),
// so the disabled path costs one branch on a relaxed atomic.
//
// References returned by the registry are stable for the process lifetime
// (the registry is an intentionally leaked singleton, so worker threads
// may record during static destruction without ordering hazards).
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "common/stats.hpp"

namespace trident::telemetry {

/// Monotonic event count (Prometheus counter semantics).
class Counter {
 public:
  void add(std::uint64_t n = 1) { v_.fetch_add(n, std::memory_order_relaxed); }
  [[nodiscard]] std::uint64_t value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::uint64_t> v_{0};
};

/// Last-written double value (queue depth, accuracy, energy so far, …).
class Gauge {
 public:
  void set(double v) { v_.store(v, std::memory_order_relaxed); }
  void add(double d) {
    double cur = v_.load(std::memory_order_relaxed);
    while (!v_.compare_exchange_weak(cur, cur + d,
                                     std::memory_order_relaxed,
                                     std::memory_order_relaxed)) {
    }
  }
  [[nodiscard]] double value() const {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Point-in-time view of one histogram.
struct HistogramSnapshot {
  std::vector<double> bounds;         ///< finite upper bounds, ascending
  std::vector<std::uint64_t> counts;  ///< per-bucket; counts.back() = +Inf
  std::uint64_t count = 0;
  double sum = 0.0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;  ///< NaN when count == 0 (RunningStats convention)
  double max = 0.0;  ///< NaN when count == 0

  /// Quantile estimate from the bucket counts (q in [0, 1]): linear
  /// interpolation inside the containing bucket, with the exact observed
  /// min/max as the outer edges (so estimates never leave the observed
  /// range, and the +Inf bucket stays bounded).  NaN when count == 0.
  /// This is what puts p50/p99 SLO numbers straight into exported
  /// snapshots without post-processing.
  [[nodiscard]] double quantile(double q) const;
};

/// Fixed-bucket histogram plus single-pass Welford stats.  Observation
/// takes a mutex; every instrumented site has its own histogram so the
/// lock is effectively uncontended.
class Histogram {
 public:
  /// `bounds` are the finite bucket upper limits, strictly ascending; an
  /// implicit +Inf bucket is appended.
  explicit Histogram(std::vector<double> bounds);

  void observe(double x);
  [[nodiscard]] HistogramSnapshot snapshot() const;
  void reset();

  [[nodiscard]] const std::vector<double>& bounds() const { return bounds_; }

 private:
  mutable std::mutex mutex_;
  std::vector<double> bounds_;
  std::vector<std::uint64_t> counts_;  ///< bounds_.size() + 1 buckets
  RunningStats stats_;
  double sum_ = 0.0;
};

/// Default bucket ladder for kernel / task durations in seconds
/// (1 µs … 10 s, decade-and-a-half steps).
[[nodiscard]] std::vector<double> duration_buckets_seconds();

struct CounterSample {
  std::string name;
  std::string help;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::string help;
  double value = 0.0;
};

struct HistogramSample {
  std::string name;
  std::string help;
  HistogramSnapshot data;
};

/// Consistent point-in-time view of the whole registry, sorted by name.
struct MetricsSnapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  /// Counter value by exact name; 0 when absent.
  [[nodiscard]] std::uint64_t counter_value(const std::string& name) const;
  /// Gauge value by exact name; 0.0 when absent.
  [[nodiscard]] double gauge_value(const std::string& name) const;
};

/// Thread-safe name → instrument registry.  Names follow the Prometheus
/// grammar `[a-zA-Z_:][a-zA-Z0-9_:]*`; re-registering a name returns the
/// same instrument (the first help string and bucket layout win).
class MetricsRegistry {
 public:
  /// The process-wide registry every instrumentation site uses.
  static MetricsRegistry& global();

  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  Counter& counter(const std::string& name, const std::string& help = "");
  Gauge& gauge(const std::string& name, const std::string& help = "");
  Histogram& histogram(const std::string& name, std::vector<double> bounds,
                       const std::string& help = "");

  [[nodiscard]] MetricsSnapshot snapshot() const;

  /// Zeroes every instrument's value (registrations and the references
  /// handed out stay valid).  For tests and per-phase benches.
  void reset_values();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::pair<std::string, std::unique_ptr<Counter>>>
      counters_;
  std::map<std::string, std::pair<std::string, std::unique_ptr<Gauge>>>
      gauges_;
  std::map<std::string, std::pair<std::string, std::unique_ptr<Histogram>>>
      histograms_;
};

}  // namespace trident::telemetry
