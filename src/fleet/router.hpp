// Fleet request routing: consistent-hash ring and least-loaded placement
// over a heartbeat-refreshed node view.
//
// The Router is deliberately clock-free: every call that involves
// liveness takes the current time as a parameter (`now_s`, seconds on any
// monotonic scale the caller likes).  That makes the staleness machinery
// — heartbeat expiry, partitioned views that keep placing onto a dead
// node — exactly reproducible in tests and in the virtual-time benchmark,
// where "time" is simulation time rather than wall clock.
//
// Two placement policies:
//
//   kConsistentHash  Each node contributes `vnodes` points to a hash
//                    ring; a tenant key routes to the first point at or
//                    after its own hash.  Adding or removing one node
//                    moves only the keys in that node's arcs — expected
//                    K/N of them — which is the bounded-disruption
//                    property the property tests pin down.  If the owning
//                    node's heartbeat has expired the walk continues
//                    around the ring (each skip counted as a hop), so a
//                    single dead node degrades to rerouting, not loss.
//
//   kLeastLoaded     Place on the fresh node with the smallest reported
//                    queue depth (ties broken by lowest id).  This is
//                    join-shortest-queue against the *reported* gauge, so
//                    its quality is bounded by heartbeat freshness — the
//                    M/M/k cross-check in bench/fleet_serving quantifies
//                    the gap to the central-queue ideal.
//
// Partition fault: `set_partitioned(true)` freezes the view — heartbeats
// are accepted but ignored — while expiry keeps running against the
// frozen timestamps.  A router partitioned just before a node dies keeps
// placing traffic onto the corpse until the stale heartbeat ages out,
// which is precisely the window the fleet chaos soak measures.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

namespace trident::fleet {

/// Routing policy for Router::place.
enum class RoutePolicy {
  kConsistentHash,  ///< tenant-sticky, bounded disruption on churn
  kLeastLoaded,     ///< join-shortest-queue on reported depth gauges
};

[[nodiscard]] inline const char* to_string(RoutePolicy p) {
  return p == RoutePolicy::kConsistentHash ? "consistent_hash" : "least_loaded";
}

/// Result of one placement decision.
struct Placement {
  int node = -1;   ///< chosen node id, -1 when no fresh node exists
  bool stale = false;  ///< true when the chosen node's heartbeat had expired
                       ///< (partitioned view) — traffic lands on a corpse
  int hops = 0;    ///< ring points skipped past expired owners (hash policy)
};

/// Consistent-hash ring mapping 64-bit keys to node ids.  Not thread-safe
/// on its own; the Router wraps it under its mutex.  Exposed separately so
/// the ring's distribution and disruption properties can be tested in
/// isolation.
class ConsistentHashRing {
 public:
  explicit ConsistentHashRing(int vnodes = 64);

  void add_node(int node);
  void remove_node(int node);
  [[nodiscard]] bool contains(int node) const;
  [[nodiscard]] int size() const { return static_cast<int>(nodes_); }

  /// Owner of `key`: the first ring point clockwise from hash(key).
  /// Returns -1 on an empty ring.
  [[nodiscard]] int route(std::uint64_t key) const;

  /// Hashes a tenant name to its ring key (stable across processes —
  /// pure arithmetic, no std::hash).
  [[nodiscard]] static std::uint64_t key_of(const std::string& name);

 private:
  int vnodes_;
  std::size_t nodes_ = 0;
  // point hash -> node id; std::map gives the clockwise successor lookup.
  std::map<std::uint64_t, int> ring_;

  friend class Router;
};

struct RouterConfig {
  RoutePolicy policy = RoutePolicy::kConsistentHash;
  int vnodes = 64;
  /// A node whose last heartbeat is older than this is skipped (hash
  /// policy walks past it; least-loaded excludes it).
  double heartbeat_timeout_s = 1.0;
};

/// Point-in-time routing counters.
struct RouterStats {
  std::uint64_t placements = 0;
  std::uint64_t reroutes = 0;        ///< hash-ring hops past expired owners
  std::uint64_t stale_placements = 0;  ///< placements onto expired nodes
                                       ///< (only possible when partitioned)
  std::uint64_t no_node = 0;         ///< placements with no live node at all
};

/// Thread-safe routing front end over a heartbeat view.
class Router {
 public:
  explicit Router(const RouterConfig& config = {});

  /// Registers `node` and records an initial heartbeat at `now_s`.
  void add_node(int node, double now_s);

  /// Removes `node` from the ring and the view (a clean retire; for a
  /// crash, simply stop heartbeating and let the timeout work).
  void remove_node(int node);

  /// Refreshes `node`'s liveness and queue-depth gauge.  Ignored while
  /// the router is partitioned (the frozen-view fault).
  void heartbeat(int node, int queue_depth, double now_s);

  /// Chooses a node for `key` under the configured policy at time `now_s`.
  [[nodiscard]] Placement place(std::uint64_t key, double now_s);

  /// Freezes (true) or thaws (false) the heartbeat view.
  void set_partitioned(bool on);
  [[nodiscard]] bool partitioned() const;

  [[nodiscard]] RouterStats stats() const;
  [[nodiscard]] std::vector<int> nodes() const;
  [[nodiscard]] RouterConfig config() const { return config_; }

 private:
  struct NodeView {
    int depth = 0;
    double last_heartbeat_s = 0.0;
  };

  [[nodiscard]] bool fresh(const NodeView& view, double now_s) const;
  [[nodiscard]] Placement place_hash(std::uint64_t key, double now_s);
  [[nodiscard]] Placement place_least_loaded(double now_s);

  RouterConfig config_;
  mutable std::mutex mutex_;
  ConsistentHashRing ring_;
  std::unordered_map<int, NodeView> view_;
  bool partitioned_ = false;
  RouterStats stats_;
};

}  // namespace trident::fleet
