#include "fleet/autoscaler.hpp"

#include "common/error.hpp"

namespace trident::fleet {

Autoscaler::Autoscaler(const AutoscalerConfig& config) : config_(config) {
  TRIDENT_REQUIRE(config.up_streak >= 1, "up_streak must be at least 1");
  TRIDENT_REQUIRE(config.down_streak >= 1, "down_streak must be at least 1");
  TRIDENT_REQUIRE(config.hold_s >= 0.0, "hold_s must be nonnegative");
}

ScaleDecision Autoscaler::evaluate(const ScaleSample& sample) {
  ++stats_.samples;

  const bool hot =
      sample.slo_burn >= config_.up_burn || sample.shed_burn >= config_.up_burn ||
      sample.mean_depth >= config_.up_depth ||
      (config_.up_p99_s > 0.0 && sample.p99_s >= config_.up_p99_s);
  const bool cold = sample.slo_burn < config_.down_burn &&
                    sample.shed_burn < config_.down_burn &&
                    sample.mean_depth < config_.down_depth;

  // Hot and cold are mutually exclusive by construction when the config is
  // sane (up thresholds above down thresholds); hot wins if they overlap.
  if (hot) {
    ++hot_streak_;
    cold_streak_ = 0;
  } else if (cold) {
    ++cold_streak_;
    hot_streak_ = 0;
  } else {
    hot_streak_ = 0;
    cold_streak_ = 0;
  }

  const bool cooling = sample.t_s - last_action_s_ < config_.hold_s;

  if (hot_streak_ >= config_.up_streak) {
    if (cooling) {
      ++stats_.held_by_cooldown;
      return ScaleDecision::kHold;
    }
    hot_streak_ = 0;
    last_action_s_ = sample.t_s;
    ++stats_.scale_ups;
    return ScaleDecision::kScaleUp;
  }
  if (cold_streak_ >= config_.down_streak) {
    if (cooling) {
      ++stats_.held_by_cooldown;
      return ScaleDecision::kHold;
    }
    cold_streak_ = 0;
    last_action_s_ = sample.t_s;
    ++stats_.scale_downs;
    return ScaleDecision::kScaleDown;
  }
  return ScaleDecision::kHold;
}

}  // namespace trident::fleet
