// Fleet-scale serving: a sharded cluster of serving::Server nodes behind
// one routed front door.
//
// The Fleet owns N nodes.  Each node is a full PR-4 serving runtime — its
// own cloned model, replicas, backend (with energy ledger), admission
// queue, supervisor — constructed from one ServerConfig template with the
// backend seed re-split per node id, so every node's noise stream and
// every replica's within it are independent draws from one seed tree:
//
//   node n, replica r, incarnation i  →  split(split(split(seed, n), r), i)
//
// Request flow:
//
//   submit(tenant, input)
//     ├─ tenant lookup → class policy (deadline, watermark, tier)
//     ├─ Router::place(tenant_key, now) → node (hash-sticky or least-loaded)
//     ├─ class watermark check against the node's live queue depth
//     │    (bronze sheds early; gold defers to node admission)
//     └─ Server::submit(input, {deadline, tier, tenant_key})
//          └─ a draining/dead target reroutes once to the least-loaded
//             live node before the fleet sheds
//
// Accounting is hook-driven: every node runs with an on_response hook that
// fires for each terminal response (kOk and kFailed alike), so the fleet's
// per-tenant and fleet-wide books see exactly the responses the node-level
// conservation law counts.  The fleet-wide laws — checked by
// chaos::check_fleet_conservation after drain — are:
//
//   submitted == accepted + shed                 (front door)
//   accepted  == completed + failed              (after drain, across churn)
//   Σ node ledgers (live + retired folds) == fleet ledger
//
// and the same submitted/accepted/shed/completed/failed partition holds
// per tenant.
//
// Node lifecycle (driven by tick(), manually from tests or by the optional
// supervision thread):
//
//   live     heartbeats depth to the router every tick
//   dead     every replica kDead/kRetired → whole-node death: the fleet
//            retires the corpse's server (draining fails leftovers, books
//            fold) but leaves it on the ring until its heartbeat expires —
//            the window where a partitioned router keeps placing traffic
//            onto it (those submits hit a closed queue and reroute)
//   retired  drained cleanly (autoscale-down or drain()): removed from the
//            router first, then retire()d; final stats and ledger fold
//            into the fleet accumulators
//
// The Autoscaler consumes HealthMonitor burn rates over the fleet counters
// plus the mean depth gauge and fleet p99, and tick() applies its
// decisions within [min_nodes, max_nodes]: scale-up spawns a fresh node,
// scale-down drain-retires the least-loaded one.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/photonic_backend.hpp"
#include "fleet/autoscaler.hpp"
#include "fleet/router.hpp"
#include "fleet/tenant.hpp"
#include "nn/mlp.hpp"
#include "serving/server.hpp"
#include "telemetry/health.hpp"
#include "telemetry/metrics.hpp"

namespace trident::fleet {

struct FleetConfig {
  /// Nodes at construction.
  int initial_nodes = 2;
  /// Autoscaler clamp (also enforced on manual retire_node).
  int min_nodes = 1;
  int max_nodes = 8;
  /// Per-node runtime template.  `node.backend.seed` is the fleet base
  /// seed; node n runs with split(seed, n).  `node.on_response` must stay
  /// null — the fleet installs its own accounting hook.
  serving::ServerConfig node;
  RouterConfig router;
  /// Class policies (tenants reference these by TenantClass).
  TenantClassPolicy gold{0.0, 1.0, 0.001, serving::ServingTier::kExact};
  TenantClassPolicy bronze{0.0, 0.6, 0.05, serving::ServingTier::kExact};
  /// Telemetry-driven autoscaling (off: the fleet holds initial_nodes
  /// unless add_node/retire_node are called explicitly).
  bool autoscale = false;
  AutoscalerConfig autoscaler;
  /// Burn-rate classifier feeding the autoscaler (budgets shared with the
  /// node-level health story).
  telemetry::HealthConfig health;
  /// Autoscaler evaluation cadence within tick() (ticks may be faster;
  /// heartbeats happen every tick regardless).
  double autoscale_interval_s = 0.5;
  /// Background supervision: a thread calling tick(elapsed wall seconds)
  /// at this period.  0 disables — tests drive tick() manually with
  /// virtual time.
  double supervise_interval_s = 0.0;
  /// Chaos hook: per-node backend factory override (node id → factory
  /// passed into that node's ServerConfig).  Null uses `node.backend_factory`
  /// for every node.  This is how the fleet chaos harness gives each node
  /// its own scripted FaultPlan.
  std::function<serving::BackendFactory(int node_id)> node_backend_factory;
};

/// Point-in-time view of one node.
struct NodeStatus {
  int id = -1;
  bool dead = false;        ///< whole-node death detected
  std::size_t queue_depth = 0;
  std::uint64_t accepted = 0;
  std::uint64_t completed = 0;
};

/// Fleet-wide accounting: live node counters summed with the folds of
/// every retired/dead node, plus the fleet front door's own books.
struct FleetStats {
  // Topology.
  int nodes = 0;  ///< currently live (non-dead, non-retired)
  std::uint64_t node_spawns = 0;   ///< includes the initial nodes
  std::uint64_t node_retires = 0;  ///< clean drain-retires
  std::uint64_t node_deaths = 0;   ///< whole-node deaths detected
  std::uint64_t scale_ups = 0;
  std::uint64_t scale_downs = 0;
  // Front door.
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;   ///< admitted into some node's queue
  std::uint64_t shed = 0;       ///< no_node + class watermark + node admission
  std::uint64_t shed_no_node = 0;   ///< no live node to place on
  std::uint64_t shed_class = 0;     ///< class watermark refused
  std::uint64_t shed_node = 0;      ///< node admission refused
  std::uint64_t reroutes = 0;   ///< draining/dead target, resubmitted elsewhere
  // Completions (on_response hook; equals the sum of node books).
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t slo_violations = 0;  ///< responses past their class deadline
  // Routing (mirror of RouterStats).
  RouterStats router;
  /// Fleet-wide exact sojourn: per-tenant recorders merged into one
  /// population (LatencyRecorder::merge), so cluster p99 is a true order
  /// statistic.
  serving::LatencySummary sojourn;
  /// Summed node counters (live stats() + retired folds) for
  /// cross-checking against the front-door books.
  std::uint64_t node_accepted = 0;
  std::uint64_t node_completed = 0;
  std::uint64_t node_failed = 0;
  std::uint64_t node_shed = 0;
  /// Folded hardware bill.  Like the per-server ledger this is only
  /// complete after drain() (live nodes' replica ledgers are
  /// worker-private while serving); before that it holds the retired
  /// nodes' folds.
  core::PhotonicLedger ledger;
};

class Fleet {
 public:
  Fleet(const nn::Mlp& model, const FleetConfig& config);

  Fleet(const Fleet&) = delete;
  Fleet& operator=(const Fleet&) = delete;

  /// Drains on destruction if the caller did not.
  ~Fleet();

  /// Registers a tenant and returns its routing key.  Registering the
  /// same name again updates the class and returns the same key.
  std::uint64_t register_tenant(const TenantSpec& spec);

  /// Submits one inference under `tenant` (auto-registered as bronze when
  /// unknown).  Returns the response future, or nullopt when the fleet
  /// shed the request (no live node, class watermark, or node admission).
  [[nodiscard]] std::optional<std::future<serving::Response>> submit(
      const std::string& tenant, nn::Vector input);

  /// One supervision step at fleet time `now_s` (any monotonic scale, must
  /// be nondecreasing across calls): heartbeats live nodes to the router,
  /// detects whole-node deaths, expires corpses off the ring, and — when
  /// autoscaling — evaluates the autoscaler and applies its decision.
  void tick(double now_s);

  /// Spawns a fresh node (ignores max_nodes — the autoscaler clamp, not a
  /// hard limit for operators).  Returns the node id.
  int add_node(double now_s);

  /// Drain-retires a node: removed from the router, retire()d, books
  /// folded.  Returns false for an unknown/already-gone id.
  bool retire_node(int id);

  /// Retires every node and stops supervision.  Subsequent submits shed.
  /// Idempotent.
  void drain();

  [[nodiscard]] FleetStats stats() const;
  [[nodiscard]] std::vector<TenantStats> tenant_stats() const;
  [[nodiscard]] std::vector<NodeStatus> node_status() const;
  [[nodiscard]] int live_nodes() const;
  /// The routing front end (exposed for fault injection: partitions,
  /// manual heartbeats in virtual-time harnesses).
  [[nodiscard]] Router& router() { return router_; }
  [[nodiscard]] const FleetConfig& config() const { return config_; }

 private:
  struct TenantAccount {
    TenantSpec spec;
    std::uint64_t key = 0;
    std::atomic<std::uint64_t> submitted{0};
    std::atomic<std::uint64_t> accepted{0};
    std::atomic<std::uint64_t> shed{0};
    std::atomic<std::uint64_t> completed{0};
    std::atomic<std::uint64_t> failed{0};
    std::atomic<std::uint64_t> slo_violations{0};
    serving::LatencyRecorder sojourn;
    /// Registry mirror: the name-mangled
    /// `trident_tenant_<name>_requests_*_total` family, registered when
    /// the tenant is (registry references are process-stable).
    telemetry::Counter* m_submitted = nullptr;
    telemetry::Counter* m_accepted = nullptr;
    telemetry::Counter* m_shed = nullptr;
    telemetry::Counter* m_completed = nullptr;
    telemetry::Counter* m_failed = nullptr;
    telemetry::Counter* m_slo_violations = nullptr;
  };

  enum class NodeState { kLive, kDead, kRetired };

  struct Node {
    int id = -1;
    std::unique_ptr<serving::Server> server;
    NodeState state = NodeState::kLive;
    double died_s = 0.0;  ///< fleet time of death detection
  };

  [[nodiscard]] serving::ServerConfig node_config(int node_id);
  /// The on_response accounting hook (runs on node worker threads).
  void observe_response(const serving::Response& response);
  int add_node_locked(double now_s);
  /// Folds a node's final books into the retired accumulators.  The node
  /// must already be off the router (clean retire) or expired (death).
  void fold_node_locked(Node& node, NodeState final_state);
  [[nodiscard]] std::shared_ptr<TenantAccount> tenant_account(
      const std::string& name);
  /// Least-loaded live node other than `excluded` (-1 = none); used for
  /// the reroute-once path.  Caller holds nodes_mutex_.
  [[nodiscard]] std::shared_ptr<Node> reroute_target_locked(int excluded) const;
  [[nodiscard]] int live_nodes_locked() const;
  void autoscale_locked(double now_s);
  void supervise_loop();

  FleetConfig config_;
  nn::Mlp model_;
  /// One plan compiled at construction and shared by every node's version-0
  /// publication (via ServerConfig::initial_plan).  Null when the node
  /// config disables plan serving.
  std::shared_ptr<const nn::ExecutionPlan> init_plan_;
  Router router_;
  Autoscaler autoscaler_;
  telemetry::HealthMonitor health_;

  mutable std::mutex nodes_mutex_;
  std::map<int, std::shared_ptr<Node>> nodes_;
  int next_node_id_ = 0;
  double last_autoscale_s_ = -1e300;
  /// Monotonic fleet clock: advanced by tick(now_s), read by submit() for
  /// routing freshness.  Virtual in tests/bench, wall-derived under the
  /// supervision thread.
  std::atomic<double> fleet_now_s_{0.0};

  mutable std::mutex tenants_mutex_;
  std::map<std::string, std::shared_ptr<TenantAccount>> tenants_by_name_;
  std::map<std::uint64_t, std::shared_ptr<TenantAccount>> tenants_by_key_;

  // Front-door + completion counters (hook threads → atomics).
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> accepted_{0};
  std::atomic<std::uint64_t> shed_no_node_{0};
  std::atomic<std::uint64_t> shed_class_{0};
  std::atomic<std::uint64_t> shed_node_{0};
  std::atomic<std::uint64_t> reroutes_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> slo_violations_{0};
  std::atomic<std::uint64_t> node_spawns_{0};
  std::atomic<std::uint64_t> node_retires_{0};
  std::atomic<std::uint64_t> node_deaths_{0};
  std::atomic<std::uint64_t> scale_ups_{0};
  std::atomic<std::uint64_t> scale_downs_{0};
  /// Untenanted sojourn samples (tenant_key 0 — e.g. direct node access);
  /// tenanted samples live in their TenantAccount recorders.
  serving::LatencyRecorder untenanted_sojourn_;

  /// Books of retired/dead nodes (folded at retire time).
  mutable std::mutex fold_mutex_;
  std::uint64_t folded_accepted_ = 0;
  std::uint64_t folded_completed_ = 0;
  std::uint64_t folded_failed_ = 0;
  std::uint64_t folded_shed_ = 0;
  core::PhotonicLedger folded_ledger_;

  std::thread supervisor_;
  std::mutex supervisor_mutex_;
  std::condition_variable supervisor_cv_;
  std::atomic<bool> supervisor_stop_{false};

  mutable std::mutex drain_mutex_;
  bool drained_ = false;
};

}  // namespace trident::fleet
