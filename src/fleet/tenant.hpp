// Per-tenant admission classes for fleet serving.
//
// A fleet front door multiplexes many tenants onto shared accelerator
// nodes; what distinguishes production serving from a benchmark loop is
// that those tenants have *different contracts*.  Trident models two SLO
// classes, the minimal set that exercises every mechanism:
//
//   gold    tight deadline, sheds last.  Admission only refuses a gold
//           request when the routed node's queue is truly full (watermark
//           1.0), and every request carries a deadline stamped from the
//           class target, so misses are accounted per tenant.
//   bronze  looser (or no) deadline, sheds first.  Admission refuses a
//           bronze request as soon as the routed node's queue passes the
//           class watermark (a fraction of capacity), which keeps gold
//           queue-wait bounded under overload — priority by early shedding
//           rather than by queue-jumping, so the FIFO batcher below stays
//           untouched.
//
// Each class also carries a shed *budget*: the fraction of offered
// requests the operator considers acceptable to shed.  The budget is not
// an enforcement mechanism — shedding is decided by watermarks — it is
// the accounting yardstick the health monitor and autoscaler consume
// (shed-rate burn = shed fraction ÷ budget), and per-tenant counters make
// the spend observable.
//
// The class defaults also ride the PR-6 fast/exact knob: a class can
// default its tenants onto the int8 quantized tier (bronze traffic that
// tolerates the calibrated error bound) while gold stays exact.
#pragma once

#include <cstdint>
#include <string>

#include "serving/request.hpp"
#include "serving/slo.hpp"

namespace trident::fleet {

/// SLO class of a tenant.
enum class TenantClass {
  kGold,    ///< tight deadline, sheds last
  kBronze,  ///< loose deadline, sheds first
};

[[nodiscard]] inline const char* to_string(TenantClass c) {
  return c == TenantClass::kGold ? "gold" : "bronze";
}

/// Admission contract of one class.
struct TenantClassPolicy {
  /// Deadline stamped on every request of this class, measured from
  /// admission (0 = no deadline).  Misses are counted per tenant.
  double deadline_s = 0.0;
  /// Shed the request when the routed node's queue depth is at or past
  /// this fraction of its capacity.  1.0 defers entirely to the node's own
  /// admission control (gold); below 1.0 sheds early (bronze).
  double admit_watermark = 1.0;
  /// Acceptable shed fraction (accounting input for health/autoscaling,
  /// not an enforcement bound).
  double shed_budget = 0.01;
  /// Execution tier this class's tenants default to.
  serving::ServingTier default_tier = serving::ServingTier::kExact;
};

/// One registered tenant.  `key` (derived from the name by the fleet)
/// both routes the tenant on the consistent-hash ring and attributes
/// responses back to it.
struct TenantSpec {
  std::string name;
  TenantClass klass = TenantClass::kBronze;
};

/// Point-in-time accounting for one tenant.  The same conservation laws
/// as the fleet totals hold per tenant: submitted == accepted + shed, and
/// (after drain) accepted == completed + failed.
struct TenantStats {
  std::string name;
  TenantClass klass = TenantClass::kBronze;
  std::uint64_t key = 0;
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t slo_violations = 0;  ///< class-deadline misses
  serving::LatencySummary sojourn;   ///< exact per-tenant order statistics
};

}  // namespace trident::fleet
