#include "fleet/router.hpp"

#include <limits>

#include "common/error.hpp"

namespace trident::fleet {

namespace {

// splitmix64 finalizer — the same mixing the Rng::split tree uses, applied
// here as a standalone hash so ring points and tenant keys scatter
// uniformly regardless of how structured the inputs are.
std::uint64_t mix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ULL;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

}  // namespace

ConsistentHashRing::ConsistentHashRing(int vnodes) : vnodes_(vnodes) {
  TRIDENT_REQUIRE(vnodes >= 1, "ring needs at least one vnode per node");
}

void ConsistentHashRing::add_node(int node) {
  if (contains(node)) {
    return;
  }
  for (int v = 0; v < vnodes_; ++v) {
    // Mix node and vnode through two rounds so (1, 2) and (2, 1) land
    // nowhere near each other.
    const std::uint64_t point =
        mix64(mix64(static_cast<std::uint64_t>(node) + 1) +
              static_cast<std::uint64_t>(v));
    ring_.emplace(point, node);
  }
  ++nodes_;
}

void ConsistentHashRing::remove_node(int node) {
  if (!contains(node)) {
    return;
  }
  for (auto it = ring_.begin(); it != ring_.end();) {
    it = it->second == node ? ring_.erase(it) : std::next(it);
  }
  --nodes_;
}

bool ConsistentHashRing::contains(int node) const {
  for (const auto& [point, owner] : ring_) {
    if (owner == node) {
      return true;
    }
  }
  return false;
}

int ConsistentHashRing::route(std::uint64_t key) const {
  if (ring_.empty()) {
    return -1;
  }
  auto it = ring_.lower_bound(mix64(key));
  if (it == ring_.end()) {
    it = ring_.begin();  // wrap around
  }
  return it->second;
}

std::uint64_t ConsistentHashRing::key_of(const std::string& name) {
  // FNV-1a folded through the splitmix finalizer; never returns 0 so the
  // "untenanted" sentinel key stays reserved.
  std::uint64_t h = 0xCBF29CE484222325ULL;
  for (const char c : name) {
    h = (h ^ static_cast<unsigned char>(c)) * 0x100000001B3ULL;
  }
  const std::uint64_t key = mix64(h);
  return key == 0 ? 1 : key;
}

Router::Router(const RouterConfig& config)
    : config_(config), ring_(config.vnodes) {
  TRIDENT_REQUIRE(config.heartbeat_timeout_s > 0.0,
                  "heartbeat timeout must be positive");
}

void Router::add_node(int node, double now_s) {
  std::lock_guard lock(mutex_);
  ring_.add_node(node);
  view_[node] = NodeView{0, now_s};
}

void Router::remove_node(int node) {
  std::lock_guard lock(mutex_);
  ring_.remove_node(node);
  view_.erase(node);
}

void Router::heartbeat(int node, int queue_depth, double now_s) {
  std::lock_guard lock(mutex_);
  if (partitioned_) {
    return;  // frozen view: the partition fault swallows heartbeats
  }
  auto it = view_.find(node);
  if (it == view_.end()) {
    return;  // heartbeat from a node already removed — late and harmless
  }
  it->second.depth = queue_depth;
  it->second.last_heartbeat_s = now_s;
}

bool Router::fresh(const NodeView& view, double now_s) const {
  return now_s - view.last_heartbeat_s <= config_.heartbeat_timeout_s;
}

Placement Router::place(std::uint64_t key, double now_s) {
  std::lock_guard lock(mutex_);
  Placement p = config_.policy == RoutePolicy::kConsistentHash
                    ? place_hash(key, now_s)
                    : place_least_loaded(now_s);
  ++stats_.placements;
  stats_.reroutes += static_cast<std::uint64_t>(p.hops);
  if (p.node < 0) {
    ++stats_.no_node;
  } else if (p.stale) {
    ++stats_.stale_placements;
  }
  return p;
}

Placement Router::place_hash(std::uint64_t key, double now_s) {
  Placement p;
  if (ring_.ring_.empty()) {
    return p;
  }
  auto it = ring_.ring_.lower_bound(mix64(key));
  if (it == ring_.ring_.end()) {
    it = ring_.ring_.begin();
  }
  // Walk clockwise past expired owners, at most once around.  Counting
  // distinct *points* (not nodes) visited keeps the loop bound simple; a
  // hop is only charged when the owner actually changes.
  const int owner0 = it->second;
  int last_owner = owner0;
  for (std::size_t visited = 0; visited < ring_.ring_.size(); ++visited) {
    const int node = it->second;
    if (node != last_owner) {
      ++p.hops;
      last_owner = node;
    }
    const auto v = view_.find(node);
    if (v != view_.end() && fresh(v->second, now_s)) {
      p.node = node;
      return p;
    }
    ++it;
    if (it == ring_.ring_.end()) {
      it = ring_.ring_.begin();
    }
  }
  // Nobody is fresh.  Under a partition the contract is to keep placing
  // onto the stale owner (that is the fault being modelled); otherwise
  // report no node and let the caller shed.
  if (partitioned_) {
    p.node = owner0;
    p.stale = true;
    p.hops = 0;
  }
  return p;
}

Placement Router::place_least_loaded(double now_s) {
  Placement p;
  int best = -1;
  int best_depth = std::numeric_limits<int>::max();
  for (const auto& [node, view] : view_) {
    if (!fresh(view, now_s)) {
      continue;
    }
    if (view.depth < best_depth || (view.depth == best_depth && node < best)) {
      best = node;
      best_depth = view.depth;
    }
  }
  if (best < 0 && partitioned_ && !view_.empty()) {
    // Frozen view with everything expired: fall back to the stale
    // least-loaded snapshot rather than shedding the whole fleet.
    for (const auto& [node, view] : view_) {
      if (view.depth < best_depth || (view.depth == best_depth && node < best)) {
        best = node;
        best_depth = view.depth;
      }
    }
    p.stale = true;
  }
  p.node = best;
  return p;
}

void Router::set_partitioned(bool on) {
  std::lock_guard lock(mutex_);
  partitioned_ = on;
}

bool Router::partitioned() const {
  std::lock_guard lock(mutex_);
  return partitioned_;
}

RouterStats Router::stats() const {
  std::lock_guard lock(mutex_);
  return stats_;
}

std::vector<int> Router::nodes() const {
  std::lock_guard lock(mutex_);
  std::vector<int> out;
  out.reserve(view_.size());
  for (const auto& [node, view] : view_) {
    out.push_back(node);
  }
  return out;
}

}  // namespace trident::fleet
