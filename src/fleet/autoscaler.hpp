// Telemetry-driven fleet autoscaling.
//
// The Autoscaler is a pure decision engine, deliberately split from the
// Fleet that acts on its decisions: `evaluate` consumes one telemetry
// sample (burn rates in the HealthMonitor's sense, the fleet-mean queue
// depth gauge, and the sliding p99) and returns hold / scale-up /
// scale-down.  No threads, no clock reads — the same design that makes
// HealthMonitor and the Router testable with synthetic inputs applies
// here, and the unit tests drive the full state machine from a script.
//
// The state machine guards against the two classic autoscaler failure
// modes:
//
//   flapping     Scaling reacts to streaks, not single samples: a breach
//                must persist for `up_streak` consecutive samples before
//                a scale-up fires (and `down_streak` quiet samples before
//                a scale-down), and every action starts a cooldown of
//                `hold_s` during which further actions are suppressed.
//                Scale-down needs a longer streak than scale-up because
//                the cost asymmetry is real: a late scale-up burns SLO,
//                a late scale-down burns only energy.
//
//   runaway      Decisions are clamped to [min_nodes, max_nodes] by the
//                Fleet, and the cooldown means at most one node joins or
//                leaves per hold window, so a pathological signal cannot
//                double the fleet in one tick.
#pragma once

#include <cstdint>

namespace trident::fleet {

/// One telemetry sample for the autoscaler (fleet-aggregated).
struct ScaleSample {
  double t_s = 0.0;         ///< sample time, caller's monotonic scale
  double slo_burn = 0.0;    ///< SLO-violation burn rate (1.0 = on budget)
  double shed_burn = 0.0;   ///< shed-rate burn (1.0 = spending the budget)
  double mean_depth = 0.0;  ///< fleet-mean queue depth gauge
  double p99_s = 0.0;       ///< sliding p99 sojourn, seconds (0 = unknown)
};

struct AutoscalerConfig {
  /// Scale-up triggers: any one breached counts the sample as hot.
  double up_burn = 2.0;        ///< slo/shed burn at or above this is hot
  double up_depth = 8.0;       ///< mean queue depth at or above this is hot
  double up_p99_s = 0.0;       ///< p99 at or above this is hot (0 disables)
  /// Scale-down triggers: all must hold for the sample to count as cold.
  double down_burn = 0.5;      ///< slo/shed burn strictly below this
  double down_depth = 1.0;     ///< mean depth strictly below this
  /// Streak lengths (consecutive samples) before acting.
  int up_streak = 2;
  int down_streak = 5;
  /// Cooldown after any action; samples inside it update streaks but
  /// cannot trigger.
  double hold_s = 2.0;
};

/// Decision for one sample.
enum class ScaleDecision {
  kHold,
  kScaleUp,
  kScaleDown,
};

[[nodiscard]] inline const char* to_string(ScaleDecision d) {
  switch (d) {
    case ScaleDecision::kScaleUp:
      return "scale_up";
    case ScaleDecision::kScaleDown:
      return "scale_down";
    default:
      return "hold";
  }
}

struct AutoscalerStats {
  std::uint64_t samples = 0;
  std::uint64_t scale_ups = 0;
  std::uint64_t scale_downs = 0;
  std::uint64_t held_by_cooldown = 0;  ///< streak met but cooldown active
};

class Autoscaler {
 public:
  explicit Autoscaler(const AutoscalerConfig& config = {});

  /// Classifies one sample and advances the state machine.  Samples must
  /// arrive in nondecreasing `t_s` order.
  [[nodiscard]] ScaleDecision evaluate(const ScaleSample& sample);

  [[nodiscard]] AutoscalerStats stats() const { return stats_; }
  [[nodiscard]] AutoscalerConfig config() const { return config_; }

 private:
  AutoscalerConfig config_;
  AutoscalerStats stats_;
  int hot_streak_ = 0;
  int cold_streak_ = 0;
  double last_action_s_ = -1e300;  // effectively "never"
};

}  // namespace trident::fleet
