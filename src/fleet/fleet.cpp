#include "fleet/fleet.hpp"

#include <algorithm>
#include <chrono>
#include <limits>
#include <utility>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace trident::fleet {

namespace {

struct FleetMetrics {
  telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::global();
  telemetry::Gauge& nodes =
      reg.gauge("trident_fleet_nodes", "live serving nodes in the fleet");
  telemetry::Counter& node_spawns = reg.counter(
      "trident_fleet_node_spawns_total", "nodes spawned (initial + scale-up)");
  telemetry::Counter& node_retires =
      reg.counter("trident_fleet_node_retires_total",
                  "nodes drain-retired cleanly (scale-down, drain)");
  telemetry::Counter& node_deaths =
      reg.counter("trident_fleet_node_deaths_total",
                  "whole-node deaths detected (every replica dead)");
  telemetry::Counter& submitted = reg.counter(
      "trident_fleet_requests_submitted_total", "requests offered to the fleet");
  telemetry::Counter& accepted =
      reg.counter("trident_fleet_requests_accepted_total",
                  "requests admitted into some node's queue");
  telemetry::Counter& shed = reg.counter(
      "trident_fleet_requests_shed_total",
      "requests shed at the fleet front door (no node, class watermark, "
      "node admission)");
  telemetry::Counter& completed =
      reg.counter("trident_fleet_requests_completed_total",
                  "responses completed across all nodes (fleet hook)");
  telemetry::Counter& failed =
      reg.counter("trident_fleet_requests_failed_total",
                  "explicit kFailed responses across all nodes (fleet hook)");
  telemetry::Counter& reroutes =
      reg.counter("trident_fleet_reroutes_total",
                  "submissions rerouted off a draining or dead node");
  telemetry::Counter& slo_violations =
      reg.counter("trident_fleet_slo_violations_total",
                  "responses past their tenant-class deadline");
  telemetry::Counter& scale_ups = reg.counter(
      "trident_fleet_scale_ups_total", "autoscaler scale-up actions applied");
  telemetry::Counter& scale_downs =
      reg.counter("trident_fleet_scale_downs_total",
                  "autoscaler scale-down actions applied");
};

FleetMetrics& fleet_metrics() {
  static FleetMetrics m;
  return m;
}

/// Prometheus-legal metric name fragment from a tenant name.
[[nodiscard]] std::string sanitize(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  if (out.empty()) {
    out = "unnamed";
  }
  return out;
}

}  // namespace

serving::ServerConfig Fleet::node_config(int node_id) {
  serving::ServerConfig cfg = config_.node;
  // One seed tree for the whole fleet: node n's backend seed is
  // split(base, n); the Server re-splits per replica and incarnation.
  cfg.backend.seed =
      Rng(config_.node.backend.seed).split(static_cast<std::uint64_t>(node_id))
          .seed();
  if (config_.node_backend_factory) {
    cfg.backend_factory = config_.node_backend_factory(node_id);
  }
  cfg.on_response = [this](const serving::Response& r) { observe_response(r); };
  // All nodes launch from the same weights, so they share one compiled plan
  // instead of each paying a compile at construction.  Per-node hot_swaps
  // diverge from here as before — each publishes its own plan.
  cfg.initial_plan = init_plan_;
  return cfg;
}

Fleet::Fleet(const nn::Mlp& model, const FleetConfig& config)
    : config_(config),
      model_(model),
      router_(config.router),
      autoscaler_(config.autoscaler),
      health_(config.health) {
  TRIDENT_REQUIRE(config.initial_nodes >= 1, "fleet needs at least one node");
  TRIDENT_REQUIRE(config.min_nodes >= 1, "min_nodes must be at least 1");
  TRIDENT_REQUIRE(config.max_nodes >= config.min_nodes,
                  "max_nodes must be at least min_nodes");
  TRIDENT_REQUIRE(!config.node.on_response,
                  "FleetConfig::node.on_response must be null (the fleet "
                  "installs its own accounting hook)");
  TRIDENT_REQUIRE(config.node.initial_plan == nullptr,
                  "FleetConfig::node.initial_plan must be null (the fleet "
                  "compiles one shared plan for all nodes)");
  if (config_.node.use_plan) {
    init_plan_ = nn::ExecutionPlan::compile(
        model_, serving::Server::plan_config_for(config_.node));
  }
  {
    std::lock_guard lock(nodes_mutex_);
    for (int i = 0; i < config.initial_nodes; ++i) {
      add_node_locked(0.0);
    }
  }
  if (config_.supervise_interval_s > 0.0) {
    supervisor_ = std::thread([this] { supervise_loop(); });
  }
}

Fleet::~Fleet() { drain(); }

int Fleet::add_node_locked(double now_s) {
  const int id = next_node_id_++;
  auto node = std::make_shared<Node>();
  node->id = id;
  node->server = std::make_unique<serving::Server>(model_, node_config(id));
  nodes_.emplace(id, std::move(node));
  router_.add_node(id, now_s);
  node_spawns_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry::enabled()) {
    fleet_metrics().node_spawns.add(1);
    fleet_metrics().nodes.set(static_cast<double>(live_nodes_locked()));
  }
  return id;
}

int Fleet::add_node(double now_s) {
  std::lock_guard lock(nodes_mutex_);
  return add_node_locked(now_s);
}

void Fleet::fold_node_locked(Node& node, NodeState final_state) {
  const serving::ServerStats final = node.server->retire();
  {
    std::lock_guard lock(fold_mutex_);
    folded_accepted_ += final.accepted;
    folded_completed_ += final.completed;
    folded_failed_ += final.failed;
    folded_shed_ += final.shed;
    folded_ledger_ = folded_ledger_ + final.ledger;
  }
  node.state = final_state;
}

bool Fleet::retire_node(int id) {
  std::lock_guard lock(nodes_mutex_);
  auto it = nodes_.find(id);
  if (it == nodes_.end() || it->second->state != NodeState::kLive) {
    return false;
  }
  // Off the router first, so no new placement targets the node while it
  // drains; in-flight requests complete (or fail explicitly) inside
  // retire().
  router_.remove_node(id);
  fold_node_locked(*it->second, NodeState::kRetired);
  nodes_.erase(it);
  node_retires_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry::enabled()) {
    fleet_metrics().node_retires.add(1);
    fleet_metrics().nodes.set(static_cast<double>(live_nodes_locked()));
  }
  return true;
}

std::uint64_t Fleet::register_tenant(const TenantSpec& spec) {
  std::lock_guard lock(tenants_mutex_);
  auto it = tenants_by_name_.find(spec.name);
  if (it != tenants_by_name_.end()) {
    it->second->spec.klass = spec.klass;
    return it->second->key;
  }
  auto acct = std::make_shared<TenantAccount>();
  acct->spec = spec;
  // key_of never returns 0 (the untenanted sentinel); on the astronomically
  // unlikely cross-name collision, probe linearly to keep attribution
  // injective.
  std::uint64_t key = ConsistentHashRing::key_of(spec.name);
  while (key == 0 || tenants_by_key_.count(key) != 0) {
    ++key;
  }
  acct->key = key;
  // Per-tenant registry family.  No-label registries mangle the tenant into
  // the metric name; re-registering an existing name returns the same
  // counter, so two tenants whose names sanitize identically share one
  // family (documented in docs/fleet.md).
  const std::string base = "trident_tenant_" + sanitize(spec.name) + "_";
  auto& reg = telemetry::MetricsRegistry::global();
  acct->m_submitted = &reg.counter(base + "requests_submitted_total",
                                   "requests offered by tenant " + spec.name);
  acct->m_accepted = &reg.counter(base + "requests_accepted_total",
                                  "requests admitted for tenant " + spec.name);
  acct->m_shed = &reg.counter(base + "requests_shed_total",
                              "requests shed for tenant " + spec.name);
  acct->m_completed = &reg.counter(
      base + "requests_completed_total",
      "responses completed for tenant " + spec.name);
  acct->m_failed = &reg.counter(base + "requests_failed_total",
                                "kFailed responses for tenant " + spec.name);
  acct->m_slo_violations =
      &reg.counter(base + "slo_violations_total",
                   "class-deadline misses for tenant " + spec.name);
  tenants_by_name_.emplace(spec.name, acct);
  tenants_by_key_.emplace(key, acct);
  return key;
}

std::shared_ptr<Fleet::TenantAccount> Fleet::tenant_account(
    const std::string& name) {
  {
    std::lock_guard lock(tenants_mutex_);
    auto it = tenants_by_name_.find(name);
    if (it != tenants_by_name_.end()) {
      return it->second;
    }
  }
  // Unknown tenants ride the bronze contract.
  register_tenant(TenantSpec{name, TenantClass::kBronze});
  std::lock_guard lock(tenants_mutex_);
  return tenants_by_name_.at(name);
}

void Fleet::observe_response(const serving::Response& response) {
  const bool ok = response.status == serving::ResponseStatus::kOk;
  if (ok) {
    completed_.fetch_add(1, std::memory_order_relaxed);
  } else {
    failed_.fetch_add(1, std::memory_order_relaxed);
  }
  if (response.deadline_missed) {
    slo_violations_.fetch_add(1, std::memory_order_relaxed);
  }
  if (telemetry::enabled()) {
    (ok ? fleet_metrics().completed : fleet_metrics().failed).add(1);
    if (response.deadline_missed) {
      fleet_metrics().slo_violations.add(1);
    }
  }

  std::shared_ptr<TenantAccount> acct;
  if (response.tenant_key != 0) {
    std::lock_guard lock(tenants_mutex_);
    auto it = tenants_by_key_.find(response.tenant_key);
    if (it != tenants_by_key_.end()) {
      acct = it->second;
    }
  }
  if (acct) {
    (ok ? acct->completed : acct->failed).fetch_add(1,
                                                    std::memory_order_relaxed);
    if (response.deadline_missed) {
      acct->slo_violations.fetch_add(1, std::memory_order_relaxed);
    }
    // Like the Server's own recorder, only kOk sojourns enter the latency
    // population (sojourn samples == completed, fleet-wide and per tenant).
    if (ok) {
      acct->sojourn.record(response.timing.sojourn_s);
    }
    if (telemetry::enabled()) {
      (ok ? acct->m_completed : acct->m_failed)->add(1);
      if (response.deadline_missed) {
        acct->m_slo_violations->add(1);
      }
    }
  } else if (ok) {
    untenanted_sojourn_.record(response.timing.sojourn_s);
  }
}

std::shared_ptr<Fleet::Node> Fleet::reroute_target_locked(int excluded) const {
  std::shared_ptr<Node> best;
  std::size_t best_depth = std::numeric_limits<std::size_t>::max();
  for (const auto& [id, node] : nodes_) {
    if (id == excluded || node->state != NodeState::kLive) {
      continue;
    }
    const std::size_t depth = node->server->queue_depth();
    if (depth < best_depth) {
      best = node;
      best_depth = depth;
    }
  }
  return best;
}

std::optional<std::future<serving::Response>> Fleet::submit(
    const std::string& tenant, nn::Vector input) {
  auto acct = tenant_account(tenant);
  const TenantClassPolicy& policy =
      acct->spec.klass == TenantClass::kGold ? config_.gold : config_.bronze;

  submitted_.fetch_add(1, std::memory_order_relaxed);
  acct->submitted.fetch_add(1, std::memory_order_relaxed);
  if (telemetry::enabled()) {
    fleet_metrics().submitted.add(1);
    acct->m_submitted->add(1);
  }

  const auto shed = [&](std::atomic<std::uint64_t>& bucket) {
    bucket.fetch_add(1, std::memory_order_relaxed);
    acct->shed.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::enabled()) {
      fleet_metrics().shed.add(1);
      acct->m_shed->add(1);
    }
    return std::nullopt;
  };

  const double now_s = fleet_now_s_.load(std::memory_order_relaxed);
  const Placement placement = router_.place(acct->key, now_s);
  if (placement.node < 0) {
    return shed(shed_no_node_);
  }

  std::shared_ptr<Node> node;
  {
    std::lock_guard lock(nodes_mutex_);
    auto it = nodes_.find(placement.node);
    if (it != nodes_.end()) {
      node = it->second;
    } else {
      // Router view lagged a retire; fall through to the reroute path.
      node = reroute_target_locked(-1);
      if (node) {
        reroutes_.fetch_add(1, std::memory_order_relaxed);
        if (telemetry::enabled()) {
          fleet_metrics().reroutes.add(1);
        }
      }
    }
  }
  if (!node) {
    return shed(shed_no_node_);
  }

  // Class-watermark admission: bronze sheds as soon as the routed node's
  // queue passes its fraction of capacity; gold (watermark 1.0) defers to
  // the node's own admission control.
  if (policy.admit_watermark < 1.0) {
    const auto cap = static_cast<double>(config_.node.admission.capacity);
    if (static_cast<double>(node->server->queue_depth()) >=
        policy.admit_watermark * cap) {
      return shed(shed_class_);
    }
  }

  serving::SubmitOptions options;
  options.tier = policy.default_tier;
  options.tenant_key = acct->key;
  if (policy.deadline_s > 0.0) {
    options.deadline = serving::Clock::now() +
                       std::chrono::duration_cast<serving::Clock::duration>(
                           std::chrono::duration<double>(policy.deadline_s));
  }

  auto future = node->server->submit(input, options);
  if (!future && node->server->draining()) {
    // The routed node is draining (retiring, or a detected corpse whose
    // queue was closed by the death fold) — reroute once to the
    // least-loaded live node before giving up.
    std::shared_ptr<Node> fallback;
    {
      std::lock_guard lock(nodes_mutex_);
      fallback = reroute_target_locked(node->id);
    }
    if (!fallback) {
      return shed(shed_no_node_);
    }
    reroutes_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::enabled()) {
      fleet_metrics().reroutes.add(1);
    }
    future = fallback->server->submit(std::move(input), options);
    if (!future) {
      return shed(fallback->server->draining() ? shed_no_node_ : shed_node_);
    }
  } else if (!future) {
    return shed(shed_node_);
  }

  accepted_.fetch_add(1, std::memory_order_relaxed);
  acct->accepted.fetch_add(1, std::memory_order_relaxed);
  if (telemetry::enabled()) {
    fleet_metrics().accepted.add(1);
    acct->m_accepted->add(1);
  }
  return future;
}

void Fleet::tick(double now_s) {
  // Monotonic fleet clock shared with submit()'s routing decisions.
  double prev = fleet_now_s_.load(std::memory_order_relaxed);
  while (now_s > prev && !fleet_now_s_.compare_exchange_weak(
                             prev, now_s, std::memory_order_relaxed)) {
  }

  std::lock_guard lock(nodes_mutex_);
  // 1. Whole-node death detection: every replica kDead/kRetired.  The
  //    corpse's books fold immediately (retire() fails the queued
  //    leftovers explicitly — conservation), but the node STAYS on the
  //    router until its heartbeat expires: the window where a stale or
  //    partitioned view keeps placing traffic onto it.
  for (auto& [id, node] : nodes_) {
    if (node->state != NodeState::kLive) {
      continue;
    }
    const auto healths = node->server->health();
    bool all_dead = !healths.empty();
    for (const auto& h : healths) {
      if (h.state != serving::ReplicaState::kDead &&
          h.state != serving::ReplicaState::kRetired) {
        all_dead = false;
        break;
      }
    }
    if (all_dead) {
      node_deaths_.fetch_add(1, std::memory_order_relaxed);
      if (telemetry::enabled()) {
        fleet_metrics().node_deaths.add(1);
      }
      fold_node_locked(*node, NodeState::kDead);
      node->died_s = now_s;
      if (telemetry::enabled()) {
        fleet_metrics().nodes.set(static_cast<double>(live_nodes_locked()));
      }
    }
  }

  // 2. Heartbeats for the living (the router drops them while
  //    partitioned — that is the fault, not a bug).
  for (auto& [id, node] : nodes_) {
    if (node->state == NodeState::kLive) {
      router_.heartbeat(id, static_cast<int>(node->server->queue_depth()),
                        now_s);
    }
  }

  // 3. Corpse expiry: once a dead node's last heartbeat has aged out it
  //    can no longer attract placements — take it off the ring and forget
  //    it (books were folded at death).
  for (auto it = nodes_.begin(); it != nodes_.end();) {
    Node& node = *it->second;
    if (node.state == NodeState::kDead &&
        now_s - node.died_s > config_.router.heartbeat_timeout_s) {
      router_.remove_node(node.id);
      it = nodes_.erase(it);
    } else {
      ++it;
    }
  }

  // 4. Telemetry-driven autoscaling on its own cadence.
  if (config_.autoscale &&
      now_s - last_autoscale_s_ >= config_.autoscale_interval_s) {
    last_autoscale_s_ = now_s;
    autoscale_locked(now_s);
  }
}

void Fleet::autoscale_locked(double now_s) {
  // Feed the burn-rate classifier the fleet-wide cumulative counters; its
  // windowed burns are exactly the autoscaler's pressure signals.
  telemetry::HealthSample hs;
  hs.t_s = now_s;
  hs.completed = completed_.load(std::memory_order_relaxed);
  hs.slo_violations = slo_violations_.load(std::memory_order_relaxed);
  hs.shed = shed_no_node_.load(std::memory_order_relaxed) +
            shed_class_.load(std::memory_order_relaxed) +
            shed_node_.load(std::memory_order_relaxed);
  hs.degraded = failed_.load(std::memory_order_relaxed);
  const telemetry::HealthReport report = health_.update(hs);

  int live = 0;
  double depth_sum = 0.0;
  for (const auto& [id, node] : nodes_) {
    if (node->state == NodeState::kLive) {
      ++live;
      depth_sum += static_cast<double>(node->server->queue_depth());
    }
  }

  ScaleSample sample;
  sample.t_s = now_s;
  sample.slo_burn = std::max(report.slo.short_burn, report.degraded.short_burn);
  sample.shed_burn = report.shed.short_burn;
  sample.mean_depth = live > 0 ? depth_sum / static_cast<double>(live) : 0.0;
  sample.p99_s = report.p99_s;

  const ScaleDecision decision = autoscaler_.evaluate(sample);
  if (decision == ScaleDecision::kScaleUp && live < config_.max_nodes) {
    add_node_locked(now_s);
    scale_ups_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::enabled()) {
      fleet_metrics().scale_ups.add(1);
    }
  } else if (decision == ScaleDecision::kScaleDown && live > config_.min_nodes) {
    // Drain-retire the least-loaded live node: cheapest to empty, and its
    // tenants re-land on the survivors with bounded ring disruption.
    const std::shared_ptr<Node> victim = reroute_target_locked(-1);
    if (victim) {
      router_.remove_node(victim->id);
      fold_node_locked(*victim, NodeState::kRetired);
      nodes_.erase(victim->id);
      node_retires_.fetch_add(1, std::memory_order_relaxed);
      scale_downs_.fetch_add(1, std::memory_order_relaxed);
      if (telemetry::enabled()) {
        fleet_metrics().node_retires.add(1);
        fleet_metrics().scale_downs.add(1);
        fleet_metrics().nodes.set(static_cast<double>(live_nodes_locked()));
      }
    }
  }
}

void Fleet::supervise_loop() {
  const auto start = std::chrono::steady_clock::now();
  const auto interval = std::chrono::duration_cast<
      std::chrono::steady_clock::duration>(
      std::chrono::duration<double>(config_.supervise_interval_s));
  std::unique_lock lock(supervisor_mutex_);
  while (!supervisor_stop_.load(std::memory_order_acquire)) {
    supervisor_cv_.wait_for(lock, interval, [this] {
      return supervisor_stop_.load(std::memory_order_acquire);
    });
    if (supervisor_stop_.load(std::memory_order_acquire)) {
      break;
    }
    const double now_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - start)
            .count();
    lock.unlock();
    tick(now_s);
    lock.lock();
  }
}

void Fleet::drain() {
  {
    std::lock_guard lock(drain_mutex_);
    if (drained_) {
      return;
    }
    drained_ = true;
  }
  if (supervisor_.joinable()) {
    supervisor_stop_.store(true, std::memory_order_release);
    supervisor_cv_.notify_all();
    supervisor_.join();
  }
  std::lock_guard lock(nodes_mutex_);
  for (auto& [id, node] : nodes_) {
    router_.remove_node(id);
    if (node->state == NodeState::kLive) {
      fold_node_locked(*node, NodeState::kRetired);
      node_retires_.fetch_add(1, std::memory_order_relaxed);
      if (telemetry::enabled()) {
        fleet_metrics().node_retires.add(1);
      }
    }
  }
  nodes_.clear();
  if (telemetry::enabled()) {
    fleet_metrics().nodes.set(0.0);
  }
}

int Fleet::live_nodes_locked() const {
  int live = 0;
  for (const auto& [id, node] : nodes_) {
    if (node->state == NodeState::kLive) {
      ++live;
    }
  }
  return live;
}

int Fleet::live_nodes() const {
  std::lock_guard lock(nodes_mutex_);
  return live_nodes_locked();
}

FleetStats Fleet::stats() const {
  FleetStats s;
  s.node_spawns = node_spawns_.load(std::memory_order_relaxed);
  s.node_retires = node_retires_.load(std::memory_order_relaxed);
  s.node_deaths = node_deaths_.load(std::memory_order_relaxed);
  s.scale_ups = scale_ups_.load(std::memory_order_relaxed);
  s.scale_downs = scale_downs_.load(std::memory_order_relaxed);
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.accepted = accepted_.load(std::memory_order_relaxed);
  s.shed_no_node = shed_no_node_.load(std::memory_order_relaxed);
  s.shed_class = shed_class_.load(std::memory_order_relaxed);
  s.shed_node = shed_node_.load(std::memory_order_relaxed);
  s.shed = s.shed_no_node + s.shed_class + s.shed_node;
  s.reroutes = reroutes_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.slo_violations = slo_violations_.load(std::memory_order_relaxed);
  s.router = router_.stats();

  {
    std::lock_guard lock(nodes_mutex_);
    s.nodes = live_nodes_locked();
    for (const auto& [id, node] : nodes_) {
      if (node->state != NodeState::kLive) {
        continue;  // dead/retired books are in the folds
      }
      const serving::ServerStats ns = node->server->stats();
      s.node_accepted += ns.accepted;
      s.node_completed += ns.completed;
      s.node_failed += ns.failed;
      s.node_shed += ns.shed;
      s.ledger = s.ledger + ns.ledger;  // nonzero only once drained
    }
  }
  {
    std::lock_guard lock(fold_mutex_);
    s.node_accepted += folded_accepted_;
    s.node_completed += folded_completed_;
    s.node_failed += folded_failed_;
    s.node_shed += folded_shed_;
    s.ledger = s.ledger + folded_ledger_;
  }

  // Fleet-wide exact percentiles: merge every tenant population plus the
  // untenanted remainder into one recorder (order statistics survive the
  // merge; averaging per-tenant p99s would not).
  serving::LatencyRecorder all;
  {
    std::vector<std::shared_ptr<TenantAccount>> accounts;
    {
      std::lock_guard lock(tenants_mutex_);
      accounts.reserve(tenants_by_key_.size());
      for (const auto& [key, acct] : tenants_by_key_) {
        accounts.push_back(acct);
      }
    }
    for (const auto& acct : accounts) {
      all.merge(acct->sojourn);
    }
  }
  all.merge(untenanted_sojourn_);
  s.sojourn = all.summary();
  return s;
}

std::vector<TenantStats> Fleet::tenant_stats() const {
  std::vector<std::shared_ptr<TenantAccount>> accounts;
  {
    std::lock_guard lock(tenants_mutex_);
    accounts.reserve(tenants_by_key_.size());
    for (const auto& [key, acct] : tenants_by_key_) {
      accounts.push_back(acct);
    }
  }
  std::vector<TenantStats> out;
  out.reserve(accounts.size());
  for (const auto& acct : accounts) {
    TenantStats t;
    t.name = acct->spec.name;
    t.klass = acct->spec.klass;
    t.key = acct->key;
    t.submitted = acct->submitted.load(std::memory_order_relaxed);
    t.accepted = acct->accepted.load(std::memory_order_relaxed);
    t.shed = acct->shed.load(std::memory_order_relaxed);
    t.completed = acct->completed.load(std::memory_order_relaxed);
    t.failed = acct->failed.load(std::memory_order_relaxed);
    t.slo_violations = acct->slo_violations.load(std::memory_order_relaxed);
    t.sojourn = acct->sojourn.summary();
    out.push_back(std::move(t));
  }
  return out;
}

std::vector<NodeStatus> Fleet::node_status() const {
  std::lock_guard lock(nodes_mutex_);
  std::vector<NodeStatus> out;
  out.reserve(nodes_.size());
  for (const auto& [id, node] : nodes_) {
    NodeStatus st;
    st.id = id;
    st.dead = node->state == NodeState::kDead;
    st.queue_depth = node->server->queue_depth();
    const serving::ServerStats ns = node->server->stats();
    st.accepted = ns.accepted;
    st.completed = ns.completed;
    out.push_back(st);
  }
  return out;
}

}  // namespace trident::fleet
