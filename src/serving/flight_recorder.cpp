#include "serving/flight_recorder.hpp"

#include <algorithm>
#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <utility>

#include "common/error.hpp"
#include "state/snapshot.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace trident::serving {

namespace {

struct FlightMetrics {
  telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::global();
  telemetry::Counter& kept = reg.counter(
      "trident_flight_records_kept_total",
      "request records retained by the flight recorder's tail sampler");
  telemetry::Counter& evicted =
      reg.counter("trident_flight_records_evicted_total",
                  "flight records evicted from the bounded ring");
  telemetry::Counter& dumps = reg.counter(
      "trident_flight_dumps_total", "flight-recorder postmortem dumps written");
};

FlightMetrics& flight_metrics() {
  static FlightMetrics m;
  return m;
}

[[nodiscard]] std::string format_double(double v) {
  char buf[32];
  const auto [ptr, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  (void)ec;
  return std::string(buf, ptr);
}

[[nodiscard]] const char* tier_label(ServingTier t) {
  return t == ServingTier::kFast ? "fast" : "exact";
}

void append_record_json(std::string& out, const FlightRecord& r,
                        bool deterministic) {
  out += "{\"trace\":" + std::to_string(r.trace_id);
  out += ",\"id\":" + std::to_string(r.request_id);
  out += ",\"outcome\":\"" + telemetry::json_escape(r.outcome) + '"';
  out += ",\"keep\":\"" + telemetry::json_escape(r.keep_reason) + '"';
  out += ",\"tier\":\"";
  out += tier_label(r.tier);
  out += '"';
  out += ",\"fallback\":";
  out += r.tier_fallback ? "true" : "false";
  out += ",\"attempts\":" + std::to_string(r.attempts);
  out += ",\"replica\":" + std::to_string(r.replica);
  out += ",\"incarnation\":" + std::to_string(r.incarnation);
  out += ",\"batch\":" + std::to_string(r.batch_size);
  out += ",\"slo_violated\":";
  out += r.slo_violated ? "true" : "false";
  out += ",\"deadline_missed\":";
  out += r.deadline_missed ? "true" : "false";
  out += ",\"attempt_log\":[";
  for (std::size_t i = 0; i < r.attempt_log.size(); ++i) {
    const AttemptNote& a = r.attempt_log[i];
    out += i == 0 ? "" : ",";
    out += "{\"replica\":" + std::to_string(a.replica);
    out += ",\"incarnation\":" + std::to_string(a.incarnation);
    out += ",\"error\":\"" + telemetry::json_escape(a.error) + "\"}";
  }
  out += ']';
  if (!deterministic) {
    // Wall-clock timings are real observations in a live dump but vary
    // run to run — deterministic mode omits them so a seeded soak
    // reproduces the dump byte-for-byte.
    out += ",\"timing\":{\"queue_wait_s\":" + format_double(r.timing.queue_wait_s);
    out += ",\"service_s\":" + format_double(r.timing.service_s);
    out += ",\"sojourn_s\":" + format_double(r.timing.sojourn_s) + '}';
  }
  out += '}';
}

}  // namespace

FlightRecorder::FlightRecorder(FlightRecorderConfig config)
    : config_(std::move(config)) {
  TRIDENT_REQUIRE(config_.capacity >= 1,
                  "flight recorder capacity must be positive");
  ring_.reserve(std::min<std::size_t>(config_.capacity, 4096));
}

std::string_view FlightRecorder::keep_reason(const FlightRecord& r) const {
  // Anomaly rules first: an anomalous request is always kept, whether or
  // not it also happens to be in the sample.
  if (r.outcome == "failed") {
    return "failed";
  }
  if (r.outcome == "shed") {
    return "shed";
  }
  if (r.slo_violated) {
    return "slo_violated";
  }
  if (r.deadline_missed) {
    return "deadline_missed";
  }
  if (r.attempts > 1 || !r.attempt_log.empty()) {
    return "retried";
  }
  if (config_.slow_threshold_s > 0.0 &&
      r.timing.sojourn_s > config_.slow_threshold_s) {
    return "slow";
  }
  if (config_.sample_every > 0 && r.trace_id % config_.sample_every == 0) {
    return "sampled";
  }
  return {};
}

void FlightRecorder::observe(FlightRecord record) {
  const std::string_view reason = keep_reason(record);
  std::lock_guard lock(mutex_);
  ++observed_;
  if (reason.empty()) {
    return;
  }
  record.keep_reason = std::string(reason);
  ++kept_;
  if (ring_.size() >= config_.capacity) {
    // Bounded by construction: drop the oldest record, count the loss.
    ring_.erase(ring_.begin());
    ++evicted_;
    if (telemetry::enabled()) {
      flight_metrics().evicted.add(1);
    }
  }
  ring_.push_back(std::move(record));
  if (telemetry::enabled()) {
    flight_metrics().kept.add(1);
  }
}

std::string FlightRecorder::render(std::string_view reason) const {
  std::vector<FlightRecord> records;
  std::uint64_t observed = 0;
  std::uint64_t kept = 0;
  std::uint64_t evicted = 0;
  {
    std::lock_guard lock(mutex_);
    records = ring_;
    observed = observed_;
    kept = kept_;
    evicted = evicted_;
  }
  if (config_.deterministic) {
    // Ring order reflects worker-thread interleaving; trace-id order is a
    // property of the workload alone.
    std::stable_sort(records.begin(), records.end(),
                     [](const FlightRecord& a, const FlightRecord& b) {
                       return a.trace_id < b.trace_id;
                     });
  }
  std::string payload = "{\"flight_recorder_version\":1";
  payload += ",\"reason\":\"" + telemetry::json_escape(reason) + '"';
  payload += ",\"deterministic\":";
  payload += config_.deterministic ? "true" : "false";
  payload += ",\"observed\":" + std::to_string(observed);
  payload += ",\"kept\":" + std::to_string(kept);
  payload += ",\"evicted\":" + std::to_string(evicted);
  payload += ",\"records\":[";
  for (std::size_t i = 0; i < records.size(); ++i) {
    if (i != 0) {
      payload += ',';
    }
    append_record_json(payload, records[i], config_.deterministic);
  }
  payload += "]}";

  char checksum[24];
  std::snprintf(checksum, sizeof(checksum), "%016" PRIx64,
                state::fnv1a64(payload));
  std::string out = "{\"schema\":\"trident-flight-v1\",\"checksum\":\"";
  out += checksum;
  out += "\",\"payload_bytes\":" + std::to_string(payload.size()) + "}\n";
  out += payload;
  out += '\n';
  return out;
}

void FlightRecorder::dump(const std::string& path,
                          std::string_view reason) const {
  state::atomic_write_file(path, render(reason));
  dumps_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry::enabled()) {
    flight_metrics().dumps.add(1);
  }
}

FlightDumpInfo FlightRecorder::verify(std::string_view bytes) {
  const std::size_t newline = bytes.find('\n');
  TRIDENT_REQUIRE(newline != std::string_view::npos,
                  "flight dump has no header line");
  const std::string_view header = bytes.substr(0, newline);
  TRIDENT_REQUIRE(header.find("\"schema\":\"trident-flight-v1\"") !=
                      std::string_view::npos,
                  "flight dump header missing schema marker");

  FlightDumpInfo info;
  constexpr std::string_view kChecksumKey = "\"checksum\":\"";
  const std::size_t cpos = header.find(kChecksumKey);
  TRIDENT_REQUIRE(cpos != std::string_view::npos,
                  "flight dump header missing checksum");
  const std::string_view hex =
      header.substr(cpos + kChecksumKey.size(), 16);
  TRIDENT_REQUIRE(hex.size() == 16, "flight dump checksum truncated");
  {
    const auto [ptr, ec] =
        std::from_chars(hex.data(), hex.data() + hex.size(), info.checksum, 16);
    TRIDENT_REQUIRE(ec == std::errc() && ptr == hex.data() + hex.size(),
                    "flight dump checksum is not 16 hex digits");
  }
  constexpr std::string_view kBytesKey = "\"payload_bytes\":";
  const std::size_t bpos = header.find(kBytesKey);
  TRIDENT_REQUIRE(bpos != std::string_view::npos,
                  "flight dump header missing payload_bytes");
  {
    const std::string_view tail = header.substr(bpos + kBytesKey.size());
    const auto [ptr, ec] = std::from_chars(
        tail.data(), tail.data() + tail.size(), info.payload_bytes);
    (void)ptr;
    TRIDENT_REQUIRE(ec == std::errc(), "flight dump payload_bytes malformed");
  }
  const std::string_view rest = bytes.substr(newline + 1);
  TRIDENT_REQUIRE(rest.size() >= info.payload_bytes,
                  "flight dump payload shorter than advertised");
  const std::string_view payload = rest.substr(0, info.payload_bytes);
  TRIDENT_REQUIRE(state::fnv1a64(payload) == info.checksum,
                  "flight dump checksum mismatch (corrupted file)");
  info.payload = std::string(payload);
  return info;
}

std::size_t FlightRecorder::size() const {
  std::lock_guard lock(mutex_);
  return ring_.size();
}

std::vector<FlightRecord> FlightRecorder::records() const {
  std::lock_guard lock(mutex_);
  return ring_;
}

std::uint64_t FlightRecorder::observed() const {
  std::lock_guard lock(mutex_);
  return observed_;
}

std::uint64_t FlightRecorder::kept() const {
  std::lock_guard lock(mutex_);
  return kept_;
}

std::uint64_t FlightRecorder::evicted() const {
  std::lock_guard lock(mutex_);
  return evicted_;
}

std::uint64_t FlightRecorder::dumps() const {
  return dumps_.load(std::memory_order_relaxed);
}

}  // namespace trident::serving
