#include "serving/server.hpp"

#include <algorithm>
#include <array>
#include <cmath>
#include <exception>
#include <optional>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "telemetry/exporters.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace trident::serving {

namespace {

[[nodiscard]] std::vector<double> batch_size_buckets() {
  return {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0};
}

struct ServerMetrics {
  telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::global();
  telemetry::Counter& completed =
      reg.counter("trident_serving_requests_completed_total",
                  "requests served to completion");
  telemetry::Counter& failed =
      reg.counter("trident_serving_requests_failed_total",
                  "requests answered with an explicit kFailed response");
  telemetry::Counter& retries =
      reg.counter("trident_serving_retries_total",
                  "requests requeued after a transient fault or replica death");
  telemetry::Counter& batches = reg.counter(
      "trident_serving_batches_total", "micro-batches cut and served");
  telemetry::Counter& slo_violations =
      reg.counter("trident_serving_slo_violations_total",
                  "responses slower than the configured sojourn SLO");
  telemetry::Counter& replica_deaths =
      reg.counter("trident_serving_replica_deaths_total",
                  "workers lost to a HardwareFailure");
  telemetry::Counter& replica_restarts =
      reg.counter("trident_serving_replica_restarts_total",
                  "supervisor restarts (new replica incarnations)");
  telemetry::Counter& stalls =
      reg.counter("trident_serving_replica_stalls_total",
                  "replicas flagged past the stall threshold");
  telemetry::Gauge& healthy =
      reg.gauge("trident_serving_replicas_healthy",
                "replicas currently idle or serving");
  telemetry::Histogram& queue_wait = reg.histogram(
      "trident_serving_queue_wait_seconds",
      telemetry::duration_buckets_seconds(), "admission to batch cut");
  telemetry::Histogram& batch_form = reg.histogram(
      "trident_serving_batch_form_seconds",
      telemetry::duration_buckets_seconds(),
      "batch-formation window: oldest member's admission to the cut");
  telemetry::Histogram& service = reg.histogram(
      "trident_serving_service_seconds",
      telemetry::duration_buckets_seconds(),
      "batched forward pass on the replica");
  telemetry::Histogram& sojourn = reg.histogram(
      "trident_serving_sojourn_seconds",
      telemetry::duration_buckets_seconds(),
      "admission to response ready (queue wait + service)");
  telemetry::Histogram& batch_size =
      reg.histogram("trident_serving_batch_size", batch_size_buckets(),
                    "requests per served micro-batch");
  telemetry::Gauge& p50 = reg.gauge("trident_serving_sojourn_p50_seconds",
                                    "exact median sojourn so far");
  telemetry::Gauge& p99 = reg.gauge("trident_serving_sojourn_p99_seconds",
                                    "exact p99 sojourn so far");
  telemetry::Counter& weight_swaps =
      reg.counter("trident_serving_weight_swaps_total",
                  "hot_swap weight publications");
  telemetry::Counter& swap_adoptions =
      reg.counter("trident_serving_weight_swap_adoptions_total",
                  "replica adoptions of published weights at batch bounds");
  telemetry::Histogram& swap_latency = reg.histogram(
      "trident_serving_weight_swap_latency_seconds",
      telemetry::duration_buckets_seconds(),
      "hot_swap publication to a replica's adoption");
  telemetry::Gauge& weights_version =
      reg.gauge("trident_serving_weights_version",
                "version of the most recently published weights");
  telemetry::Counter& snapshot_restores =
      reg.counter("trident_serving_snapshot_restores_total",
                  "replica restarts healed from the configured snapshot");
  telemetry::Counter& snapshot_restore_failures =
      reg.counter("trident_serving_snapshot_restore_failures_total",
                  "snapshot restores that fell back to published weights");
  // Tier dispatch: the two counters partition completed responses exactly
  // (quantized + exact == completed), which the metrics validator checks.
  telemetry::Counter& quantized_dispatch =
      reg.counter("trident_quantized_dispatch_total",
                  "responses served by the int8 quantized tier");
  telemetry::Counter& exact_dispatch =
      reg.counter("trident_exact_dispatch_total",
                  "responses served by the exact device-model tier");
  telemetry::Counter& fast_fallbacks =
      reg.counter("trident_serving_fast_fallbacks_total",
                  "kFast requests served exact (replica has no quantized "
                  "tier)");
  // Canary arm dispatch: the two counters partition completed responses
  // exactly (canary + incumbent == completed), mirroring the tier law.
  telemetry::Counter& canary_dispatch =
      reg.counter("trident_canary_dispatch_total",
                  "responses served by the candidate (canary) weights");
  telemetry::Counter& incumbent_dispatch =
      reg.counter("trident_incumbent_dispatch_total",
                  "responses served by the incumbent weights");
  telemetry::Counter& canary_starts =
      reg.counter("trident_serving_canary_starts_total",
                  "candidate weight sets published to the canary stage");
  telemetry::Counter& canary_promotes =
      reg.counter("trident_serving_canary_promotes_total",
                  "canaries promoted to incumbent via hot_swap");
  telemetry::Counter& canary_rollbacks =
      reg.counter("trident_serving_canary_rollbacks_total",
                  "canaries rolled back (candidate discarded)");
  telemetry::Gauge& canary_version =
      reg.gauge("trident_serving_canary_version",
                "live canary publication sequence (0 = none active)");
};

ServerMetrics& server_metrics() {
  static ServerMetrics m;
  return m;
}

[[nodiscard]] double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

[[nodiscard]] std::int64_t now_ns() {
  return std::chrono::duration_cast<std::chrono::nanoseconds>(
             Clock::now().time_since_epoch())
      .count();
}

[[nodiscard]] bool row_finite(std::span<const double> row) {
  for (double v : row) {
    if (!std::isfinite(v)) {
      return false;
    }
  }
  return true;
}

[[nodiscard]] std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

/// Canary arm selection: a pure function of (trace id, percent), so the
/// arm a request rides is fixed at admission — stable across retries and
/// replica hops, deterministic under a fixed submission order, and
/// greppable from any trace or flight dump by the same arithmetic.
[[nodiscard]] bool route_to_canary(std::uint64_t trace_id,
                                   std::uint32_t percent) {
  if (percent == 0) {
    return false;
  }
  if (percent >= 100) {
    return true;
  }
  return splitmix64(trace_id) % 100 < percent;
}

}  // namespace

Server::Server(const nn::Mlp& model, const ServerConfig& config)
    : config_(config),
      model_(model),
      input_dim_(model.layer_sizes().front()),
      queue_(config.admission) {
  TRIDENT_REQUIRE(config.replicas >= 1, "need at least one replica");
  TRIDENT_REQUIRE(config.max_batch >= 1, "max_batch must be positive");
  TRIDENT_REQUIRE(config.max_wait.count() >= 0,
                  "max_wait must be non-negative");
  TRIDENT_REQUIRE(config.slo_target_s >= 0.0,
                  "slo_target_s must be non-negative");
  TRIDENT_REQUIRE(config.max_attempts >= 1,
                  "max_attempts must be at least one");
  TRIDENT_REQUIRE(config.max_restarts >= 0,
                  "max_restarts must be non-negative");
  // Version 0 = the init model; hot_swap bumps from here.  Publishing it
  // up front means restarts and adoption checks never see a null pointer.
  // The plan rides every publication: a shared one when the caller
  // pre-compiled (fleet), compiled here otherwise.
  std::shared_ptr<const nn::ExecutionPlan> plan;
  if (config_.use_plan) {
    if (config_.initial_plan != nullptr) {
      TRIDENT_REQUIRE(config_.initial_plan->matches(model),
                      "initial_plan does not match the serving model");
      TRIDENT_REQUIRE(config_.initial_plan->config().weight_bits ==
                          plan_config().weight_bits,
                      "initial_plan weight grid does not match the server");
      plan = config_.initial_plan;
    } else {
      plan = compile_plan(model);
    }
  }
  published_ = std::make_shared<const PublishedModel>(
      PublishedModel{0, model, now_ns(), plan});
  if (config_.flight.enabled) {
    flight_ = std::make_unique<FlightRecorder>(config_.flight);
  }
  replicas_.reserve(static_cast<std::size_t>(config.replicas));
  for (int r = 0; r < config.replicas; ++r) {
    auto replica = std::make_unique<Replica>(r, model);
    replica->backend = make_backend(r, 0);
    replica->plan = plan;
    replicas_.push_back(std::move(replica));
  }
  for (auto& replica : replicas_) {
    start_worker(*replica);
  }
  supervisor_ = std::thread([this] { supervisor_loop(); });
  if (telemetry::enabled()) {
    server_metrics().healthy.set(static_cast<double>(config.replicas));
  }
}

Server::~Server() { drain(); }

ReplicaBackend Server::make_backend(int replica, int incarnation) const {
  core::PhotonicBackendConfig backend_cfg = config_.backend;
  // Independent noise stream per (replica, incarnation): counter-based
  // split, the same idiom the Monte-Carlo sweeps use.  A restarted
  // replica never replays its predecessor's stream.
  backend_cfg.seed = Rng(config_.backend.seed)
                         .split(static_cast<std::uint64_t>(replica))
                         .split(static_cast<std::uint64_t>(incarnation))
                         .seed();
  if (config_.backend_factory) {
    return config_.backend_factory(replica, incarnation, backend_cfg);
  }
  auto backend = std::make_unique<core::PhotonicBackend>(backend_cfg);
  core::PhotonicBackend* raw = backend.get();
  ReplicaBackend rb;
  rb.backend = std::move(backend);
  rb.ledger = [raw] { return raw->ledger(); };
  if (config_.enable_fast_tier) {
    // The quantized tier is deterministic, so unlike the exact backend it
    // needs no per-incarnation seed split; its level-read bill flows into
    // the same aggregate ledger through fast_ledger.
    auto fast = std::make_unique<core::QuantizedBackend>(config_.fast_backend);
    core::QuantizedBackend* fast_raw = fast.get();
    rb.fast = std::move(fast);
    rb.fast_ledger = [fast_raw] { return fast_raw->ledger(); };
  }
  return rb;
}

void Server::start_worker(Replica& replica) {
  heartbeat(replica);
  replica.state.store(ReplicaState::kIdle, std::memory_order_release);
  replica.worker = std::thread([this, rep = &replica] { worker_loop(*rep); });
}

std::optional<std::future<Response>> Server::submit(nn::Vector input,
                                                    ServingTier tier) {
  SubmitOptions options;
  options.tier = tier;
  return submit(std::move(input), options);
}

std::optional<std::future<Response>> Server::submit(nn::Vector input,
                                                    Clock::time_point deadline,
                                                    ServingTier tier) {
  SubmitOptions options;
  options.deadline = deadline;
  options.tier = tier;
  return submit(std::move(input), options);
}

std::optional<std::future<Response>> Server::submit(
    nn::Vector input, const SubmitOptions& options) {
  const Clock::time_point deadline = options.deadline;
  const ServingTier tier = options.tier;
  TRIDENT_REQUIRE(static_cast<int>(input.size()) == input_dim_,
                  "input width " + std::to_string(input.size()) +
                      " does not match the model input " +
                      std::to_string(input_dim_));
  const std::uint64_t index =
      submitted_.fetch_add(1, std::memory_order_relaxed);
  if (config_.admission_blip && config_.admission_blip(index)) {
    blip_shed_.fetch_add(1, std::memory_order_relaxed);
    flight_observe_shed(next_id_.fetch_add(1, std::memory_order_relaxed),
                        tier);
    return std::nullopt;
  }
  Request request;
  request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  request.input = std::move(input);
  request.tier = tier;
  request.tenant_key = options.tenant_key;
  // Trace identity is minted here, at admission — id + 1, so trace id 0
  // keeps meaning "untraced" and a fixed submission order reproduces the
  // same trace ids (what makes flight-recorder dumps seed-deterministic).
  request.trace.trace_id = request.id + 1;
  if (deadline != Clock::time_point{}) {
    request.deadline = deadline;
    if (deadline <= Clock::now()) {
      // Already hopeless at admission: the SLO is blown before any queueing
      // or service happened.  Count it here, once.
      request.deadline_violation_counted = true;
      slo_violations_.fetch_add(1, std::memory_order_relaxed);
      if (telemetry::enabled()) {
        server_metrics().slo_violations.add(1);
      }
    }
  }
  std::future<Response> future = request.promise.get_future();
  const std::uint64_t shed_id = request.id;
  if (queue_.push(request) != AdmitResult::kAccepted) {
    flight_observe_shed(shed_id, tier);
    return std::nullopt;
  }
  return future;
}

void Server::flight_observe_shed(std::uint64_t id, ServingTier tier) {
  if (!flight_) {
    return;
  }
  FlightRecord rec;
  rec.trace_id = id + 1;
  rec.request_id = id;
  rec.outcome = "shed";
  rec.tier = tier;
  rec.attempts = 0;
  flight_->observe(std::move(rec));
}

void Server::flight_autodump(std::string_view reason) {
  if (!flight_ || config_.flight.dump_path.empty()) {
    return;
  }
  try {
    flight_->dump(config_.flight.dump_path, reason);
  } catch (const std::exception&) {
    // A postmortem must never take the serving runtime down with it; a
    // failed dump (unwritable path) leaves the previous artifact intact.
  }
}

void Server::heartbeat(Replica& replica) const {
  replica.heartbeat_ns.store(now_ns(), std::memory_order_relaxed);
}

void Server::worker_loop(Replica& replica) {
  for (;;) {
    replica.state.store(ReplicaState::kIdle, std::memory_order_release);
    heartbeat(replica);
    std::vector<Request> batch =
        queue_.pop_batch(config_.max_batch, config_.max_wait);
    if (batch.empty()) {
      return;  // queue closed and drained
    }
    // Batch boundary: the only place weights may change, so no request in
    // the batch about to be served can observe a torn or mid-swap model.
    maybe_adopt_weights(replica);
    replica.state.store(ReplicaState::kServing, std::memory_order_release);
    heartbeat(replica);
    const bool alive = serve_batch(replica, batch);
    heartbeat(replica);
    replica.stall_flagged.store(false, std::memory_order_relaxed);
    if (!alive) {
      // Hardware gone: hand the replica to the supervisor and exit.
      replica.state.store(ReplicaState::kDead, std::memory_order_release);
      deaths_.fetch_add(1, std::memory_order_relaxed);
      if (telemetry::enabled()) {
        server_metrics().replica_deaths.add(1);
      }
      death_pending_.store(true, std::memory_order_release);
      supervisor_cv_.notify_all();
      return;
    }
  }
}

bool Server::serve_batch(Replica& replica, std::vector<Request>& batch) {
  const Clock::time_point formed = Clock::now();
  const std::size_t n = batch.size();
  batches_.fetch_add(1, std::memory_order_relaxed);
  replica.batches.fetch_add(1, std::memory_order_relaxed);

  const bool telem = telemetry::enabled();
  if (telem) {
    ServerMetrics& m = server_metrics();
    m.batches.add(1);
    m.batch_size.observe(static_cast<double>(n));
    Clock::time_point oldest = batch.front().admitted;
    for (const Request& r : batch) {
      oldest = std::min(oldest, r.admitted);
      m.queue_wait.observe(seconds_between(r.admitted, formed));
    }
    m.batch_form.observe(seconds_between(oldest, formed));
  }
  for (const Request& r : batch) {
    queue_wait_.record(seconds_between(r.admitted, formed));
  }

  // (Tier × arm) split: a batch may mix fast and exact requests, and — when
  // a canary this replica has adopted is live — incumbent- and
  // canary-routed ones.  Each combination runs as one forward pass with the
  // right weights on the right backend, so no request can ever see a torn
  // mix of the two weight sets.  kFast degrades to exact — counted, and
  // visible in the response — when the replica has no quantized tier.
  const bool canary_live =
      replica.canary_seen != 0 && replica.canary_model.has_value();
  const std::uint32_t percent = canary_live ? replica.canary_percent : 0;
  struct Group {
    std::vector<Request> requests;
    ServingTier tier = ServingTier::kExact;
    bool canary = false;
  };
  std::array<Group, 4> groups;  // [exact/inc, exact/can, fast/inc, fast/can]
  groups[1].canary = true;
  groups[2].tier = ServingTier::kFast;
  groups[3].tier = ServingTier::kFast;
  groups[3].canary = true;
  for (Request& r : batch) {
    const bool fast = r.tier == ServingTier::kFast &&
                      replica.backend.fast != nullptr;
    if (r.tier == ServingTier::kFast && !fast) {
      fast_fallbacks_.fetch_add(1, std::memory_order_relaxed);
      if (telem) {
        server_metrics().fast_fallbacks.add(1);
      }
    }
    const bool canary = canary_live && route_to_canary(r.trace.trace_id,
                                                       percent);
    groups[(fast ? 2u : 0u) + (canary ? 1u : 0u)].requests.push_back(
        std::move(r));
  }
  batch.clear();

  const int incarnation = replica.incarnation.load(std::memory_order_relaxed);
  for (std::size_t g = 0; g < groups.size(); ++g) {
    Group& group = groups[g];
    if (group.requests.empty()) {
      continue;
    }
    const nn::Mlp& model =
        group.canary ? *replica.canary_model : replica.model;
    nn::MatvecBackend& backend = group.tier == ServingTier::kFast
                                     ? *replica.backend.fast
                                     : *replica.backend.backend;
    // The plan travels with the weights it was compiled from: a canary group
    // runs the canary's plan, never the incumbent's, and a null plan (plan
    // serving off, or a snapshot-restored replica whose weights predate the
    // published plan) falls back to the per-op path.
    const nn::ExecutionPlan* plan =
        group.canary ? replica.canary_plan.get() : replica.plan.get();
    const std::uint64_t version =
        group.canary ? replica.canary_seen : replica.weights_seen;
    if (!serve_group(replica, group.requests, model, plan, backend, group.tier,
                     group.canary, version, formed, n)) {
      // Hardware died under this pass: the rest of the batch has nowhere
      // to run on this replica either — requeue it alongside.
      for (std::size_t rest = g + 1; rest < groups.size(); ++rest) {
        for (Request& r : groups[rest].requests) {
          retry_or_fail(std::move(r),
                        "replica " + std::to_string(replica.index) +
                            " died before this share of its batch",
                        replica.index, incarnation);
        }
      }
      return false;
    }
  }
  return true;
}

bool Server::serve_group(Replica& replica, std::vector<Request>& group,
                         const nn::Mlp& model, const nn::ExecutionPlan* plan,
                         nn::MatvecBackend& backend, ServingTier served,
                         bool canary_arm, std::uint64_t served_version,
                         Clock::time_point formed, std::size_t cut_size) {
  const std::size_t n = group.size();
  const bool telem = telemetry::enabled();
  const int incarnation = replica.incarnation.load(std::memory_order_relaxed);
  try {
    nn::Matrix x(n, static_cast<std::size_t>(input_dim_));
    for (std::size_t b = 0; b < n; ++b) {
      auto row = x.row(b);
      std::copy(group[b].input.begin(), group[b].input.end(), row.begin());
    }

    // The batch span adopts the head request's trace (a batch serves many
    // traces; the head names the tree it renders under), and the TraceScope
    // makes every span built inside forward_batch — per-layer nn spans,
    // GEMM dispatch — a child of this batch span with zero changes at
    // those sites.
    std::optional<telemetry::Span> span;
    std::optional<telemetry::TraceScope> scope;
    telemetry::TraceContext batch_ctx;
    if (telem) {
      span.emplace("serving/batch" + std::to_string(n) + "/replica" +
                       std::to_string(replica.index) +
                       (served == ServingTier::kFast ? "/fast" : ""),
                   "serving", group.front().trace,
                   "\"replica\":" + std::to_string(replica.index) +
                       ",\"incarnation\":" + std::to_string(incarnation) +
                       ",\"batch\":" + std::to_string(n) + ",\"tier\":\"" +
                       (served == ServingTier::kFast ? "fast" : "exact") +
                       "\"");
      batch_ctx = span->context();
      scope.emplace(batch_ctx);
    }
    nn::BatchForwardTrace trace;
    const nn::Matrix* logits = nullptr;
    const Clock::time_point start = Clock::now();
    if (plan != nullptr) {
      logits = &plan->run(backend, x, replica.arena);
    } else {
      trace = model.forward_batch(x, backend);
      logits = &trace.activations.back();
    }
    const Clock::time_point done = Clock::now();
    scope.reset();
    span.reset();

    const double service_s = seconds_between(start, done);
    for (std::size_t b = 0; b < n; ++b) {
      if (!row_finite(logits->row(b))) {
        // Silent-corruption scrub: a non-finite row never reaches the
        // caller; the request goes back for another attempt.
        retry_or_fail(std::move(group[b]),
                      "non-finite output from replica " +
                          std::to_string(replica.index),
                      replica.index, incarnation);
        continue;
      }
      Response response;
      response.id = group[b].id;
      response.trace_id = group[b].trace.trace_id;
      response.tenant_key = group[b].tenant_key;
      const auto row = logits->row(b);
      response.output.assign(row.begin(), row.end());
      response.batch_size = cut_size;
      response.replica = replica.index;
      response.attempts = group[b].attempts + 1;
      response.tier = served;
      response.weights_version = served_version;
      response.canary = canary_arm;
      response.timing.queue_wait_s = seconds_between(group[b].admitted, formed);
      response.timing.service_s = service_s;
      response.timing.sojourn_s = seconds_between(group[b].admitted, done);

      service_.record(service_s);
      sojourn_.record(response.timing.sojourn_s);
      bool violated = config_.slo_target_s > 0.0 &&
                      response.timing.sojourn_s > config_.slo_target_s;
      if (group[b].deadline.has_value()) {
        response.deadline_missed = group[b].deadline_violation_counted ||
                                   done > *group[b].deadline;
        // A miss already billed at admission is not billed again.
        if (response.deadline_missed && !group[b].deadline_violation_counted) {
          violated = true;
        }
      }
      if (violated) {
        slo_violations_.fetch_add(1, std::memory_order_relaxed);
      }
      completed_.fetch_add(1, std::memory_order_relaxed);
      // Dispatch accounting at fulfil time, so the two tier counters
      // partition completed responses exactly.
      if (served == ServingTier::kFast) {
        quantized_dispatches_.fetch_add(1, std::memory_order_relaxed);
      } else {
        exact_dispatches_.fetch_add(1, std::memory_order_relaxed);
      }
      // The arm counters partition completed responses exactly the same
      // way the tier counters do — canary + incumbent == completed is a
      // checked invariant.
      if (canary_arm) {
        canary_dispatches_.fetch_add(1, std::memory_order_relaxed);
      } else {
        incumbent_dispatches_.fetch_add(1, std::memory_order_relaxed);
      }
      if (telem) {
        ServerMetrics& m = server_metrics();
        m.service.observe(service_s);
        m.sojourn.observe(response.timing.sojourn_s);
        m.completed.add(1);
        if (served == ServingTier::kFast) {
          m.quantized_dispatch.add(1);
        } else {
          m.exact_dispatch.add(1);
        }
        if (canary_arm) {
          m.canary_dispatch.add(1);
        } else {
          m.incumbent_dispatch.add(1);
        }
        if (violated) {
          m.slo_violations.add(1);
        }
        // Retro-dated per-request phases with the request's OWN trace id
        // (the batch span carries the head's): queue wait measured from
        // admission to the batch cut, then the service attempt.  Together
        // with the retry events these render one request as a single
        // causal tree in Perfetto.
        telemetry::TraceBuffer& tb = telemetry::TraceBuffer::global();
        telemetry::TraceEvent qe;
        qe.name = "request/queue_wait";
        qe.category = "serving";
        qe.ts_us = tb.to_us(group[b].admitted);
        qe.dur_us = response.timing.queue_wait_s * 1e6;
        qe.trace_id = group[b].trace.trace_id;
        qe.args = "\"id\":" + std::to_string(group[b].id) +
                  ",\"attempt\":" + std::to_string(response.attempts);
        tb.record(std::move(qe));
        telemetry::TraceEvent se;
        se.name = "request/serve";
        se.category = "serving";
        se.ts_us = tb.to_us(start);
        se.dur_us = service_s * 1e6;
        se.trace_id = group[b].trace.trace_id;
        se.parent_id = batch_ctx.trace_id == group[b].trace.trace_id
                           ? batch_ctx.span_id
                           : 0;
        se.args = "\"id\":" + std::to_string(group[b].id) +
                  ",\"replica\":" + std::to_string(replica.index) +
                  ",\"incarnation\":" + std::to_string(incarnation) +
                  ",\"attempt\":" + std::to_string(response.attempts) +
                  ",\"tier\":\"" +
                  (served == ServingTier::kFast ? "fast" : "exact") + "\"";
        tb.record(std::move(se));
      }
      if (flight_) {
        FlightRecord rec;
        rec.trace_id = group[b].trace.trace_id;
        rec.request_id = group[b].id;
        rec.outcome = "ok";
        rec.tier = served;
        rec.tier_fallback =
            group[b].tier == ServingTier::kFast && served == ServingTier::kExact;
        rec.attempts = response.attempts;
        rec.replica = replica.index;
        rec.incarnation = incarnation;
        rec.batch_size = cut_size;
        rec.slo_violated =
            violated || group[b].deadline_violation_counted;
        rec.deadline_missed = response.deadline_missed;
        rec.attempt_log = std::move(group[b].attempt_log);
        rec.timing = response.timing;
        flight_->observe(std::move(rec));
      }
      if (config_.on_response) {
        config_.on_response(response);
      }
      group[b].promise.set_value(std::move(response));
    }
    return true;
  } catch (const HardwareFailure& hf) {
    // The replica is gone.  Its batch is not at fault per se, but each
    // member still burns one attempt — a request that keeps landing on
    // dying hardware must eventually resolve.
    for (Request& r : group) {
      retry_or_fail(std::move(r), hf.what(), replica.index, incarnation);
    }
    return false;
  } catch (const std::exception& e) {
    for (Request& r : group) {
      retry_or_fail(std::move(r), e.what(), replica.index, incarnation);
    }
    return true;
  } catch (...) {
    for (Request& r : group) {
      retry_or_fail(std::move(r), "unknown error", replica.index, incarnation);
    }
    return true;
  }
}

void Server::retry_or_fail(Request&& r, const std::string& why, int replica,
                           int incarnation) {
  ++r.attempts;
  // The spent attempt joins the request's history either way: a kFailed
  // response and a flight record both carry the full cross-incarnation
  // hop list.
  r.attempt_log.push_back(AttemptNote{replica, incarnation, why});
  if (r.attempts >= config_.max_attempts) {
    fail_request(std::move(r), why);
    return;
  }
  retries_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry::enabled()) {
    server_metrics().retries.add(1);
    // The retry edge: an instant-like event on the request's trace naming
    // the attempt that failed and where it failed.
    telemetry::TraceBuffer& tb = telemetry::TraceBuffer::global();
    telemetry::TraceEvent ev;
    ev.name = "request/retry";
    ev.category = "serving";
    ev.ts_us = tb.now_us();
    ev.dur_us = 0.0;
    ev.trace_id = r.trace.trace_id;
    ev.args = "\"id\":" + std::to_string(r.id) +
              ",\"attempt\":" + std::to_string(r.attempts) +
              ",\"replica\":" + std::to_string(replica) +
              ",\"incarnation\":" + std::to_string(incarnation) +
              ",\"error\":\"" + telemetry::json_escape(why) + "\"";
    tb.record(std::move(ev));
  }
  queue_.requeue(std::move(r));
}

void Server::fail_request(Request&& r, const std::string& why) {
  const Clock::time_point now = Clock::now();
  Response response;
  response.id = r.id;
  response.trace_id = r.trace.trace_id;
  response.tenant_key = r.tenant_key;
  response.status = ResponseStatus::kFailed;
  response.attempts = r.attempts;
  response.error = why;
  response.timing.sojourn_s = seconds_between(r.admitted, now);
  if (r.deadline.has_value()) {
    response.deadline_missed = now > *r.deadline;
  }
  failed_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry::enabled()) {
    server_metrics().failed.add(1);
  }
  if (flight_) {
    FlightRecord rec;
    rec.trace_id = r.trace.trace_id;
    rec.request_id = r.id;
    rec.outcome = "failed";
    rec.tier = r.tier;
    rec.attempts = r.attempts;
    rec.deadline_missed = response.deadline_missed;
    rec.attempt_log = std::move(r.attempt_log);
    rec.timing = response.timing;
    flight_->observe(std::move(rec));
  }
  if (config_.on_response) {
    config_.on_response(response);
  }
  r.promise.set_value(std::move(response));
}

void Server::supervisor_loop() {
  std::unique_lock lock(supervisor_mutex_);
  for (;;) {
    supervisor_cv_.wait_for(lock, config_.supervision_interval, [&] {
      return supervisor_stop_.load(std::memory_order_acquire) ||
             death_pending_.load(std::memory_order_acquire);
    });
    if (supervisor_stop_.load(std::memory_order_acquire)) {
      return;
    }
    death_pending_.store(false, std::memory_order_release);
    // Restart scan.  Safe without extra locking: only the supervisor
    // touches a dead replica's thread/model/backend, and the worker that
    // set kDead has already returned (join() below synchronises with it).
    std::size_t healthy = 0;
    for (auto& replica : replicas_) {
      const ReplicaState state =
          replica->state.load(std::memory_order_acquire);
      if (state == ReplicaState::kDead) {
        // Postmortem first: the dump captures the ring as the death left
        // it, before the restarted incarnation's traffic dilutes it.
        flight_autodump("replica_death");
        if (config_.restart_dead_replicas && !queue_.closed() &&
            replica->incarnation.load(std::memory_order_relaxed) <
                config_.max_restarts) {
          restart_replica(*replica);
          ++healthy;
        } else {
          if (replica->worker.joinable()) {
            replica->worker.join();
          }
          replica->state.store(ReplicaState::kRetired,
                               std::memory_order_release);
        }
        continue;
      }
      if (state == ReplicaState::kIdle || state == ReplicaState::kServing) {
        ++healthy;
        // Stall detection: only a replica actively serving can be stuck;
        // an idle one parks in pop_batch legitimately.
        if (state == ReplicaState::kServing) {
          const double age_s =
              static_cast<double>(
                  now_ns() -
                  replica->heartbeat_ns.load(std::memory_order_relaxed)) *
              1e-9;
          const double threshold_s =
              std::chrono::duration<double>(config_.stall_threshold).count();
          if (age_s > threshold_s &&
              !replica->stall_flagged.exchange(true,
                                               std::memory_order_relaxed)) {
            stalls_.fetch_add(1, std::memory_order_relaxed);
            if (telemetry::enabled()) {
              server_metrics().stalls.add(1);
            }
          }
        }
      }
    }
    if (telemetry::enabled()) {
      server_metrics().healthy.set(static_cast<double>(healthy));
    }
  }
}

void Server::hot_swap(const nn::Mlp& model) {
  TRIDENT_REQUIRE(model.layer_sizes() == model_.layer_sizes(),
                  "hot_swap model architecture does not match the server");
  TRIDENT_REQUIRE(model.hidden_activation() == model_.hidden_activation(),
                  "hot_swap model activation does not match the server");
  // Compile before taking swap_mutex_: the plan build walks every weight
  // panel, and serving workers block on this mutex at batch boundaries.
  publish_incumbent(model, compile_plan(model));
}

std::shared_ptr<const nn::ExecutionPlan> Server::compile_plan(
    const nn::Mlp& model) const {
  if (!config_.use_plan) {
    return nullptr;
  }
  return nn::ExecutionPlan::compile(model, plan_config());
}

std::shared_ptr<const nn::ExecutionPlan> Server::published_plan() const {
  std::lock_guard lock(swap_mutex_);
  return published_->plan;
}

void Server::publish_incumbent(const nn::Mlp& model,
                               std::shared_ptr<const nn::ExecutionPlan> plan) {
  {
    std::lock_guard lock(swap_mutex_);
    const std::uint64_t version = published_->version + 1;
    published_ = std::make_shared<const PublishedModel>(
        PublishedModel{version, model, now_ns(), std::move(plan)});
    // Release so a worker's acquire-load of the version observes the
    // pointer published above (the mutex alone would do; the atomic is the
    // lock-free fast path).
    weights_version_.store(version, std::memory_order_release);
  }
  swaps_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry::enabled()) {
    ServerMetrics& m = server_metrics();
    m.weight_swaps.add(1);
    m.weights_version.set(
        static_cast<double>(weights_version_.load(std::memory_order_relaxed)));
  }
  // Note: model_ (the restart fallback of last resort) is deliberately NOT
  // touched — the supervisor may be cloning it right now.  Restarts read
  // published_ / the snapshot instead, so they never serve stale weights.
}

std::uint64_t Server::canary_start(const nn::Mlp& candidate,
                                   std::uint32_t traffic_percent) {
  return canary_start(candidate, traffic_percent, nullptr);
}

std::uint64_t Server::canary_start(
    const nn::Mlp& candidate, std::uint32_t traffic_percent,
    std::shared_ptr<const nn::ExecutionPlan> plan) {
  TRIDENT_REQUIRE(candidate.layer_sizes() == model_.layer_sizes(),
                  "canary model architecture does not match the server");
  TRIDENT_REQUIRE(candidate.hidden_activation() == model_.hidden_activation(),
                  "canary model activation does not match the server");
  if (plan != nullptr) {
    TRIDENT_REQUIRE(plan->matches(candidate),
                    "canary plan does not match the candidate model");
    TRIDENT_REQUIRE(plan->config().weight_bits == plan_config().weight_bits,
                    "canary plan weight grid does not match the server");
  } else {
    plan = compile_plan(candidate);
  }
  const std::uint32_t percent = std::min<std::uint32_t>(traffic_percent, 100);
  std::uint64_t seq = 0;
  {
    std::lock_guard lock(swap_mutex_);
    if (canary_published_ != nullptr) {
      // One canary at a time: overlapping candidates would make the
      // per-version response stamp ambiguous.  The caller must resolve the
      // live one (canary_end) before publishing another.
      return 0;
    }
    seq = ++canary_seq_;
    canary_published_ = std::make_shared<const PublishedModel>(
        PublishedModel{seq, candidate, now_ns(), std::move(plan)});
    canary_percent_.store(percent, std::memory_order_relaxed);
    // Release pairs with the workers' acquire in maybe_adopt_weights: a
    // worker that observes the sequence also observes the pointer above.
    canary_version_.store(seq, std::memory_order_release);
  }
  canary_starts_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry::enabled()) {
    ServerMetrics& m = server_metrics();
    m.canary_starts.add(1);
    m.canary_version.set(static_cast<double>(seq));
  }
  return seq;
}

bool Server::canary_end(bool promote) {
  std::shared_ptr<const PublishedModel> candidate;
  {
    std::lock_guard lock(swap_mutex_);
    if (canary_published_ == nullptr) {
      return false;
    }
    candidate = std::move(canary_published_);
    canary_published_.reset();
    canary_percent_.store(0, std::memory_order_relaxed);
    // Workers observing 0 clear their canary arm at the next batch
    // boundary; in-flight batches finish on whichever weights they started
    // with — still one definite version per response.
    canary_version_.store(0, std::memory_order_release);
  }
  if (promote) {
    // Outside the lock: publish_incumbent takes swap_mutex_ itself.
    // Promotion IS a hot_swap, so it inherits the never-torn publication
    // guarantee and bills re-programming through each replica's ledger on
    // adoption.  The candidate's plan is REUSED, not recompiled: the exact
    // object the canary arm was serving becomes the incumbent's, so the
    // promote path never pays a compile and the plan id is stable across
    // the promotion.
    publish_incumbent(candidate->model, candidate->plan);
    canary_promotes_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::enabled()) {
      server_metrics().canary_promotes.add(1);
    }
  } else {
    // Rollback is pure bookkeeping: the incumbent was never displaced, so
    // restoring it is a no-op by construction.
    canary_rollbacks_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::enabled()) {
      server_metrics().canary_rollbacks.add(1);
    }
  }
  if (telemetry::enabled()) {
    server_metrics().canary_version.set(0.0);
  }
  return true;
}

void Server::maybe_adopt_weights(Replica& replica) {
  // Fast path: two acquire-loads; nothing to do while neither the
  // incumbent publication nor the canary stage moved.
  if (weights_version_.load(std::memory_order_acquire) ==
          replica.weights_seen &&
      canary_version_.load(std::memory_order_acquire) == replica.canary_seen) {
    return;
  }
  std::shared_ptr<const PublishedModel> published;
  std::shared_ptr<const PublishedModel> canary;
  std::uint32_t percent = 0;
  {
    std::lock_guard lock(swap_mutex_);
    published = published_;
    canary = canary_published_;
    percent = canary_percent_.load(std::memory_order_relaxed);
  }
  if (published->version != replica.weights_seen) {
    // Copy outside the lock: the publication is immutable, only the worker
    // touches replica.model, and the fresh Matrix addresses make the next
    // forward's ensure_programmed() re-program the GST bank — billing the
    // swap's write pulses through this replica's existing ledger.
    replica.model = published->model;
    replica.plan = published->plan;
    replica.weights_seen = published->version;
    adoptions_.fetch_add(1, std::memory_order_relaxed);
    if (telemetry::enabled()) {
      ServerMetrics& m = server_metrics();
      m.swap_adoptions.add(1);
      m.swap_latency.observe(
          static_cast<double>(now_ns() - published->published_ns) * 1e-9);
    }
  }
  // Canary adoption/clearing happens at the same batch boundary, so a
  // worker can never serve half a batch on one candidate and half on
  // another: the (model, percent, sequence) triple changes only here.
  const std::uint64_t canary_version = canary ? canary->version : 0;
  if (canary_version != replica.canary_seen) {
    if (canary) {
      replica.canary_model = canary->model;
      replica.canary_plan = canary->plan;
      replica.canary_percent = percent;
    } else {
      replica.canary_model.reset();
      replica.canary_plan.reset();
      replica.canary_percent = 0;
    }
    replica.canary_seen = canary_version;
  }
}

nn::Mlp Server::restore_model_for_restart(
    std::uint64_t& seen_version,
    std::shared_ptr<const nn::ExecutionPlan>& plan) {
  std::shared_ptr<const PublishedModel> published;
  {
    std::lock_guard lock(swap_mutex_);
    published = published_;
  }
  seen_version = published->version;
  plan = published->plan;
  if (!config_.snapshot_path.empty()) {
    try {
      const state::Snapshot snap = state::Snapshot::load(config_.snapshot_path);
      nn::Mlp restored = state::restore_model(snap.model);
      TRIDENT_REQUIRE(restored.layer_sizes() == model_.layer_sizes(),
                      "snapshot model architecture does not match the server");
      snapshot_restores_.fetch_add(1, std::memory_order_relaxed);
      if (telemetry::enabled()) {
        server_metrics().snapshot_restores.add(1);
      }
      // Snapshot weights are whatever the snapshot holds — generally NOT
      // the published weights the plan was compiled from — so this
      // incarnation serves per-op until its next adoption re-pairs a
      // published (model, plan).
      plan = nullptr;
      return restored;
    } catch (const std::exception&) {
      // Missing/corrupt snapshot: degrade to the published weights rather
      // than refuse to heal — availability first, and the counter makes
      // the degradation observable.
      snapshot_restore_failures_.fetch_add(1, std::memory_order_relaxed);
      if (telemetry::enabled()) {
        server_metrics().snapshot_restore_failures.add(1);
      }
    }
  }
  return published->model;
}

void Server::restart_replica(Replica& replica) {
  if (replica.worker.joinable()) {
    replica.worker.join();
  }
  // Fold the dead incarnation's hardware bill in before the backend is
  // replaced, so drain-time aggregation stays exact.  The snapshot's own
  // ledger (if any) is deliberately NOT folded in: those pulses belong to
  // the process that wrote the snapshot, and the dead incarnation's pulses
  // were just captured above — folding both would double-count.
  if (replica.backend.ledger || replica.backend.fast_ledger) {
    std::lock_guard ledger_lock(ledger_mutex_);
    if (replica.backend.ledger) {
      retired_ledger_ = retired_ledger_ + replica.backend.ledger();
    }
    if (replica.backend.fast_ledger) {
      retired_ledger_ = retired_ledger_ + replica.backend.fast_ledger();
    }
  }
  const int incarnation =
      replica.incarnation.fetch_add(1, std::memory_order_relaxed) + 1;
  // Heal with the non-volatile state, not the init seed: prefer the
  // configured snapshot, fall back to the latest hot-swapped weights.
  // weights_seen is pinned to the published version read at restore time
  // so the new incarnation is not immediately clobbered by a stale
  // publication, yet still adopts any later hot_swap.  Fresh RNG split
  // per incarnation, as before.
  std::uint64_t seen = 0;
  std::shared_ptr<const nn::ExecutionPlan> restored_plan;
  replica.model = restore_model_for_restart(seen, restored_plan);
  replica.plan = std::move(restored_plan);
  replica.weights_seen = seen;
  // Canary state is NOT carried across the death: the fresh incarnation
  // re-adopts any still-live canary at its first batch boundary, so a
  // node killed mid-canary heals onto the current stage, not a stale one.
  replica.canary_model.reset();
  replica.canary_plan.reset();
  replica.canary_seen = 0;
  replica.canary_percent = 0;
  replica.backend = make_backend(replica.index, incarnation);
  restarts_.fetch_add(1, std::memory_order_relaxed);
  if (telemetry::enabled()) {
    server_metrics().replica_restarts.add(1);
  }
  start_worker(replica);
}

void Server::fail_leftovers() {
  for (;;) {
    std::vector<Request> leftovers =
        queue_.pop_batch(config_.max_batch, std::chrono::microseconds(0));
    if (leftovers.empty()) {
      return;
    }
    for (Request& r : leftovers) {
      // Not a retry: there is nowhere left to retry to.
      fail_request(std::move(r), "no replica available (all workers dead)");
    }
  }
}

void Server::drain() {
  std::lock_guard lock(drain_mutex_);
  if (drained_) {
    return;
  }
  queue_.close();
  // Stop the supervisor first: afterwards nobody else touches the worker
  // thread handles, so the joins below are race-free.  Replicas that die
  // during the drain stay dead (the closed queue disables restarts);
  // survivors finish the backlog.
  supervisor_stop_.store(true, std::memory_order_release);
  supervisor_cv_.notify_all();
  if (supervisor_.joinable()) {
    supervisor_.join();
  }
  for (auto& replica : replicas_) {
    if (replica->worker.joinable()) {
      replica->worker.join();
    }
  }
  // If every replica died mid-drain the queue may still hold accepted
  // requests; answer them explicitly so conservation holds.
  fail_leftovers();
  drained_ = true;
  publish_slo_gauges(sojourn_.summary());
  // Exit dump: the black box survives the process.
  flight_autodump("exit");
}

ServerStats Server::retire() {
  drain();
  // After drain() the books are final: admission is closed, every accepted
  // request has a terminal response, and stats() folds the retired ledgers
  // with the (now quiescent) live replica ledgers.
  return stats();
}

ServerStats Server::stats() const {
  ServerStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.accepted = queue_.accepted();
  s.shed = queue_.shed() + blip_shed_.load(std::memory_order_relaxed);
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.mean_batch = s.batches == 0 ? 0.0
                                : static_cast<double>(s.completed) /
                                      static_cast<double>(s.batches);
  s.sojourn = sojourn_.summary();
  s.queue_wait = queue_wait_.summary();
  s.service = service_.summary();
  s.slo_violations = slo_violations_.load(std::memory_order_relaxed);
  s.retries = retries_.load(std::memory_order_relaxed);
  s.replica_deaths = deaths_.load(std::memory_order_relaxed);
  s.replica_restarts = restarts_.load(std::memory_order_relaxed);
  s.stalls_detected = stalls_.load(std::memory_order_relaxed);
  s.weight_swaps = swaps_.load(std::memory_order_relaxed);
  s.swap_adoptions = adoptions_.load(std::memory_order_relaxed);
  s.snapshot_restores = snapshot_restores_.load(std::memory_order_relaxed);
  s.snapshot_restore_failures =
      snapshot_restore_failures_.load(std::memory_order_relaxed);
  s.quantized_dispatches = quantized_dispatches_.load(std::memory_order_relaxed);
  s.exact_dispatches = exact_dispatches_.load(std::memory_order_relaxed);
  s.fast_fallbacks = fast_fallbacks_.load(std::memory_order_relaxed);
  s.canary_starts = canary_starts_.load(std::memory_order_relaxed);
  s.canary_promotes = canary_promotes_.load(std::memory_order_relaxed);
  s.canary_rollbacks = canary_rollbacks_.load(std::memory_order_relaxed);
  s.canary_version = canary_version_.load(std::memory_order_relaxed);
  s.canary_dispatches = canary_dispatches_.load(std::memory_order_relaxed);
  s.incumbent_dispatches =
      incumbent_dispatches_.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(drain_mutex_);
    if (drained_) {
      {
        std::lock_guard ledger_lock(ledger_mutex_);
        s.ledger = retired_ledger_;
      }
      for (const auto& replica : replicas_) {
        if (replica->backend.ledger) {
          s.ledger = s.ledger + replica->backend.ledger();
        }
        if (replica->backend.fast_ledger) {
          s.ledger = s.ledger + replica->backend.fast_ledger();
        }
      }
    }
  }
  publish_slo_gauges(s.sojourn);
  return s;
}

std::vector<ReplicaHealth> Server::health() const {
  std::vector<ReplicaHealth> out;
  out.reserve(replicas_.size());
  const std::int64_t now = now_ns();
  for (const auto& replica : replicas_) {
    ReplicaHealth h;
    h.index = replica->index;
    h.state = replica->state.load(std::memory_order_acquire);
    h.incarnation = replica->incarnation.load(std::memory_order_relaxed);
    h.batches = replica->batches.load(std::memory_order_relaxed);
    h.heartbeat_age_s =
        static_cast<double>(
            now - replica->heartbeat_ns.load(std::memory_order_relaxed)) *
        1e-9;
    h.stalled = replica->stall_flagged.load(std::memory_order_relaxed);
    out.push_back(h);
  }
  return out;
}

void Server::publish_slo_gauges(const LatencySummary& sojourn) const {
  if (telemetry::enabled() && sojourn.count > 0) {
    ServerMetrics& m = server_metrics();
    m.p50.set(sojourn.p50_s);
    m.p99.set(sojourn.p99_s);
  }
}

}  // namespace trident::serving
