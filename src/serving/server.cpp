#include "serving/server.hpp"

#include <algorithm>
#include <exception>
#include <optional>
#include <string>
#include <utility>

#include "common/error.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace trident::serving {

namespace {

[[nodiscard]] std::vector<double> batch_size_buckets() {
  return {1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0};
}

struct ServerMetrics {
  telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::global();
  telemetry::Counter& completed =
      reg.counter("trident_serving_requests_completed_total",
                  "requests served to completion");
  telemetry::Counter& failed =
      reg.counter("trident_serving_requests_failed_total",
                  "requests whose service raised an error");
  telemetry::Counter& batches = reg.counter(
      "trident_serving_batches_total", "micro-batches cut and served");
  telemetry::Counter& slo_violations =
      reg.counter("trident_serving_slo_violations_total",
                  "responses slower than the configured sojourn SLO");
  telemetry::Histogram& queue_wait = reg.histogram(
      "trident_serving_queue_wait_seconds",
      telemetry::duration_buckets_seconds(), "admission to batch cut");
  telemetry::Histogram& batch_form = reg.histogram(
      "trident_serving_batch_form_seconds",
      telemetry::duration_buckets_seconds(),
      "batch-formation window: oldest member's admission to the cut");
  telemetry::Histogram& service = reg.histogram(
      "trident_serving_service_seconds",
      telemetry::duration_buckets_seconds(),
      "batched forward pass on the replica");
  telemetry::Histogram& sojourn = reg.histogram(
      "trident_serving_sojourn_seconds",
      telemetry::duration_buckets_seconds(),
      "admission to response ready (queue wait + service)");
  telemetry::Histogram& batch_size =
      reg.histogram("trident_serving_batch_size", batch_size_buckets(),
                    "requests per served micro-batch");
  telemetry::Gauge& p50 = reg.gauge("trident_serving_sojourn_p50_seconds",
                                    "exact median sojourn so far");
  telemetry::Gauge& p99 = reg.gauge("trident_serving_sojourn_p99_seconds",
                                    "exact p99 sojourn so far");
};

ServerMetrics& server_metrics() {
  static ServerMetrics m;
  return m;
}

[[nodiscard]] double seconds_between(Clock::time_point a, Clock::time_point b) {
  return std::chrono::duration<double>(b - a).count();
}

}  // namespace

Server::Server(const nn::Mlp& model, const ServerConfig& config)
    : config_(config),
      input_dim_(model.layer_sizes().front()),
      queue_(config.admission) {
  TRIDENT_REQUIRE(config.replicas >= 1, "need at least one replica");
  TRIDENT_REQUIRE(config.max_batch >= 1, "max_batch must be positive");
  TRIDENT_REQUIRE(config.max_wait.count() >= 0,
                  "max_wait must be non-negative");
  TRIDENT_REQUIRE(config.slo_target_s >= 0.0,
                  "slo_target_s must be non-negative");
  replicas_.reserve(static_cast<std::size_t>(config.replicas));
  for (int r = 0; r < config.replicas; ++r) {
    core::PhotonicBackendConfig backend_cfg = config.backend;
    // Independent noise stream per replica (counter-based split, the same
    // idiom the Monte-Carlo sweeps use).
    backend_cfg.seed =
        Rng(config.backend.seed).split(static_cast<std::uint64_t>(r)).seed();
    replicas_.push_back(std::make_unique<Replica>(r, model, backend_cfg));
  }
  for (auto& replica : replicas_) {
    replica->worker = std::thread([this, rep = replica.get()] {
      worker_loop(*rep);
    });
  }
}

Server::~Server() { drain(); }

std::optional<std::future<Response>> Server::submit(nn::Vector input) {
  TRIDENT_REQUIRE(static_cast<int>(input.size()) == input_dim_,
                  "input width " + std::to_string(input.size()) +
                      " does not match the model input " +
                      std::to_string(input_dim_));
  submitted_.fetch_add(1, std::memory_order_relaxed);
  Request request;
  request.id = next_id_.fetch_add(1, std::memory_order_relaxed);
  request.input = std::move(input);
  std::future<Response> future = request.promise.get_future();
  if (queue_.push(request) != AdmitResult::kAccepted) {
    return std::nullopt;
  }
  return future;
}

void Server::worker_loop(Replica& replica) {
  for (;;) {
    std::vector<Request> batch =
        queue_.pop_batch(config_.max_batch, config_.max_wait);
    if (batch.empty()) {
      return;  // queue closed and drained
    }
    serve_batch(replica, batch);
  }
}

void Server::serve_batch(Replica& replica, std::vector<Request>& batch) {
  const Clock::time_point formed = Clock::now();
  const std::size_t n = batch.size();
  batches_.fetch_add(1, std::memory_order_relaxed);

  const bool telem = telemetry::enabled();
  if (telem) {
    ServerMetrics& m = server_metrics();
    m.batches.add(1);
    m.batch_size.observe(static_cast<double>(n));
    Clock::time_point oldest = batch.front().admitted;
    for (const Request& r : batch) {
      oldest = std::min(oldest, r.admitted);
      m.queue_wait.observe(seconds_between(r.admitted, formed));
    }
    m.batch_form.observe(seconds_between(oldest, formed));
  }
  for (const Request& r : batch) {
    queue_wait_.record(seconds_between(r.admitted, formed));
  }

  try {
    nn::Matrix x(n, static_cast<std::size_t>(input_dim_));
    for (std::size_t b = 0; b < n; ++b) {
      auto row = x.row(b);
      std::copy(batch[b].input.begin(), batch[b].input.end(), row.begin());
    }

    std::optional<telemetry::Span> span;
    if (telem) {
      span.emplace("serving/batch" + std::to_string(n) + "/replica" +
                       std::to_string(replica.index),
                   "serving");
    }
    const Clock::time_point start = Clock::now();
    const nn::BatchForwardTrace trace =
        replica.model.forward_batch(x, replica.backend);
    const Clock::time_point done = Clock::now();
    span.reset();

    const nn::Matrix& logits = trace.activations.back();
    const double service_s = seconds_between(start, done);
    for (std::size_t b = 0; b < n; ++b) {
      Response response;
      response.id = batch[b].id;
      const auto row = logits.row(b);
      response.output.assign(row.begin(), row.end());
      response.batch_size = n;
      response.replica = replica.index;
      response.timing.queue_wait_s = seconds_between(batch[b].admitted, formed);
      response.timing.service_s = service_s;
      response.timing.sojourn_s = seconds_between(batch[b].admitted, done);

      service_.record(service_s);
      sojourn_.record(response.timing.sojourn_s);
      const bool violated = config_.slo_target_s > 0.0 &&
                            response.timing.sojourn_s > config_.slo_target_s;
      if (violated) {
        slo_violations_.fetch_add(1, std::memory_order_relaxed);
      }
      completed_.fetch_add(1, std::memory_order_relaxed);
      if (telem) {
        ServerMetrics& m = server_metrics();
        m.service.observe(service_s);
        m.sojourn.observe(response.timing.sojourn_s);
        m.completed.add(1);
        if (violated) {
          m.slo_violations.add(1);
        }
      }
      batch[b].promise.set_value(std::move(response));
    }
  } catch (...) {
    const std::exception_ptr err = std::current_exception();
    for (Request& r : batch) {
      failed_.fetch_add(1, std::memory_order_relaxed);
      if (telem) {
        server_metrics().failed.add(1);
      }
      try {
        r.promise.set_exception(err);
      } catch (const std::future_error&) {
        // Promise already satisfied (failure mid-batch after some
        // set_value calls): nothing left to report to that caller.
      }
    }
  }
}

void Server::drain() {
  std::lock_guard lock(drain_mutex_);
  if (drained_) {
    return;
  }
  queue_.close();
  for (auto& replica : replicas_) {
    if (replica->worker.joinable()) {
      replica->worker.join();
    }
  }
  drained_ = true;
  publish_slo_gauges(sojourn_.summary());
}

ServerStats Server::stats() const {
  ServerStats s;
  s.submitted = submitted_.load(std::memory_order_relaxed);
  s.accepted = queue_.accepted();
  s.shed = queue_.shed();
  s.completed = completed_.load(std::memory_order_relaxed);
  s.failed = failed_.load(std::memory_order_relaxed);
  s.batches = batches_.load(std::memory_order_relaxed);
  s.mean_batch = s.batches == 0 ? 0.0
                                : static_cast<double>(s.completed) /
                                      static_cast<double>(s.batches);
  s.sojourn = sojourn_.summary();
  s.queue_wait = queue_wait_.summary();
  s.service = service_.summary();
  s.slo_violations = slo_violations_.load(std::memory_order_relaxed);
  {
    std::lock_guard lock(drain_mutex_);
    if (drained_) {
      for (const auto& replica : replicas_) {
        s.ledger = s.ledger + replica->backend.ledger();
      }
    }
  }
  publish_slo_gauges(s.sojourn);
  return s;
}

void Server::publish_slo_gauges(const LatencySummary& sojourn) const {
  if (telemetry::enabled() && sojourn.count > 0) {
    ServerMetrics& m = server_metrics();
    m.p50.set(sojourn.p50_s);
    m.p99.set(sojourn.p99_s);
  }
}

}  // namespace trident::serving
