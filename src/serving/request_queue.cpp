#include "serving/request_queue.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace trident::serving {

namespace {

struct QueueMetrics {
  telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::global();
  telemetry::Counter& accepted =
      reg.counter("trident_serving_requests_accepted_total",
                  "requests admitted into the serving queue");
  telemetry::Counter& shed =
      reg.counter("trident_serving_requests_shed_total",
                  "requests rejected by admission control");
  telemetry::Gauge& depth = reg.gauge("trident_serving_queue_depth",
                                      "requests waiting in the serving queue");
};

QueueMetrics& queue_metrics() {
  static QueueMetrics m;
  return m;
}

}  // namespace

RequestQueue::RequestQueue(const AdmissionConfig& config)
    : capacity_(config.capacity),
      watermark_(config.shed_watermark == 0
                     ? config.capacity
                     : std::min(config.shed_watermark, config.capacity)),
      policy_(config.policy) {
  TRIDENT_REQUIRE(capacity_ > 0, "queue capacity must be positive");
}

AdmitResult RequestQueue::push(Request& r) {
  {
    std::unique_lock lock(mutex_);
    if (policy_ == OverloadPolicy::kBlock) {
      ++producers_waiting_;
      space_cv_.wait(lock,
                     [&] { return closed_ || queue_.size() < capacity_; });
      --producers_waiting_;
    }
    if (closed_) {
      return AdmitResult::kClosed;
    }
    const std::size_t limit =
        policy_ == OverloadPolicy::kReject ? watermark_ : capacity_;
    if (queue_.size() >= limit) {
      ++shed_;
      if (telemetry::enabled()) {
        queue_metrics().shed.add(1);
      }
      return AdmitResult::kShed;
    }
    r.admitted = Clock::now();
    queue_.push_back(std::move(r));
    ++accepted_;
    // Published under the lock so a concurrent push/pop cannot overwrite
    // the gauge with a staler depth.
    if (telemetry::enabled()) {
      QueueMetrics& m = queue_metrics();
      m.accepted.add(1);
      m.depth.set(static_cast<double>(queue_.size()));
    }
  }
  not_empty_cv_.notify_one();
  return AdmitResult::kAccepted;
}

void RequestQueue::requeue(Request&& r) {
  {
    std::lock_guard lock(mutex_);
    queue_.push_front(std::move(r));
    ++requeued_;
    // Published under the lock so a concurrent push/pop cannot overwrite
    // the gauge with a staler depth.
    if (telemetry::enabled()) {
      queue_metrics().depth.set(static_cast<double>(queue_.size()));
    }
  }
  not_empty_cv_.notify_one();
}

std::vector<Request> RequestQueue::pop_batch(std::size_t max_batch,
                                             std::chrono::microseconds max_wait) {
  TRIDENT_REQUIRE(max_batch > 0, "max_batch must be positive");
  std::vector<Request> batch;
  std::size_t depth = 0;
  {
    std::unique_lock lock(mutex_);
    for (;;) {
      ++poppers_waiting_;
      not_empty_cv_.wait(lock, [&] { return closed_ || !queue_.empty(); });
      if (queue_.empty()) {
        --poppers_waiting_;
        return batch;  // closed and drained
      }
      // Deadline-aware cut: the head request waits at most max_wait (counted
      // from the moment this popper saw it) for co-batchers.
      if (queue_.size() < max_batch && !closed_ && max_wait.count() > 0) {
        const auto deadline = Clock::now() + max_wait;
        not_empty_cv_.wait_until(lock, deadline, [&] {
          return closed_ || queue_.size() >= max_batch;
        });
      }
      --poppers_waiting_;
      if (!queue_.empty()) {
        break;
      }
      // A sibling popper drained the queue during the fill window.  An
      // empty batch tells the caller "closed and drained", so while the
      // queue is still open go back to waiting instead of cutting.
    }
    const std::size_t n = std::min(max_batch, queue_.size());
    batch.reserve(n);
    for (std::size_t i = 0; i < n; ++i) {
      batch.push_back(std::move(queue_.front()));
      queue_.pop_front();
    }
    popped_ += n;
    depth = queue_.size();
    // Published under the lock so a concurrent push/pop cannot overwrite
    // the gauge with a staler depth.
    if (telemetry::enabled()) {
      queue_metrics().depth.set(static_cast<double>(depth));
    }
  }
  space_cv_.notify_all();
  // Other poppers may still have work to cut.
  if (depth > 0) {
    not_empty_cv_.notify_one();
  }
  return batch;
}

void RequestQueue::close() {
  {
    std::lock_guard lock(mutex_);
    closed_ = true;
  }
  not_empty_cv_.notify_all();
  space_cv_.notify_all();
}

bool RequestQueue::closed() const {
  std::lock_guard lock(mutex_);
  return closed_;
}

std::size_t RequestQueue::depth() const {
  std::lock_guard lock(mutex_);
  return queue_.size();
}

std::uint64_t RequestQueue::accepted() const {
  std::lock_guard lock(mutex_);
  return accepted_;
}

std::uint64_t RequestQueue::shed() const {
  std::lock_guard lock(mutex_);
  return shed_;
}

std::uint64_t RequestQueue::requeued() const {
  std::lock_guard lock(mutex_);
  return requeued_;
}

std::uint64_t RequestQueue::popped() const {
  std::lock_guard lock(mutex_);
  return popped_;
}

std::size_t RequestQueue::poppers_waiting() const {
  std::lock_guard lock(mutex_);
  return poppers_waiting_;
}

std::size_t RequestQueue::producers_waiting() const {
  std::lock_guard lock(mutex_);
  return producers_waiting_;
}

}  // namespace trident::serving
