// Latency recording and SLO accounting for the serving runtime.
//
// The runtime must report p50/p99 sojourn times even when telemetry is
// compiled out (the bench cross-validates them against the M/D/1 model),
// so the recorder here is plain library code: a mutex-protected sample
// buffer with exact order-statistic percentiles.  Telemetry histograms
// mirror the same observations when enabled — those give the *bucketed*
// estimates exported to Prometheus/JSON; this gives the exact ones used
// in reports and tests.
#pragma once

#include <cstdint>
#include <mutex>
#include <optional>
#include <vector>

namespace trident::serving {

/// Summary statistics of one latency population, in seconds.
struct LatencySummary {
  std::uint64_t count = 0;
  double mean_s = 0.0;
  double p50_s = 0.0;
  double p90_s = 0.0;
  double p99_s = 0.0;
  double max_s = 0.0;
};

/// Exact order-statistic quantile of one sample window: sorts a copy and
/// returns element floor(q * (n-1)).  Total over every window shape the
/// canary gate can see — empty (nullopt), singleton (its only element for
/// every q), all-tied (the tied value) — so callers never divide by zero
/// or read past the end on a degenerate window.
[[nodiscard]] std::optional<double> exact_quantile(std::vector<double> window,
                                                   double q);

/// Outcome of comparing one latency quantile across two observation
/// windows (incumbent vs candidate).  The windows may hold unequal sample
/// counts — each side's quantile is its own exact order statistic — but a
/// comparison is only `comparable` when BOTH windows carry at least
/// `min_samples` observations.  A degenerate window (empty, singleton
/// below the floor, or simply too small) yields comparable == false and a
/// NaN ratio: a gate built on this cannot promote or roll back on noise,
/// it must wait for more data.
struct WindowComparison {
  bool comparable = false;
  std::uint64_t incumbent_count = 0;
  std::uint64_t candidate_count = 0;
  double incumbent_q_s = 0.0;  ///< quantile of the incumbent window
  double candidate_q_s = 0.0;  ///< quantile of the candidate window
  /// candidate_q_s / incumbent_q_s; NaN when not comparable, +inf when the
  /// incumbent quantile is exactly zero and the candidate's is not.
  double ratio = 0.0;
};

/// Compares quantile `q` (default p99) of two windows with a per-window
/// sample floor.  `min_samples` is clamped to >= 1 so an empty window can
/// never be comparable.
[[nodiscard]] WindowComparison compare_latency_windows(
    const std::vector<double>& incumbent, const std::vector<double>& candidate,
    std::size_t min_samples, double q = 0.99);

/// Thread-safe sample recorder with exact percentiles.  Bounded: beyond
/// `cap` samples new observations are dropped (and counted) so a runaway
/// load test cannot grow memory without bound.
class LatencyRecorder {
 public:
  explicit LatencyRecorder(std::size_t cap = 1u << 20);

  void record(double seconds);

  /// Folds another recorder's samples into this one — the fleet-wide
  /// aggregation primitive: per-node recorders merge into one population so
  /// cluster p50/p99 are exact order statistics, not an average of per-node
  /// percentiles (which would be meaningless for tails).  Samples beyond
  /// this recorder's cap are dropped and counted, and the other recorder's
  /// own drop count carries over, so `summary().count + dropped()` stays
  /// conserved across any merge tree.  Safe against concurrent record()
  /// on either side; merging a recorder into itself is a no-op.
  void merge(const LatencyRecorder& other);

  /// Exact order-statistic summary of everything recorded so far.
  [[nodiscard]] LatencySummary summary() const;

  /// Observations dropped because the cap was reached.
  [[nodiscard]] std::uint64_t dropped() const;

  void clear();

 private:
  const std::size_t cap_;
  mutable std::mutex mutex_;
  std::vector<double> samples_;
  std::uint64_t dropped_ = 0;
};

}  // namespace trident::serving
