#include "serving/slo.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

namespace trident::serving {

std::optional<double> exact_quantile(std::vector<double> window, double q) {
  if (window.empty()) {
    return std::nullopt;
  }
  q = std::clamp(q, 0.0, 1.0);
  std::sort(window.begin(), window.end());
  const auto idx = static_cast<std::size_t>(
      q * static_cast<double>(window.size() - 1));
  return window[idx];
}

WindowComparison compare_latency_windows(const std::vector<double>& incumbent,
                                         const std::vector<double>& candidate,
                                         std::size_t min_samples, double q) {
  WindowComparison cmp;
  cmp.incumbent_count = incumbent.size();
  cmp.candidate_count = candidate.size();
  const std::size_t floor_n = std::max<std::size_t>(min_samples, 1);
  if (incumbent.size() < floor_n || candidate.size() < floor_n) {
    cmp.ratio = std::numeric_limits<double>::quiet_NaN();
    return cmp;
  }
  cmp.comparable = true;
  cmp.incumbent_q_s = *exact_quantile(incumbent, q);
  cmp.candidate_q_s = *exact_quantile(candidate, q);
  if (cmp.incumbent_q_s == 0.0) {
    cmp.ratio = cmp.candidate_q_s == 0.0
                    ? 1.0
                    : std::numeric_limits<double>::infinity();
  } else {
    cmp.ratio = cmp.candidate_q_s / cmp.incumbent_q_s;
  }
  return cmp;
}

LatencyRecorder::LatencyRecorder(std::size_t cap) : cap_(cap) {}

void LatencyRecorder::record(double seconds) {
  std::lock_guard lock(mutex_);
  if (samples_.size() >= cap_) {
    ++dropped_;
    return;
  }
  samples_.push_back(seconds);
}

void LatencyRecorder::merge(const LatencyRecorder& other) {
  if (&other == this) {
    return;
  }
  // Copy out under the source lock, then fold under the destination lock:
  // never both at once, so two threads cross-merging recorders cannot
  // deadlock on lock order.
  std::vector<double> theirs;
  std::uint64_t their_dropped = 0;
  {
    std::lock_guard lock(other.mutex_);
    theirs = other.samples_;
    their_dropped = other.dropped_;
  }
  std::lock_guard lock(mutex_);
  dropped_ += their_dropped;
  for (double v : theirs) {
    if (samples_.size() >= cap_) {
      ++dropped_;
      continue;
    }
    samples_.push_back(v);
  }
}

LatencySummary LatencyRecorder::summary() const {
  std::vector<double> sorted;
  {
    std::lock_guard lock(mutex_);
    sorted = samples_;
  }
  LatencySummary s;
  if (sorted.empty()) {
    return s;
  }
  std::sort(sorted.begin(), sorted.end());
  s.count = sorted.size();
  double sum = 0.0;
  for (double v : sorted) {
    sum += v;
  }
  s.mean_s = sum / static_cast<double>(sorted.size());
  // Same order statistic exact_quantile computes; the input is already
  // sorted so the indexed read is direct.
  const auto at = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
  };
  s.p50_s = at(0.50);
  s.p90_s = at(0.90);
  s.p99_s = at(0.99);
  s.max_s = sorted.back();
  return s;
}

std::uint64_t LatencyRecorder::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

void LatencyRecorder::clear() {
  std::lock_guard lock(mutex_);
  samples_.clear();
  dropped_ = 0;
}

}  // namespace trident::serving
