#include "serving/slo.hpp"

#include <algorithm>

namespace trident::serving {

LatencyRecorder::LatencyRecorder(std::size_t cap) : cap_(cap) {}

void LatencyRecorder::record(double seconds) {
  std::lock_guard lock(mutex_);
  if (samples_.size() >= cap_) {
    ++dropped_;
    return;
  }
  samples_.push_back(seconds);
}

void LatencyRecorder::merge(const LatencyRecorder& other) {
  if (&other == this) {
    return;
  }
  // Copy out under the source lock, then fold under the destination lock:
  // never both at once, so two threads cross-merging recorders cannot
  // deadlock on lock order.
  std::vector<double> theirs;
  std::uint64_t their_dropped = 0;
  {
    std::lock_guard lock(other.mutex_);
    theirs = other.samples_;
    their_dropped = other.dropped_;
  }
  std::lock_guard lock(mutex_);
  dropped_ += their_dropped;
  for (double v : theirs) {
    if (samples_.size() >= cap_) {
      ++dropped_;
      continue;
    }
    samples_.push_back(v);
  }
}

LatencySummary LatencyRecorder::summary() const {
  std::vector<double> sorted;
  {
    std::lock_guard lock(mutex_);
    sorted = samples_;
  }
  LatencySummary s;
  if (sorted.empty()) {
    return s;
  }
  std::sort(sorted.begin(), sorted.end());
  s.count = sorted.size();
  double sum = 0.0;
  for (double v : sorted) {
    sum += v;
  }
  s.mean_s = sum / static_cast<double>(sorted.size());
  const auto at = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(sorted.size() - 1));
    return sorted[idx];
  };
  s.p50_s = at(0.50);
  s.p90_s = at(0.90);
  s.p99_s = at(0.99);
  s.max_s = sorted.back();
  return s;
}

std::uint64_t LatencyRecorder::dropped() const {
  std::lock_guard lock(mutex_);
  return dropped_;
}

void LatencyRecorder::clear() {
  std::lock_guard lock(mutex_);
  samples_.clear();
  dropped_ = 0;
}

}  // namespace trident::serving
