// Request/response types of the edge-serving runtime.
//
// A Request is one inference to run: an input vector plus the promise the
// serving pipeline fulfils once a replica has pushed the input through its
// accelerator.  Timestamps are stamped at the admission and completion
// boundaries so per-request latency decomposes into the spans the paper's
// "rapid response" story cares about: queue wait (admission → batch cut),
// service (GEMM on the replica), and total sojourn.
//
// Failure semantics: nothing admitted is ever silently dropped.  A request
// whose service attempt hits a transient fault is requeued and retried on
// a (possibly different) replica until the per-request attempt budget is
// exhausted, at which point the promise is fulfilled with an explicit
// ResponseStatus::kFailed response carrying the last error — a degraded
// result, not a broken future.  `attempts` records how many service
// attempts the request consumed either way.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>
#include <optional>
#include <string>
#include <vector>

#include "nn/matrix.hpp"
#include "telemetry/trace.hpp"

namespace trident::serving {

using Clock = std::chrono::steady_clock;

/// One spent service attempt in a request's history: which replica
/// incarnation ran it and why it failed.  The retry edge in the flight
/// recorder — a request that died on (replica 0, incarnation 0) and was
/// served by (replica 0, incarnation 1) carries both in its log.
struct AttemptNote {
  int replica = -1;
  int incarnation = 0;
  std::string error;
};

/// Which execution tier runs a request's forward pass.
enum class ServingTier {
  kExact,  ///< the replica's full device-model backend (the default)
  kFast,   ///< int8 quantized tier — the calibrated error-bound contract
           ///< (docs/performance.md) applies to the returned logits
};

/// Latency decomposition of one served request, in seconds.
struct ResponseTiming {
  double queue_wait_s = 0.0;  ///< admission → the batcher cut its batch
  double service_s = 0.0;     ///< batched forward pass on the replica
  double sojourn_s = 0.0;     ///< admission → output ready (what users feel)
};

/// Terminal state of an admitted request.
enum class ResponseStatus {
  kOk,      ///< served; `output` holds the logits
  kFailed,  ///< retry budget exhausted (or no replica left); `error` says why
};

/// Per-submit knobs beyond the input itself.  The fleet layer routes by
/// `tenant_key` and stamps class deadlines/tiers here; plain Server users
/// can ignore it (all fields have the legacy defaults).
struct SubmitOptions {
  /// Absolute deadline; the epoch default means "no deadline".
  Clock::time_point deadline{};
  ServingTier tier = ServingTier::kExact;
  /// Opaque tenant identity (0 = untenanted).  Carried through to the
  /// response so completion hooks can attribute per-tenant accounting.
  std::uint64_t tenant_key = 0;
};

/// One completed inference.
struct Response {
  std::uint64_t id = 0;
  ResponseStatus status = ResponseStatus::kOk;
  nn::Vector output;           ///< output-layer logits (empty on kFailed)
  std::size_t batch_size = 0;  ///< size of the micro-batch this rode in
  int replica = -1;            ///< which replica served it (-1: none did)
  int attempts = 1;            ///< service attempts consumed (>1 ⇒ retried)
  std::string error;           ///< last failure message (kFailed only)
  bool deadline_missed = false;  ///< explicit per-request deadline blown
  /// Tier that actually served the request.  May be kExact for a kFast
  /// request when the replica has no quantized backend (counted as a
  /// fast-tier fallback) — the caller always learns what it really got.
  ServingTier tier = ServingTier::kExact;
  ResponseTiming timing;
  /// Trace id of the request's causal tree (0 when tracing never assigned
  /// one).  Grep it in a trace dump or flight-recorder postmortem to see
  /// every span and attempt this response rode through.
  std::uint64_t trace_id = 0;
  /// Tenant the request was submitted under (0 = untenanted).
  std::uint64_t tenant_key = 0;
  /// Version of the weights that actually served this response: the
  /// incumbent's published version, or — when `canary` is set — the canary
  /// publication sequence number of the candidate.  The per-version stamp
  /// is what lets a continuous-learning controller attribute an outcome to
  /// exactly one weight set, and what the never-torn regression test keys
  /// its bit-exactness check on.
  std::uint64_t weights_version = 0;
  /// True when the candidate (canary) weights served this response.
  /// Routing is by trace id, so a retried request lands on the same arm on
  /// every attempt and the flag is stable across replica hops.
  bool canary = false;
};

/// One in-flight inference (move-only: it carries the response promise).
struct Request {
  std::uint64_t id = 0;
  nn::Vector input;
  Clock::time_point admitted{};  ///< stamped when admission accepts
  /// Explicit absolute deadline (optional).  A deadline that has already
  /// expired at admission is counted as an SLO violation right there;
  /// the request is still served (the deadline is advisory, not a drop).
  std::optional<Clock::time_point> deadline;
  /// Requested execution tier (per-request fast/exact knob).
  ServingTier tier = ServingTier::kExact;
  /// Tenant identity from SubmitOptions (0 = untenanted).
  std::uint64_t tenant_key = 0;
  int attempts = 0;  ///< failed service attempts so far (retry accounting)
  bool deadline_violation_counted = false;  ///< avoid double-counting
  /// Request-scoped trace identity, minted at admission (trace_id = id+1,
  /// so it is deterministic under a fixed submission order).  Carried
  /// through the queue, retries, and replica hops; the batch span and the
  /// per-request trace events attach to it.
  telemetry::TraceContext trace;
  /// Every spent (failed) service attempt, oldest first — the flight
  /// recorder's cross-incarnation retry history.
  std::vector<AttemptNote> attempt_log;
  std::promise<Response> promise;
};

}  // namespace trident::serving
