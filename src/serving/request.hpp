// Request/response types of the edge-serving runtime.
//
// A Request is one inference to run: an input vector plus the promise the
// serving pipeline fulfils once a replica has pushed the input through its
// accelerator.  Timestamps are stamped at the admission and completion
// boundaries so per-request latency decomposes into the spans the paper's
// "rapid response" story cares about: queue wait (admission → batch cut),
// service (GEMM on the replica), and total sojourn.
#pragma once

#include <chrono>
#include <cstdint>
#include <future>

#include "nn/matrix.hpp"

namespace trident::serving {

using Clock = std::chrono::steady_clock;

/// Latency decomposition of one served request, in seconds.
struct ResponseTiming {
  double queue_wait_s = 0.0;  ///< admission → the batcher cut its batch
  double service_s = 0.0;     ///< batched forward pass on the replica
  double sojourn_s = 0.0;     ///< admission → output ready (what users feel)
};

/// One completed inference.
struct Response {
  std::uint64_t id = 0;
  nn::Vector output;           ///< output-layer logits
  std::size_t batch_size = 0;  ///< size of the micro-batch this rode in
  int replica = -1;            ///< which replica served it
  ResponseTiming timing;
};

/// One in-flight inference (move-only: it carries the response promise).
struct Request {
  std::uint64_t id = 0;
  nn::Vector input;
  Clock::time_point admitted{};  ///< stamped when admission accepts
  std::promise<Response> promise;
};

}  // namespace trident::serving
