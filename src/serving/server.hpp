// Multi-replica edge-serving runtime.
//
// The Server owns N independent accelerator replicas — each one a private
// Mlp weight copy plus its own PhotonicBackend (weight banks, quantizers,
// noise stream, energy ledger) — and a shared admission-controlled request
// queue.  Each replica runs a worker thread in a simple loop:
//
//   pop_batch(max_batch, max_wait)   deadline-aware micro-batch cut
//   forward_batch(...)               one batched GEMM pass (PR-1 fast path)
//   fulfil promises                  responses carry the latency breakdown
//
// Batching exploits the amortised-ledger GEMM path directly: a batch of B
// requests pays input quantization and bookkeeping once per block instead
// of once per request, and the blocked kernels keep the weight row in
// cache across samples.  Because the backend's matmul is bit-identical to
// a loop of per-sample matvecs, a noise-free server produces outputs
// bit-identical to the sequential per-request path regardless of how
// requests were grouped into batches — the property the end-to-end test
// pins down.
//
// Shutdown is graceful by construction: drain() closes admission, workers
// finish every accepted request, then join.  Nothing accepted is dropped.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

#include "core/photonic_backend.hpp"
#include "nn/mlp.hpp"
#include "serving/request.hpp"
#include "serving/request_queue.hpp"
#include "serving/slo.hpp"

namespace trident::serving {

struct ServerConfig {
  int replicas = 1;
  std::size_t max_batch = 8;
  /// Deadline-aware batch window: how long the head request waits for
  /// co-batchers before the batch is cut anyway.
  std::chrono::microseconds max_wait{200};
  AdmissionConfig admission;
  /// Per-replica backend; replica r runs with seed split(seed, r) so the
  /// noise streams are independent.
  core::PhotonicBackendConfig backend;
  /// Sojourn-time SLO in seconds; responses slower than this count as
  /// violations.  0 disables SLO accounting.
  double slo_target_s = 0.0;
};

/// Point-in-time view of the runtime's own accounting (available with
/// telemetry compiled out; the bench cross-validates these numbers).
struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t batches = 0;
  double mean_batch = 0.0;  ///< completed / batches
  LatencySummary sojourn;
  LatencySummary queue_wait;
  LatencySummary service;
  std::uint64_t slo_violations = 0;
  /// Aggregate hardware bill across replicas.  Only populated once the
  /// server is drained (replica ledgers are worker-thread-private while
  /// serving); zero before that.
  core::PhotonicLedger ledger;
};

class Server {
 public:
  /// Clones `model` once per replica.  The model's input width fixes the
  /// accepted request shape.
  Server(const nn::Mlp& model, const ServerConfig& config);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Drains on destruction if the caller did not.
  ~Server();

  /// Submits one inference.  Returns the response future, or nullopt when
  /// admission shed the request (or the server is draining).  Blocks only
  /// under OverloadPolicy::kBlock with a full queue.
  [[nodiscard]] std::optional<std::future<Response>> submit(nn::Vector input);

  /// Closes admission, serves every accepted request, joins all replica
  /// workers.  Idempotent.
  void drain();

  [[nodiscard]] ServerStats stats() const;
  [[nodiscard]] const ServerConfig& config() const { return config_; }
  [[nodiscard]] int replicas() const { return static_cast<int>(replicas_.size()); }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.depth(); }
  [[nodiscard]] bool draining() const { return queue_.closed(); }

 private:
  struct Replica {
    int index = 0;
    nn::Mlp model;
    core::PhotonicBackend backend;
    std::thread worker;

    Replica(int idx, const nn::Mlp& m, const core::PhotonicBackendConfig& cfg)
        : index(idx), model(m), backend(cfg) {}
  };

  void worker_loop(Replica& replica);
  void serve_batch(Replica& replica, std::vector<Request>& batch);
  /// Publishes exact p50/p99 sojourn gauges to telemetry (no-op when
  /// telemetry is off).
  void publish_slo_gauges(const LatencySummary& sojourn) const;

  ServerConfig config_;
  int input_dim_ = 0;
  RequestQueue queue_;
  std::vector<std::unique_ptr<Replica>> replicas_;

  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> slo_violations_{0};
  LatencyRecorder sojourn_;
  LatencyRecorder queue_wait_;
  LatencyRecorder service_;

  mutable std::mutex drain_mutex_;
  bool drained_ = false;
};

}  // namespace trident::serving
