// Multi-replica edge-serving runtime with replica self-healing.
//
// The Server owns N independent accelerator replicas — each one a private
// Mlp weight copy plus its own backend (by default a PhotonicBackend with
// weight banks, quantizers, noise stream, energy ledger) — and a shared
// admission-controlled request queue.  Each replica runs a worker thread
// in a simple loop:
//
//   pop_batch(max_batch, max_wait)   deadline-aware micro-batch cut
//   forward_batch(...)               one batched GEMM pass (PR-1 fast path)
//   fulfil promises                  responses carry the latency breakdown
//
// Batching exploits the amortised-ledger GEMM path directly: a batch of B
// requests pays input quantization and bookkeeping once per block instead
// of once per request, and the blocked kernels keep the weight row in
// cache across samples.  Because the backend's matmul is bit-identical to
// a loop of per-sample matvecs, a noise-free server produces outputs
// bit-identical to the sequential per-request path regardless of how
// requests were grouped into batches — the property the end-to-end test
// pins down.
//
// Failure handling is explicit and conservation-preserving; the chaos
// suite (src/chaos/) drives every path below with seeded fault plans:
//
//   * transient faults — a backend exception or a non-finite output row
//     requeues the affected requests at the queue head with a bounded
//     per-request retry budget (`max_attempts`); once the budget is spent
//     the promise is fulfilled with an explicit ResponseStatus::kFailed
//     degraded response.  Nothing admitted is ever silently dropped.
//   * replica death — a backend throwing trident::HardwareFailure kills
//     its replica: the in-flight batch is requeued, the worker exits, and
//     the supervisor thread restarts the replica with a re-cloned model
//     and a fresh RNG-split backend (a new incarnation), up to
//     `max_restarts` times.
//   * stalls — workers stamp a heartbeat around every batch; the
//     supervisor flags replicas that sit in kServing past
//     `stall_threshold` (counted, surfaced via health()).
//
// Shutdown is graceful by construction: drain() closes admission, workers
// finish every accepted request, then join.  If every replica died and
// could not be restarted, drain() fails the leftover queue explicitly
// (kFailed, "no replica available") — the accepted == completed + failed
// conservation law holds in every fault scenario.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <future>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "core/photonic_backend.hpp"
#include "core/quantized_backend.hpp"
#include "nn/mlp.hpp"
#include "nn/plan.hpp"
#include "serving/flight_recorder.hpp"
#include "serving/request.hpp"
#include "serving/request_queue.hpp"
#include "serving/slo.hpp"
#include "state/snapshot.hpp"

namespace trident::serving {

/// One replica's execution engine plus an optional hardware-bill accessor
/// (null when the backend keeps no ledger).  Produced by a BackendFactory.
/// `fast`/`fast_ledger` are the optional int8 quantized tier: when null,
/// kFast requests fall back to the exact backend (counted, and the response
/// reports the tier it really got).  Factories that only fill the first two
/// members keep working — the fast tier is simply absent.
struct ReplicaBackend {
  std::unique_ptr<nn::MatvecBackend> backend;
  std::function<core::PhotonicLedger()> ledger;
  std::unique_ptr<nn::MatvecBackend> fast;
  std::function<core::PhotonicLedger()> fast_ledger;
};

/// Builds the backend for (replica, incarnation).  `cfg` already carries
/// the per-incarnation split seed, so a default factory just constructs a
/// PhotonicBackend from it; decorators (FaultyBackend, chaos injection)
/// layer here without the Server knowing.
using BackendFactory = std::function<ReplicaBackend(
    int replica, int incarnation, const core::PhotonicBackendConfig& cfg)>;

struct ServerConfig {
  int replicas = 1;
  std::size_t max_batch = 8;
  /// Deadline-aware batch window: how long the head request waits for
  /// co-batchers before the batch is cut anyway.
  std::chrono::microseconds max_wait{200};
  AdmissionConfig admission;
  /// Per-replica backend; replica r (incarnation i) runs with seed
  /// split(split(seed, r), i) so every noise stream — including the ones
  /// born from a restart — is independent.
  core::PhotonicBackendConfig backend;
  /// Sojourn-time SLO in seconds; responses slower than this count as
  /// violations.  0 disables SLO accounting.
  double slo_target_s = 0.0;
  /// Service attempts per request before the degraded kFailed response.
  int max_attempts = 3;
  /// Restart replicas whose backend threw HardwareFailure.
  bool restart_dead_replicas = true;
  /// Restart budget per replica (incarnations beyond the first).
  int max_restarts = 8;
  /// Supervisor wake-up period (health scan cadence).
  std::chrono::microseconds supervision_interval{2'000};
  /// A replica stuck in kServing longer than this is flagged stalled.
  std::chrono::microseconds stall_threshold{100'000};
  /// Replacement backend builder; null uses the plain PhotonicBackend.
  BackendFactory backend_factory;
  /// Chaos hook: returns true to shed the i-th submit at admission (a
  /// seeded "admission blip").  Null disables.
  std::function<bool(std::uint64_t submit_index)> admission_blip;
  /// Attach the int8 quantized tier to every default-factory replica, so
  /// requests submitted with ServingTier::kFast run through it.  Custom
  /// backend factories opt in by filling ReplicaBackend::fast themselves.
  bool enable_fast_tier = false;
  /// Grids of the quantized tier (only read when the fast tier exists).
  core::QuantizedBackendConfig fast_backend;
  /// Non-volatile restore: when set, a supervisor restart loads this
  /// state::Snapshot and the healed replica serves the snapshotted
  /// (trained) weights instead of a re-clone of the init model.  A missing
  /// or corrupt snapshot falls back to the current published weights (and
  /// counts a snapshot_restore_failure).
  std::string snapshot_path;
  /// Black-box flight recorder (tail-based request retention + postmortem
  /// dumps).  Disabled by default: the serving hot path then never touches
  /// it.  With flight.dump_path set, the supervisor dumps on every replica
  /// death and drain() dumps on exit.
  FlightRecorderConfig flight;
  /// Run replica forward passes through compiled ExecutionPlans
  /// (nn/plan.hpp): every publication — construction, hot_swap,
  /// canary_start — carries an immutable plan all replicas share, adopted
  /// at the same batch boundaries as the weights (the never-torn guarantee
  /// covers the pair).  Outputs, noise draws, and ledger bills stay
  /// bit-identical to the per-op path; set false to serve through
  /// Mlp::forward_batch dispatch instead.
  bool use_plan = true;
  /// Pre-compiled plan for the construction-time model, so a fleet compiles
  /// once and every node shares the panels instead of re-deriving them.
  /// Must match the model architecture and the server's plan_config();
  /// null (the default) compiles in the constructor.  Ignored when
  /// use_plan is false.
  std::shared_ptr<const nn::ExecutionPlan> initial_plan;
  /// Completion hook: called with every terminal response (kOk and kFailed
  /// alike) just before its promise is fulfilled, from whatever thread
  /// resolved the request (replica workers; the draining thread for
  /// leftovers).  This is how a fleet layer sees per-node completions
  /// without wrapping futures: the hook observes exactly the responses the
  /// conservation law counts, so an accounting built on it balances with
  /// the server's own books.  Must be thread-safe and must not call back
  /// into this Server.  Null disables.
  std::function<void(const Response&)> on_response;
};

/// Lifecycle of one replica worker, as the supervisor sees it.
enum class ReplicaState {
  kIdle,     ///< parked in pop_batch, queue empty
  kServing,  ///< running a batch
  kDead,     ///< backend raised HardwareFailure; awaiting restart
  kRetired,  ///< dead with no restart budget left (or server draining)
};

/// Point-in-time health view of one replica (all fields lock-free reads).
struct ReplicaHealth {
  int index = 0;
  ReplicaState state = ReplicaState::kIdle;
  int incarnation = 0;  ///< 0 = original; +1 per supervisor restart
  std::uint64_t batches = 0;  ///< batches served across incarnations
  double heartbeat_age_s = 0.0;
  bool stalled = false;  ///< currently past the stall threshold
};

/// Point-in-time view of the runtime's own accounting (available with
/// telemetry compiled out; the bench cross-validates these numbers).
struct ServerStats {
  std::uint64_t submitted = 0;
  std::uint64_t accepted = 0;
  std::uint64_t shed = 0;  ///< admission control + chaos admission blips
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;  ///< explicit kFailed degraded responses
  std::uint64_t batches = 0;
  double mean_batch = 0.0;  ///< completed / batches
  LatencySummary sojourn;
  LatencySummary queue_wait;
  LatencySummary service;
  std::uint64_t slo_violations = 0;
  /// Self-healing ledger.
  std::uint64_t retries = 0;           ///< requests requeued after a fault
  std::uint64_t replica_deaths = 0;    ///< HardwareFailure worker exits
  std::uint64_t replica_restarts = 0;  ///< supervisor re-incarnations
  std::uint64_t stalls_detected = 0;   ///< heartbeat overruns flagged
  /// Weight lifecycle.
  std::uint64_t weight_swaps = 0;      ///< hot_swap() publications
  std::uint64_t swap_adoptions = 0;    ///< replica adoptions at batch bounds
  std::uint64_t snapshot_restores = 0; ///< restarts healed from the snapshot
  std::uint64_t snapshot_restore_failures = 0;  ///< fell back to published
  /// Canary lifecycle (continuous-learning publication stage).  Every
  /// canary started resolves to exactly one promote or one rollback unless
  /// it is still live: starts == promotes + rollbacks + (active ? 1 : 0) —
  /// the promote/rollback books the chaos invariants check.
  std::uint64_t canary_starts = 0;
  std::uint64_t canary_promotes = 0;   ///< ended via hot_swap of the candidate
  std::uint64_t canary_rollbacks = 0;  ///< candidate discarded
  /// Live canary's publication sequence (0 = no canary active).
  std::uint64_t canary_version = 0;
  /// Arm dispatch accounting: every completed response was served by
  /// exactly one weight set (canary + incumbent == completed — the canary
  /// conservation law).
  std::uint64_t canary_dispatches = 0;
  std::uint64_t incumbent_dispatches = 0;
  /// Tier dispatch accounting.  Every completed response is exactly one of
  /// the two (quantized + exact == completed — the metrics validator checks
  /// the telemetry mirror of this invariant).
  std::uint64_t quantized_dispatches = 0;  ///< responses served by the int8 tier
  std::uint64_t exact_dispatches = 0;      ///< responses served exact
  std::uint64_t fast_fallbacks = 0;  ///< kFast requests served exact (no tier)
  /// Aggregate hardware bill across replicas.  Only populated once the
  /// server is drained (replica ledgers are worker-thread-private while
  /// serving); zero before that.  Dead incarnations' bills are folded in
  /// at restart time.
  core::PhotonicLedger ledger;
};

class Server {
 public:
  /// Clones `model` once per replica.  The model's input width fixes the
  /// accepted request shape.
  Server(const nn::Mlp& model, const ServerConfig& config);

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Drains on destruction if the caller did not.
  ~Server();

  /// Submits one inference.  Returns the response future, or nullopt when
  /// admission shed the request (or the server is draining).  Blocks only
  /// under OverloadPolicy::kBlock with a full queue.
  /// The tier selects the replica backend that runs the forward pass:
  /// kExact (default) is the full device model, kFast the int8 quantized
  /// tier (falling back to exact — and saying so in the response — when
  /// the replica has none).
  [[nodiscard]] std::optional<std::future<Response>> submit(
      nn::Vector input, ServingTier tier = ServingTier::kExact);

  /// Submit with an explicit absolute deadline.  A deadline that has
  /// already expired counts as an SLO violation at admission (the request
  /// is still served; the response carries deadline_missed).
  [[nodiscard]] std::optional<std::future<Response>> submit(
      nn::Vector input, Clock::time_point deadline,
      ServingTier tier = ServingTier::kExact);

  /// Submit with the full option set (deadline, tier, tenant key).  The
  /// other overloads delegate here.
  [[nodiscard]] std::optional<std::future<Response>> submit(
      nn::Vector input, const SubmitOptions& options);

  /// Closes admission, serves every accepted request, joins all replica
  /// workers, then fails any leftovers explicitly if no replica survived.
  /// Idempotent.
  void drain();

  /// Graceful decommission: stops admission, completes (or explicitly
  /// fails) every in-flight request, and returns the final books — counters
  /// plus the folded hardware ledger across every incarnation of every
  /// replica.  This is the node-retire primitive the fleet autoscaler
  /// uses: after retire() the returned stats are immutable truth, so a
  /// cluster can fold them into its own accounting without violating
  /// `accepted == completed + failed` or dropping ledger pulses.
  /// Idempotent (a second call returns the same final stats).
  [[nodiscard]] ServerStats retire();

  /// Atomically publishes new weights to all replicas.  Each replica
  /// adopts at its next batch boundary — never mid-forward, so no request
  /// sees torn weights — and the adoption re-programs the replica's GST
  /// bank through its own backend, billing the write pulses in the
  /// existing ledger.  The architecture must match the serving model.
  /// Thread-safe; concurrent swaps serialise, the newest version wins.
  void hot_swap(const nn::Mlp& model);

  /// Version of the most recently published weights (0 = the init model).
  [[nodiscard]] std::uint64_t weights_version() const {
    return weights_version_.load(std::memory_order_acquire);
  }

  /// Publishes `candidate` as a canary: `traffic_percent`% of subsequent
  /// traffic (selected by a splitmix64 hash of the trace id, so the arm a
  /// request lands on is a pure function of its identity and composes with
  /// request tracing — retries stay on their arm) is served by the
  /// candidate weights, the rest by the incumbent.  Replicas adopt the
  /// candidate at batch boundaries exactly like a hot swap: no response is
  /// ever a torn mix of the two weight sets, and the candidate's GST
  /// programming is billed through the adopting replica's ledger.  Returns
  /// the canary publication sequence (> 0), or 0 when a canary is already
  /// active (one candidate at a time; end it first).  The architecture
  /// must match the serving model.  Thread-safe.
  [[nodiscard]] std::uint64_t canary_start(const nn::Mlp& candidate,
                                           std::uint32_t traffic_percent);

  /// canary_start with a pre-compiled plan for `candidate`, so the caller
  /// (the learning pipeline's trainer thread) pays the compile cost off the
  /// serving path.  The plan must match the candidate's architecture and
  /// this server's plan_config(); null compiles here (when use_plan is on).
  /// On promote the SAME plan object becomes the incumbent's — shared, not
  /// re-derived.
  [[nodiscard]] std::uint64_t canary_start(
      const nn::Mlp& candidate, std::uint32_t traffic_percent,
      std::shared_ptr<const nn::ExecutionPlan> plan);

  /// Resolves the live canary: promote publishes the candidate as the new
  /// incumbent through the hot_swap path (version bump, batch-boundary
  /// adoption); rollback discards it and all traffic reverts to the
  /// untouched incumbent.  No-op (returns false) when no canary is active.
  /// Thread-safe; serialises with canary_start and hot_swap.
  bool canary_end(bool promote);

  /// Live canary's publication sequence (0 = none active).
  [[nodiscard]] std::uint64_t canary_version() const {
    return canary_version_.load(std::memory_order_acquire);
  }

  [[nodiscard]] ServerStats stats() const;
  /// Per-replica lifecycle/heartbeat view (cheap, lock-free).
  [[nodiscard]] std::vector<ReplicaHealth> health() const;
  /// The flight recorder, when ServerConfig::flight.enabled (else null).
  /// Callers (chaos harness, serve_loop) may dump() it on demand — e.g.
  /// when a chaos fault fires — in addition to the automatic
  /// replica-death and drain dumps.
  [[nodiscard]] FlightRecorder* flight_recorder() const {
    return flight_.get();
  }
  [[nodiscard]] const ServerConfig& config() const { return config_; }
  /// PlanConfig this server compiles published weights with: the packed
  /// int8 grid follows the fast tier's weight grid (so the quantized
  /// backend takes its fused path).  Static so plan-sharing layers (fleet)
  /// can pre-compile against a node config before any server exists.
  [[nodiscard]] static nn::PlanConfig plan_config_for(
      const ServerConfig& config) {
    return nn::PlanConfig{config.fast_backend.weight_bits};
  }
  [[nodiscard]] nn::PlanConfig plan_config() const {
    return plan_config_for(config_);
  }
  /// Plan of the current incumbent publication (null when use_plan is off).
  [[nodiscard]] std::shared_ptr<const nn::ExecutionPlan> published_plan()
      const;
  [[nodiscard]] int replicas() const { return static_cast<int>(replicas_.size()); }
  [[nodiscard]] std::size_t queue_depth() const { return queue_.depth(); }
  [[nodiscard]] bool draining() const { return queue_.closed(); }

 private:
  struct Replica {
    int index = 0;
    nn::Mlp model;
    ReplicaBackend backend;
    std::thread worker;
    std::atomic<ReplicaState> state{ReplicaState::kIdle};
    std::atomic<int> incarnation{0};
    std::atomic<std::uint64_t> batches{0};
    std::atomic<std::int64_t> heartbeat_ns{0};  ///< steady-clock stamp
    std::atomic<bool> stall_flagged{false};
    /// Published-weights version this replica serves.  Worker-private
    /// while alive (only touched by the worker thread and, between
    /// incarnations, by the supervisor holding the joined thread).
    std::uint64_t weights_seen = 0;
    /// Candidate (canary) weights this replica serves, when a canary is
    /// live and adopted.  Worker-private like `model`; cleared at the
    /// batch boundary after the canary ends.
    std::optional<nn::Mlp> canary_model;
    std::uint64_t canary_seen = 0;  ///< canary sequence adopted (0 = none)
    /// Traffic split cached at adoption, so routing within a batch is a
    /// pure function of replica state (no racing reads of the knob).
    std::uint32_t canary_percent = 0;
    /// Compiled plans adopted alongside the models above (worker-private
    /// the same way).  Null runs the group through per-op dispatch — the
    /// snapshot-restore path, where the healed weights have no published
    /// plan, and use_plan == false.
    std::shared_ptr<const nn::ExecutionPlan> plan;
    std::shared_ptr<const nn::ExecutionPlan> canary_plan;
    /// Plan-run scratch: grown at adoption, allocation-free per batch.
    nn::PlanArena arena;

    Replica(int idx, const nn::Mlp& m) : index(idx), model(m) {}
  };

  /// One immutable published weight set.  Readers grab the shared_ptr
  /// under swap_mutex_ and copy the model outside it — the struct itself
  /// is never mutated after publication, so there are no torn reads.
  struct PublishedModel {
    std::uint64_t version = 0;
    nn::Mlp model;
    std::int64_t published_ns = 0;  ///< steady-clock stamp of hot_swap()
    /// Compiled plan of `model` (null when use_plan is off).  Published and
    /// adopted atomically with the weights, so a replica's (model, plan)
    /// pair always describes one publication.
    std::shared_ptr<const nn::ExecutionPlan> plan;
  };

  [[nodiscard]] ReplicaBackend make_backend(int replica, int incarnation) const;
  void start_worker(Replica& replica);
  void worker_loop(Replica& replica);
  /// Serves one batch.  Returns false when the replica's hardware died
  /// (batch already requeued) and the worker must exit.
  [[nodiscard]] bool serve_batch(Replica& replica, std::vector<Request>& batch);
  /// Runs one (tier, arm) share of a batch through `backend` with `model`'s
  /// weights and fulfils its promises.  `canary_arm`/`served_version` stamp
  /// the responses (incumbent version, or the canary sequence when the
  /// candidate served).  `cut_size` is the size of the originally cut batch
  /// (what responses report).  Returns false on HardwareFailure (group
  /// requeued).
  /// `plan` selects the execution path: non-null runs Plan::run in the
  /// replica's arena (bit-identical, allocation-free), null dispatches
  /// per-op through Mlp::forward_batch.
  [[nodiscard]] bool serve_group(Replica& replica, std::vector<Request>& group,
                                 const nn::Mlp& model,
                                 const nn::ExecutionPlan* plan,
                                 nn::MatvecBackend& backend, ServingTier served,
                                 bool canary_arm, std::uint64_t served_version,
                                 Clock::time_point formed,
                                 std::size_t cut_size);
  /// Requeues `r` for another attempt, or fulfils it as kFailed when the
  /// attempt budget is spent.  `replica`/`incarnation` name the attempt
  /// that just failed (appended to the request's attempt log; -1/0 when no
  /// replica was involved) — this is the retry edge the flight recorder
  /// and trace tree preserve across incarnations.
  void retry_or_fail(Request&& r, const std::string& why, int replica,
                     int incarnation);
  void fail_request(Request&& r, const std::string& why);
  /// Feeds one terminal outcome to the flight recorder (no-op when the
  /// recorder is off).
  void flight_observe_shed(std::uint64_t id, ServingTier tier);
  /// Auto-dump helper: dumps to config_.flight.dump_path when set.
  void flight_autodump(std::string_view reason);
  void heartbeat(Replica& replica) const;
  void supervisor_loop();
  void restart_replica(Replica& replica);
  /// Adopts the latest published weights at a batch boundary (fast
  /// acquire-load no-op when the replica is current).
  void maybe_adopt_weights(Replica& replica);
  /// Model a restarted incarnation should serve: the snapshot when
  /// configured and loadable, the latest published weights otherwise.
  /// `seen_version` is set to the published version the choice reflects.
  /// `plan` is the published plan when the published weights were chosen,
  /// null when the snapshot was — snapshot weights have no published plan,
  /// so the healed replica serves per-op until the next publication.
  [[nodiscard]] nn::Mlp restore_model_for_restart(
      std::uint64_t& seen_version,
      std::shared_ptr<const nn::ExecutionPlan>& plan);
  /// Compiles `model` for publication, or returns null when use_plan is
  /// off.
  [[nodiscard]] std::shared_ptr<const nn::ExecutionPlan> compile_plan(
      const nn::Mlp& model) const;
  /// Shared tail of hot_swap and canary promotion: publishes (model, plan)
  /// as the new incumbent version under swap_mutex_ and books the swap.
  void publish_incumbent(const nn::Mlp& model,
                         std::shared_ptr<const nn::ExecutionPlan> plan);
  /// Fails everything still queued after the workers exited (all replicas
  /// dead): the explicit degraded-drain path.
  void fail_leftovers();
  /// Publishes exact p50/p99 sojourn gauges to telemetry (no-op when
  /// telemetry is off).
  void publish_slo_gauges(const LatencySummary& sojourn) const;

  ServerConfig config_;
  nn::Mlp model_;  ///< pristine copy for restart re-cloning
  int input_dim_ = 0;
  RequestQueue queue_;
  std::vector<std::unique_ptr<Replica>> replicas_;
  std::unique_ptr<FlightRecorder> flight_;  ///< null unless flight.enabled

  std::atomic<std::uint64_t> next_id_{0};
  std::atomic<std::uint64_t> submitted_{0};
  std::atomic<std::uint64_t> blip_shed_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::atomic<std::uint64_t> failed_{0};
  std::atomic<std::uint64_t> batches_{0};
  std::atomic<std::uint64_t> slo_violations_{0};
  std::atomic<std::uint64_t> retries_{0};
  std::atomic<std::uint64_t> deaths_{0};
  std::atomic<std::uint64_t> restarts_{0};
  std::atomic<std::uint64_t> stalls_{0};
  std::atomic<std::uint64_t> swaps_{0};
  std::atomic<std::uint64_t> adoptions_{0};
  std::atomic<std::uint64_t> snapshot_restores_{0};
  std::atomic<std::uint64_t> snapshot_restore_failures_{0};
  std::atomic<std::uint64_t> quantized_dispatches_{0};
  std::atomic<std::uint64_t> exact_dispatches_{0};
  std::atomic<std::uint64_t> fast_fallbacks_{0};

  /// Hot-swap publication point.  weights_version_ mirrors
  /// published_->version so workers can check currency with one
  /// acquire-load before taking the mutex.  The canary publication shares
  /// the same mutex: canary_version_ == 0 means no candidate; a non-zero
  /// value is the live canary's sequence number and canary_published_
  /// holds its immutable weights.  Sequences are never reused (canary_seq_
  /// is monotone), so a worker detects "ended then restarted" purely by
  /// comparing its adopted sequence against the live one.
  mutable std::mutex swap_mutex_;
  std::shared_ptr<const PublishedModel> published_;
  std::shared_ptr<const PublishedModel> canary_published_;
  std::atomic<std::uint64_t> weights_version_{0};
  std::atomic<std::uint64_t> canary_version_{0};
  std::atomic<std::uint32_t> canary_percent_{0};
  std::uint64_t canary_seq_ = 0;  ///< monotone canary ids (under swap_mutex_)
  std::atomic<std::uint64_t> canary_starts_{0};
  std::atomic<std::uint64_t> canary_promotes_{0};
  std::atomic<std::uint64_t> canary_rollbacks_{0};
  std::atomic<std::uint64_t> canary_dispatches_{0};
  std::atomic<std::uint64_t> incumbent_dispatches_{0};
  LatencyRecorder sojourn_;
  LatencyRecorder queue_wait_;
  LatencyRecorder service_;

  /// Bills of incarnations that died (folded in at restart/drain).
  mutable std::mutex ledger_mutex_;
  core::PhotonicLedger retired_ledger_;

  // The supervisor wakes on its interval or on a death notification.  The
  // flags are atomics so a dying worker never needs supervisor_mutex_ —
  // the supervisor may be holding it while joining that very worker.  A
  // notify that races the wait is recovered by the periodic wake-up.
  std::thread supervisor_;
  std::mutex supervisor_mutex_;
  std::condition_variable supervisor_cv_;
  std::atomic<bool> supervisor_stop_{false};
  std::atomic<bool> death_pending_{false};

  mutable std::mutex drain_mutex_;
  bool drained_ = false;
};

}  // namespace trident::serving
