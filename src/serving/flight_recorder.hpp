// Black-box flight recorder: tail-based trace retention for postmortems.
//
// An unattended edge box cannot stream every trace — but after a chaos
// fault, a replica death, or an SLO breach, the *interesting* requests
// must still be explainable.  The recorder watches every terminal request
// outcome (completed, failed, shed) and keeps a full per-request record
// only when the request was anomalous — failed, shed, SLO-violating,
// deadline-missed, retried, or slow — plus a deterministic 1-in-N sample
// of healthy traffic as a baseline.  Records live in a bounded ring
// buffer (oldest evicted first, evictions counted), so memory stays flat
// no matter how long the box runs.
//
// dump() serialises the ring through state::atomic_write_file — the same
// temp + fsync + rename path snapshots use — so a crash mid-dump never
// leaves a torn postmortem.  The artifact is two lines, each independently
// parseable:
//
//   {"schema":"trident-flight-v1","checksum":"<fnv1a64 hex>","payload_bytes":N}
//   {"flight_recorder_version":1,"reason":...,"records":[...],...}
//
// The checksum is FNV-1a 64 over exactly the payload_bytes bytes of the
// second line, verifiable from C++ (verify()) and from the stdlib-only
// Python validator (scripts/validate_metrics.py --flight).
//
// Determinism: with FlightRecorderConfig::deterministic set, the dump
// omits wall-clock timings and orders records by trace id — a fixed
// chaos seed and submission order then reproduce the dump byte-for-byte
// (the acceptance soak pins this).
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "serving/request.hpp"

namespace trident::serving {

struct FlightRecorderConfig {
  bool enabled = false;
  /// Ring capacity in records; the oldest record is evicted (and counted)
  /// when a kept record arrives at capacity.
  std::size_t capacity = 1024;
  /// Deterministic healthy-traffic sample: keep requests whose trace id is
  /// divisible by this (0 disables sampling; 1 keeps everything).
  std::uint64_t sample_every = 64;
  /// Keep any request slower than this sojourn (seconds; 0 disables).
  double slow_threshold_s = 0.0;
  /// Byte-stable dumps: omit wall-clock timings, order records by trace
  /// id.  For seeded chaos soaks and the reproducibility tests.
  bool deterministic = false;
  /// Auto-dump target for replica deaths and drain ("" disables
  /// auto-dumping; explicit dump() calls still work).
  std::string dump_path;
};

/// Terminal record of one request, as the recorder keeps it.
struct FlightRecord {
  std::uint64_t trace_id = 0;
  std::uint64_t request_id = 0;
  std::string outcome;      ///< "ok" | "failed" | "shed"
  std::string keep_reason;  ///< which rule retained it ("sampled", "failed", …)
  ServingTier tier = ServingTier::kExact;
  bool tier_fallback = false;  ///< kFast request served exact
  int attempts = 0;            ///< service attempts consumed
  int replica = -1;            ///< replica that fulfilled it (-1: none)
  int incarnation = 0;         ///< incarnation of that replica
  std::size_t batch_size = 0;
  bool slo_violated = false;
  bool deadline_missed = false;
  /// Spent (failed) attempts, oldest first — replica/incarnation hops and
  /// the error each one hit.
  std::vector<AttemptNote> attempt_log;
  ResponseTiming timing;  ///< omitted from deterministic dumps
};

/// Parsed view of a dump file (verify()/tests; the Python validator does
/// the schema-level checking).
struct FlightDumpInfo {
  std::uint64_t checksum = 0;
  std::size_t payload_bytes = 0;
  std::string payload;  ///< the verified payload line
};

class FlightRecorder {
 public:
  explicit FlightRecorder(FlightRecorderConfig config);

  FlightRecorder(const FlightRecorder&) = delete;
  FlightRecorder& operator=(const FlightRecorder&) = delete;

  /// Feeds one terminal request outcome.  Applies the tail-based keep
  /// decision; kept records enter the ring (evicting the oldest at
  /// capacity).  Thread-safe.
  void observe(FlightRecord record);

  /// Renders the current ring as a complete dump artifact (header line +
  /// payload line).  `reason` is stamped into the payload
  /// ("replica_death", "chaos_fault", "exit", …).
  [[nodiscard]] std::string render(std::string_view reason) const;

  /// Atomically writes render() to `path` (state::atomic_write_file).
  void dump(const std::string& path, std::string_view reason) const;

  /// Parses and checksum-verifies a dump produced by dump()/render().
  /// Throws trident::Error on a malformed header, a payload shorter than
  /// advertised, or a checksum mismatch.
  [[nodiscard]] static FlightDumpInfo verify(std::string_view bytes);

  [[nodiscard]] std::size_t size() const;
  [[nodiscard]] std::vector<FlightRecord> records() const;
  [[nodiscard]] std::uint64_t observed() const;
  [[nodiscard]] std::uint64_t kept() const;
  [[nodiscard]] std::uint64_t evicted() const;
  [[nodiscard]] std::uint64_t dumps() const;
  [[nodiscard]] const FlightRecorderConfig& config() const { return config_; }

 private:
  /// The tail-based sampling rule.  Returns the retention reason, or an
  /// empty view to discard.
  [[nodiscard]] std::string_view keep_reason(const FlightRecord& r) const;

  FlightRecorderConfig config_;
  mutable std::mutex mutex_;
  std::vector<FlightRecord> ring_;  ///< insertion-ordered, bounded
  std::uint64_t observed_ = 0;
  std::uint64_t kept_ = 0;
  std::uint64_t evicted_ = 0;
  mutable std::atomic<std::uint64_t> dumps_{0};
};

}  // namespace trident::serving
