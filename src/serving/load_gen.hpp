// Open-loop Poisson load generator.
//
// Drives a Server with the same arrival process the analytic model in
// core/queueing assumes: exponential inter-arrival gaps, scheduled on an
// *absolute* timeline fixed before the run starts.  Open-loop means a slow
// server does not slow the arrivals down — the backlog grows instead,
// which is what real edge traffic does and what makes the measured sojourn
// comparable to the M/D/1 prediction.
#pragma once

#include <cstdint>
#include <functional>

#include "nn/matrix.hpp"
#include "serving/server.hpp"
#include "serving/slo.hpp"

namespace trident::serving {

struct LoadGenConfig {
  /// Offered arrival rate λ.  0 is a legal degenerate load: nothing ever
  /// arrives and run_poisson_load returns an empty report immediately.
  double target_qps = 1000.0;
  /// Total arrivals to offer (0 = empty timeline, returns immediately).
  int requests = 1000;
  std::uint64_t seed = 0x10ADull;
  /// Spin (rather than sleep) for the tail of each inter-arrival gap to
  /// keep the arrival process faithful at sub-millisecond rates.  The
  /// spin window is bounded, so long gaps still sleep.
  bool precise_pacing = true;
};

/// What one load run measured.  Latency summaries are computed from the
/// responses' own timing stamps (admission → completion), so they hold
/// with telemetry compiled out.
struct LoadReport {
  int offered = 0;
  int accepted = 0;
  int shed = 0;
  double duration_s = 0.0;      ///< first arrival to last response
  double offered_qps = 0.0;     ///< realised arrival rate
  double completed_qps = 0.0;   ///< goodput
  LatencySummary sojourn;
  LatencySummary queue_wait;
  LatencySummary service;
};

/// Offers `config.requests` Poisson arrivals to `server` and blocks until
/// every accepted request completes.  `make_input` produces the i-th
/// request payload (called on the generator thread, in arrival order).
[[nodiscard]] LoadReport run_poisson_load(
    Server& server, const LoadGenConfig& config,
    const std::function<nn::Vector(int)>& make_input);

}  // namespace trident::serving
