#include "serving/load_gen.hpp"

#include <chrono>
#include <cmath>
#include <thread>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace trident::serving {

namespace {

/// sleep_until with a bounded spin tail: OS timers overshoot by tens of
/// microseconds, which distorts a sub-millisecond Poisson schedule; the
/// final stretch is spun on the steady clock instead.
void pace_until(Clock::time_point deadline, bool precise) {
  constexpr auto kSpinWindow = std::chrono::microseconds(150);
  if (!precise) {
    std::this_thread::sleep_until(deadline);
    return;
  }
  const auto sleep_deadline = deadline - kSpinWindow;
  if (Clock::now() < sleep_deadline) {
    std::this_thread::sleep_until(sleep_deadline);
  }
  while (Clock::now() < deadline) {
    // spin
  }
}

}  // namespace

LoadReport run_poisson_load(
    Server& server, const LoadGenConfig& config,
    const std::function<nn::Vector(int)>& make_input) {
  TRIDENT_REQUIRE(config.target_qps >= 0.0, "target_qps must be non-negative");
  TRIDENT_REQUIRE(config.requests >= 0, "requests must be non-negative");
  TRIDENT_REQUIRE(make_input != nullptr, "make_input must be callable");

  // Degenerate loads terminate immediately instead of hanging: a zero rate
  // means infinite inter-arrival gaps (nothing ever arrives), and zero
  // requests means an empty timeline.  Both yield an all-zero report.
  if (config.target_qps == 0.0 || config.requests == 0) {
    return LoadReport{};
  }

  // Fix the whole arrival timeline up front (open loop): arrival i happens
  // at start + Σ gaps, whatever the server does.
  Rng rng(config.seed);
  std::vector<double> arrival_s;
  arrival_s.reserve(static_cast<std::size_t>(config.requests));
  double t = 0.0;
  for (int i = 0; i < config.requests; ++i) {
    t += -std::log(1.0 - rng.uniform()) / config.target_qps;
    arrival_s.push_back(t);
  }

  LoadReport report;
  report.offered = config.requests;
  std::vector<std::future<Response>> futures;
  futures.reserve(static_cast<std::size_t>(config.requests));

  const Clock::time_point start = Clock::now();
  for (int i = 0; i < config.requests; ++i) {
    const auto deadline =
        start + std::chrono::duration_cast<Clock::duration>(
                    std::chrono::duration<double>(arrival_s[static_cast<std::size_t>(i)]));
    pace_until(deadline, config.precise_pacing);
    auto future = server.submit(make_input(i));
    if (future.has_value()) {
      futures.push_back(std::move(*future));
    } else {
      ++report.shed;
    }
  }

  LatencyRecorder sojourn, queue_wait, service;
  for (auto& f : futures) {
    const Response r = f.get();
    sojourn.record(r.timing.sojourn_s);
    queue_wait.record(r.timing.queue_wait_s);
    service.record(r.timing.service_s);
  }
  const Clock::time_point end = Clock::now();

  report.accepted = static_cast<int>(futures.size());
  report.duration_s = std::chrono::duration<double>(end - start).count();
  if (report.duration_s > 0.0) {
    report.offered_qps =
        static_cast<double>(report.offered) / report.duration_s;
    report.completed_qps =
        static_cast<double>(report.accepted) / report.duration_s;
  }
  report.sojourn = sojourn.summary();
  report.queue_wait = queue_wait.summary();
  report.service = service.summary();
  return report;
}

}  // namespace trident::serving
