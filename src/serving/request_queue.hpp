// Bounded MPMC request queue with admission control and a deadline-aware
// micro-batch pop.
//
// This is the front door of the serving runtime: producers (client threads
// or the load generator) push requests through an explicit admission
// policy, and replica workers pull *batches* out.  The two serving-side
// decisions the paper's latency story depends on live here:
//
//   * admission / backpressure — a hard capacity bound plus a shed
//     watermark.  kReject sheds the request immediately once the depth
//     reaches the watermark (bounded queueing delay, explicit load
//     shedding); kBlock applies backpressure by blocking the producer
//     until space frees up (closed-loop clients);
//   * micro-batching — pop_batch() returns as soon as `max_batch`
//     requests are available, or when `max_wait` has elapsed since the
//     popper first saw a request, whichever comes first.  That is the
//     classic deadline-aware batch cut: the head request never waits more
//     than max_wait for co-batchers, and a deep queue yields full batches
//     with no added delay.
//
// The queue is intentionally a single shared FIFO rather than per-replica
// queues: every replica pops from the common backlog, which is the
// least-loaded dispatch policy in its simplest form (an idle replica takes
// the next batch; nobody sits on private work while a peer starves).
#pragma once

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <vector>

#include "serving/request.hpp"

namespace trident::serving {

/// What admission does when the queue is at the shed watermark / capacity.
enum class OverloadPolicy {
  kReject,  ///< shed immediately (open-loop traffic; bounded queueing delay)
  kBlock,   ///< block the producer until space frees (closed-loop clients)
};

struct AdmissionConfig {
  std::size_t capacity = 1024;  ///< hard bound on queued requests
  /// Depth at which kReject starts shedding; clamped to capacity.  The gap
  /// between watermark and capacity absorbs in-flight pushes when multiple
  /// producers race.  0 means "use capacity".
  std::size_t shed_watermark = 0;
  OverloadPolicy policy = OverloadPolicy::kReject;
};

enum class AdmitResult {
  kAccepted,
  kShed,    ///< rejected by the overload policy
  kClosed,  ///< queue closed (server draining / shut down)
};

class RequestQueue {
 public:
  explicit RequestQueue(const AdmissionConfig& config);

  RequestQueue(const RequestQueue&) = delete;
  RequestQueue& operator=(const RequestQueue&) = delete;

  /// Admits `r` under the configured policy.  On kAccepted the queue owns
  /// the request; otherwise `r` is left untouched (the caller still holds
  /// the promise and can fail it).
  [[nodiscard]] AdmitResult push(Request& r);

  /// Puts an already-admitted request back at the HEAD of the queue (a
  /// retry after a transient service fault).  Bypasses admission: the
  /// request was accepted once and its admission stamp is preserved, so
  /// it is not re-counted and is taken back even while the queue is
  /// closed/draining — a retry must never be shed.  Head placement keeps
  /// the retried request's sojourn bounded instead of sending it to the
  /// back of the backlog.  Depth may transiently exceed `capacity` by the
  /// in-flight batch size; `requeued()` counts these re-entries.
  void requeue(Request&& r);

  /// Pops up to `max_batch` requests.  Blocks until at least one request
  /// is available.  Once the first request is visible, waits at most
  /// `max_wait` for the batch to fill before cutting it; if a sibling
  /// popper drains the queue during that window, goes back to waiting.
  /// An empty result is therefore a definitive shutdown signal: it is
  /// returned only when the queue is closed *and* drained.
  [[nodiscard]] std::vector<Request> pop_batch(std::size_t max_batch,
                                               std::chrono::microseconds max_wait);

  /// Closes admission: subsequent pushes return kClosed, blocked producers
  /// wake with kClosed, and poppers drain what was accepted then observe
  /// empty-and-closed.
  void close();

  [[nodiscard]] bool closed() const;
  [[nodiscard]] std::size_t depth() const;
  [[nodiscard]] std::size_t capacity() const { return capacity_; }
  [[nodiscard]] std::size_t shed_watermark() const { return watermark_; }

  /// Admission counters (monotonic, for reports and tests).
  [[nodiscard]] std::uint64_t accepted() const;
  [[nodiscard]] std::uint64_t shed() const;
  /// Retry re-entries via requeue() (not re-counted in accepted()).
  [[nodiscard]] std::uint64_t requeued() const;
  /// Requests handed out through pop_batch so far.  Conservation law (the
  /// fuzz suite pins it): popped() + depth() == accepted() + requeued().
  [[nodiscard]] std::uint64_t popped() const;

  /// Threads currently blocked inside pop_batch (either waiting for the
  /// first request or holding a batch-fill window open).  Deterministic
  /// synchronization hook for tests: "popper A is parked again" is
  /// observable instead of being approximated with a wall-clock sleep.
  [[nodiscard]] std::size_t poppers_waiting() const;
  /// Producers currently blocked in push under OverloadPolicy::kBlock.
  [[nodiscard]] std::size_t producers_waiting() const;

 private:
  const std::size_t capacity_;
  const std::size_t watermark_;
  const OverloadPolicy policy_;

  mutable std::mutex mutex_;
  std::condition_variable not_empty_cv_;
  std::condition_variable space_cv_;
  std::deque<Request> queue_;
  bool closed_ = false;
  std::uint64_t accepted_ = 0;
  std::uint64_t shed_ = 0;
  std::uint64_t requeued_ = 0;
  std::uint64_t popped_ = 0;
  std::size_t poppers_waiting_ = 0;
  std::size_t producers_waiting_ = 0;
};

}  // namespace trident::serving
