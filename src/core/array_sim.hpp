// Event-driven PE-array simulator.
//
// The dataflow analyzer (dataflow/analyzer.hpp) computes latency with a
// closed-form rounds model; this module *executes* the same schedule as a
// discrete-event simulation: every tile of every layer becomes a
// program-then-stream job, jobs are dispatched to the earliest-available
// PE, layers synchronise on a barrier (a layer's inputs are the previous
// layer's outputs), and the ADC/activation pass of non-photonic output
// paths occupies the PEs after the streams.
//
// Two uses:
//   * validation — the simulated makespan must bracket the analytical
//     estimate (the rounds model quantises to whole rounds; the simulator
//     packs partial rounds), which pins both implementations;
//   * visibility — per-PE busy times, utilisation, and an optional event
//     trace show *where* the time goes (programming vs streaming), which
//     the closed form cannot.
#pragma once

#include <string>
#include <vector>

#include "dataflow/array.hpp"
#include "dataflow/cost.hpp"
#include "nn/layer.hpp"

namespace trident::core {

using dataflow::EnergyBreakdown;
using dataflow::PhotonicArrayDesc;
using units::Time;

enum class SimEventKind { kProgram, kStream, kOutputPass };

struct SimEvent {
  SimEventKind kind = SimEventKind::kProgram;
  int pe = 0;
  std::string layer;
  std::uint64_t tile = 0;  ///< tile index within the layer
  Time start;
  Time end;
};

struct ArraySimConfig {
  int batch = 1;
  /// Keep the full event trace (bounded; large models emit millions of
  /// events, so tracing is off by default and capped when on).
  bool record_trace = false;
  std::size_t trace_limit = 100000;
};

struct ArraySimResult {
  Time makespan;
  EnergyBreakdown energy;
  std::vector<Time> pe_busy;     ///< busy time per PE
  double utilization = 0.0;      ///< mean busy / makespan
  std::uint64_t tiles_executed = 0;
  std::uint64_t events = 0;      ///< total events (trace may be truncated)
  std::vector<SimEvent> trace;   ///< only if record_trace

  [[nodiscard]] double inferences_per_second(int batch) const {
    return static_cast<double>(batch) / makespan.s();
  }
};

/// Executes `model` on `array` and returns the simulated schedule result.
[[nodiscard]] ArraySimResult simulate_array(const nn::ModelSpec& model,
                                            const PhotonicArrayDesc& array,
                                            const ArraySimConfig& config = {});

}  // namespace trident::core
