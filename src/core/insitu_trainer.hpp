// High-level in-situ training session.
//
// The library's lower layers expose the pieces — Mlp over MatvecBackend,
// the quantized PhotonicBackend, the energy ledger, the accelerator-level
// cost models.  A TrainingSession ties them together into the API a user
// of "a photonic accelerator that trains on-device" actually wants:
// configure hardware fidelity, hand over a dataset, get back a trained
// network plus the convergence record and the *hardware bill* (optical
// energy, GST write pulses, wall-clock on the accelerator, wear).
#pragma once

#include <memory>
#include <optional>
#include <string>

#include "core/photonic_backend.hpp"
#include "core/variation.hpp"
#include "nn/dataset.hpp"
#include "nn/train.hpp"
#include "state/snapshot.hpp"

namespace trident::core {

struct SessionConfig {
  std::vector<int> layer_sizes;
  nn::Activation activation = nn::Activation::kGstPhotonic;
  nn::TrainConfig schedule;
  PhotonicBackendConfig hardware;
  /// Optional fabrication variation (unset = ideal chip).
  std::optional<VariationConfig> variation;
  std::uint64_t init_seed = 7;
  /// Held-out fraction used for the reported test accuracy.
  double test_fraction = 0.2;
  /// Crash safety: with n > 0 and a checkpoint_path, run() writes an
  /// atomic state::Snapshot after every n-th epoch (and after the final
  /// one).  A process that dies mid-schedule resumes via resume() with
  /// bit-identical continuation.  Plain (non-variation) hardware only.
  int checkpoint_every_n_epochs = 0;
  std::string checkpoint_path;
};

struct SessionReport {
  std::vector<double> epoch_loss;
  std::vector<double> epoch_accuracy;  ///< training accuracy per epoch
  double test_accuracy = 0.0;
  /// The hardware bill for the whole session.
  PhotonicLedger ledger;
  units::Energy optical_energy;
  units::Time optical_time;
  /// Mean GST writes per weight cell over the session — multiply by a
  /// deployment's sessions/day against the 1e12-cycle rating.
  double writes_per_weight = 0.0;
};

class TrainingSession {
 public:
  explicit TrainingSession(const SessionConfig& config);

  /// Trains on `data` (split internally per test_fraction) and returns the
  /// full report.  Can be called repeatedly; the network persists across
  /// calls (continual training), the report covers the latest call.
  SessionReport run(nn::Dataset data);

  /// Inference through the session's hardware.
  [[nodiscard]] nn::Vector predict(const nn::Vector& x);

  [[nodiscard]] const nn::Mlp& network() const { return net_; }
  [[nodiscard]] const SessionConfig& config() const { return config_; }

  /// Cumulative hardware books of this session's backend (resumed history
  /// included).  Reports carry per-run deltas; this is the running total.
  [[nodiscard]] PhotonicLedger ledger() const;

  /// Writes the session's current non-volatile state (weights, ledger,
  /// hardware RNG, bank residency) as a deploy snapshot — no training
  /// progress, so a resume()d schedule starts at epoch 0 on these weights.
  /// Plain (non-variation) hardware only.
  void checkpoint(const std::string& path) const;

  /// Restores a snapshot written by checkpoint() or the periodic
  /// checkpointing of run().  The schedule fingerprint (learning rate,
  /// seeds, batch size, hardware quantization/noise) must match this
  /// session's config — resuming under different arithmetic would silently
  /// diverge and is refused.  The next run() continues at the snapshotted
  /// epoch bit-identically to an uninterrupted schedule.
  void resume(const std::string& path);

 private:
  [[nodiscard]] nn::MatvecBackend& backend();
  /// Layer whose matrix is resident in the backend bank (-1: none).
  [[nodiscard]] int resident_layer() const;
  void write_checkpoint(const std::string& path,
                        std::uint64_t epochs_completed,
                        const std::vector<double>& loss,
                        const std::vector<double>& accuracy) const;

  SessionConfig config_;
  nn::Mlp net_;
  std::unique_ptr<PhotonicBackend> plain_;
  std::unique_ptr<VariationBackend> varied_;
  std::uint64_t ledger_mark_writes_ = 0;
  /// Progress restored by resume(), consumed by the next run().
  int resume_epochs_ = 0;
  std::vector<double> resume_loss_;
  std::vector<double> resume_accuracy_;
};

}  // namespace trident::core
