// High-level in-situ training session.
//
// The library's lower layers expose the pieces — Mlp over MatvecBackend,
// the quantized PhotonicBackend, the energy ledger, the accelerator-level
// cost models.  A TrainingSession ties them together into the API a user
// of "a photonic accelerator that trains on-device" actually wants:
// configure hardware fidelity, hand over a dataset, get back a trained
// network plus the convergence record and the *hardware bill* (optical
// energy, GST write pulses, wall-clock on the accelerator, wear).
#pragma once

#include <memory>
#include <optional>

#include "core/photonic_backend.hpp"
#include "core/variation.hpp"
#include "nn/dataset.hpp"
#include "nn/train.hpp"

namespace trident::core {

struct SessionConfig {
  std::vector<int> layer_sizes;
  nn::Activation activation = nn::Activation::kGstPhotonic;
  nn::TrainConfig schedule;
  PhotonicBackendConfig hardware;
  /// Optional fabrication variation (unset = ideal chip).
  std::optional<VariationConfig> variation;
  std::uint64_t init_seed = 7;
  /// Held-out fraction used for the reported test accuracy.
  double test_fraction = 0.2;
};

struct SessionReport {
  std::vector<double> epoch_loss;
  std::vector<double> epoch_accuracy;  ///< training accuracy per epoch
  double test_accuracy = 0.0;
  /// The hardware bill for the whole session.
  PhotonicLedger ledger;
  units::Energy optical_energy;
  units::Time optical_time;
  /// Mean GST writes per weight cell over the session — multiply by a
  /// deployment's sessions/day against the 1e12-cycle rating.
  double writes_per_weight = 0.0;
};

class TrainingSession {
 public:
  explicit TrainingSession(const SessionConfig& config);

  /// Trains on `data` (split internally per test_fraction) and returns the
  /// full report.  Can be called repeatedly; the network persists across
  /// calls (continual training), the report covers the latest call.
  SessionReport run(nn::Dataset data);

  /// Inference through the session's hardware.
  [[nodiscard]] nn::Vector predict(const nn::Vector& x);

  [[nodiscard]] const nn::Mlp& network() const { return net_; }
  [[nodiscard]] const SessionConfig& config() const { return config_; }

 private:
  [[nodiscard]] nn::MatvecBackend& backend();

  SessionConfig config_;
  nn::Mlp net_;
  std::unique_ptr<PhotonicBackend> plain_;
  std::unique_ptr<VariationBackend> varied_;
  std::uint64_t ledger_mark_writes_ = 0;
};

}  // namespace trident::core
