#include "core/queueing.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace trident::core {

QueueingResult simulate_service(Time service_time,
                                const QueueingConfig& config) {
  TRIDENT_REQUIRE(service_time.s() > 0.0, "service time must be positive");
  // The precondition, asserted: at ρ ≥ 1 the queue has no steady state and
  // the simulated sojourns diverge with the request count.
  TRIDENT_REQUIRE(config.utilization > 0.0 && config.utilization < 1.0,
                  "utilization must be in (0, 1)");
  TRIDENT_REQUIRE(config.requests >= 100, "need a meaningful request count");
  TRIDENT_REQUIRE(config.batch_size >= 1, "batch_size must be at least 1");

  const double mu = 1.0 / service_time.s();  // batch service rate
  const auto batch_cap = static_cast<std::size_t>(config.batch_size);
  // Effective capacity is batch_size requests per service interval.
  const double lambda =
      config.utilization * mu * static_cast<double>(config.batch_size);

  Rng rng(config.seed);
  std::vector<double> arrivals;
  arrivals.reserve(static_cast<std::size_t>(config.requests));
  double arrival = 0.0;
  for (int i = 0; i < config.requests; ++i) {
    // Exponential inter-arrival times → Poisson process.
    arrival += -std::log(1.0 - rng.uniform()) / lambda;
    arrivals.push_back(arrival);
  }

  // Gated batch service: when the server frees up, it takes everything
  // already queued (up to batch_cap) as one batch; an idle server starts
  // on the next arrival alone.
  std::vector<double> sojourns;
  sojourns.reserve(arrivals.size());
  std::size_t batches = 0;
  double server_free = 0.0;
  std::size_t head = 0;
  while (head < arrivals.size()) {
    const double start = std::max(arrivals[head], server_free);
    std::size_t tail = head + 1;
    while (tail < arrivals.size() && tail - head < batch_cap &&
           arrivals[tail] <= start) {
      ++tail;
    }
    const double done = start + service_time.s();
    for (std::size_t i = head; i < tail; ++i) {
      sojourns.push_back(done - arrivals[i]);
    }
    server_free = done;
    ++batches;
    head = tail;
  }

  const double mean_batch =
      static_cast<double>(sojourns.size()) / static_cast<double>(batches);
  std::sort(sojourns.begin(), sojourns.end());
  const auto at = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(sojourns.size() - 1));
    return Time::seconds(sojourns[idx]);
  };

  QueueingResult result;
  result.service = service_time;
  result.arrival_rate = lambda;
  double sum = 0.0;
  for (double s : sojourns) {
    sum += s;
  }
  result.mean_sojourn =
      Time::seconds(sum / static_cast<double>(sojourns.size()));
  result.p50 = at(0.50);
  result.p99 = at(0.99);
  // M/D/1: E[W] = ρ / (2 μ_eff (1 − ρ)); sojourn = W + service.  With
  // batching this treats the server as one of rate B·μ (approximation).
  const double rho = config.utilization;
  const double mu_eff = mu * static_cast<double>(config.batch_size);
  result.analytic_mean_wait =
      Time::seconds(rho / (2.0 * mu_eff * (1.0 - rho)));
  result.mean_batch = mean_batch;
  return result;
}

MmkResult analytic_mmk(Time service_mean, int k, double arrival_rate) {
  TRIDENT_REQUIRE(service_mean.s() > 0.0, "service time must be positive");
  TRIDENT_REQUIRE(k >= 1, "need at least one server");
  TRIDENT_REQUIRE(arrival_rate > 0.0, "arrival rate must be positive");
  const double mu = 1.0 / service_mean.s();
  const double a = arrival_rate / mu;  // offered load in erlangs
  const double rho = a / static_cast<double>(k);
  TRIDENT_REQUIRE(rho < 1.0, "M/M/k requires lambda < k*mu (stable queue)");

  // Erlang-B recurrence: B(0, a) = 1; B(j, a) = a·B(j−1)/(j + a·B(j−1)).
  // Each step stays in (0, 1], so the computation is stable for any k.
  double b = 1.0;
  for (int j = 1; j <= k; ++j) {
    b = a * b / (static_cast<double>(j) + a * b);
  }
  // Erlang C from Erlang B: C = B / (1 − ρ·(1 − B)).
  const double c = b / (1.0 - rho * (1.0 - b));

  MmkResult result;
  result.servers = k;
  result.arrival_rate = arrival_rate;
  result.utilization = rho;
  result.erlang_c = c;
  result.mean_wait =
      Time::seconds(c / (static_cast<double>(k) * mu - arrival_rate));
  result.mean_sojourn = Time::seconds(result.mean_wait.s() + 1.0 / mu);
  return result;
}

Time mm1_mean_sojourn(Time service_mean, double arrival_rate) {
  TRIDENT_REQUIRE(service_mean.s() > 0.0, "service time must be positive");
  const double mu = 1.0 / service_mean.s();
  TRIDENT_REQUIRE(arrival_rate >= 0.0 && arrival_rate < mu,
                  "M/M/1 requires 0 <= lambda < mu");
  return Time::seconds(1.0 / (mu - arrival_rate));
}

}  // namespace trident::core
