#include "core/queueing.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace trident::core {

QueueingResult simulate_service(Time service_time,
                                const QueueingConfig& config) {
  TRIDENT_REQUIRE(service_time.s() > 0.0, "service time must be positive");
  TRIDENT_REQUIRE(config.utilization > 0.0 && config.utilization < 1.0,
                  "utilization must be in (0, 1)");
  TRIDENT_REQUIRE(config.requests >= 100, "need a meaningful request count");

  const double mu = 1.0 / service_time.s();           // service rate
  const double lambda = config.utilization * mu;      // arrival rate

  Rng rng(config.seed);
  std::vector<double> sojourns;
  sojourns.reserve(static_cast<std::size_t>(config.requests));

  double arrival = 0.0;
  double server_free = 0.0;
  for (int i = 0; i < config.requests; ++i) {
    // Exponential inter-arrival times → Poisson process.
    arrival += -std::log(1.0 - rng.uniform()) / lambda;
    const double start = std::max(arrival, server_free);
    const double done = start + service_time.s();
    server_free = done;
    sojourns.push_back(done - arrival);
  }

  std::sort(sojourns.begin(), sojourns.end());
  const auto at = [&](double q) {
    const auto idx = static_cast<std::size_t>(
        q * static_cast<double>(sojourns.size() - 1));
    return Time::seconds(sojourns[idx]);
  };

  QueueingResult result;
  result.service = service_time;
  result.arrival_rate = lambda;
  double sum = 0.0;
  for (double s : sojourns) {
    sum += s;
  }
  result.mean_sojourn =
      Time::seconds(sum / static_cast<double>(sojourns.size()));
  result.p50 = at(0.50);
  result.p99 = at(0.99);
  // M/D/1: E[W] = ρ / (2 μ (1 − ρ)); sojourn = W + 1/μ.
  const double rho = config.utilization;
  result.analytic_mean_wait = Time::seconds(rho / (2.0 * mu * (1.0 - rho)));
  return result;
}

}  // namespace trident::core
