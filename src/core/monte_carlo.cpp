#include "core/monte_carlo.hpp"

#include "common/error.hpp"
#include "nn/train.hpp"
#include "parallel/thread_pool.hpp"

namespace trident::core {

McSummary monte_carlo(int trials,
                      const std::function<double(std::uint64_t)>& trial) {
  TRIDENT_REQUIRE(trials >= 1, "need at least one trial");
  std::vector<double> results(static_cast<std::size_t>(trials), 0.0);
  parallel_for(0, static_cast<std::size_t>(trials), [&](std::size_t i) {
    results[i] = trial(static_cast<std::uint64_t>(i));
  });

  RunningStats stats;
  for (double r : results) {
    stats.add(r);
  }
  McSummary summary;
  summary.trials = trials;
  summary.mean = stats.mean();
  summary.stddev = stats.stddev();
  summary.min = stats.min();
  summary.max = stats.max();
  return summary;
}

McSummary mc_training_accuracy(int weight_bits, int trials, int epochs,
                               double learning_rate, int batch_size) {
  return monte_carlo(trials, [=](std::uint64_t seed) {
    Rng data_rng(1000 + seed);
    nn::Dataset data = nn::two_moons(300, 0.12, data_rng);
    data.augment_bias();
    Rng init_rng(2000 + seed);
    nn::Mlp net({3, 16, 2}, nn::Activation::kGstPhotonic, init_rng);
    PhotonicBackendConfig cfg;
    cfg.weight_bits = weight_bits;
    cfg.seed = 3000 + seed;
    PhotonicBackend backend(cfg);
    nn::TrainConfig tc;
    tc.epochs = epochs;
    tc.learning_rate = learning_rate;
    tc.shuffle_seed = 4000 + seed;
    tc.batch_size = batch_size;
    return nn::fit(net, data, tc, backend).final_accuracy();
  });
}

McSummary mc_deployment_gap(double weight_offset_sigma, int trials) {
  return monte_carlo(trials, [=](std::uint64_t seed) {
    Rng data_rng(5000 + seed);
    nn::Dataset data = nn::pattern_classes(480, 8, 16, 0.05, data_rng);
    data.augment_bias();
    const auto [train_set, test_set] = data.split(0.25);
    VariationConfig cfg;
    cfg.gain_sigma = 0.10;
    cfg.weight_offset_sigma = weight_offset_sigma;
    cfg.row_offset_sigma = 0.05;
    cfg.seed = 6000 + seed;
    const DeploymentStudy s = deployment_study(
        train_set, test_set, {17, 24, 8}, cfg, 30, 0, 0.05, 7000 + seed);
    return s.float_accuracy - s.deployed_accuracy;
  });
}

}  // namespace trident::core
