#include "core/calibration.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace trident::core {

namespace {

/// Max |realized − target| across the bank.
[[nodiscard]] double max_error(const WeightBank& bank,
                               const nn::Matrix& targets) {
  double worst = 0.0;
  for (int r = 0; r < bank.rows(); ++r) {
    for (int c = 0; c < bank.cols(); ++c) {
      const double target = std::clamp(
          targets.at(static_cast<std::size_t>(r),
                     static_cast<std::size_t>(c)),
          -1.0, 1.0);
      worst = std::max(worst,
                       std::abs(bank.realized_weight(r, c) - target));
    }
  }
  return worst;
}

}  // namespace

CalibrationResult calibrate_program(WeightBank& bank,
                                    const nn::Matrix& targets,
                                    const CalibrationConfig& config) {
  TRIDENT_REQUIRE(config.tolerance > 0.0, "tolerance must be positive");
  TRIDENT_REQUIRE(config.max_iterations >= 1, "need at least one iteration");
  TRIDENT_REQUIRE(static_cast<int>(targets.rows()) == bank.rows() &&
                      static_cast<int>(targets.cols()) == bank.cols(),
                  "targets must match bank dimensions");

  // The device cannot do better than its own level grid: the effective
  // tolerance is at least the worst nearest-level error.
  const double tolerance =
      std::max(config.tolerance, bank.worst_quantization_error() + 1e-12);

  CalibrationResult result;
  result.cells_total =
      static_cast<std::uint64_t>(bank.rows()) *
      static_cast<std::uint64_t>(bank.cols());

  // Initial (open-loop) program.
  (void)bank.program(targets);
  result.initial_max_error = max_error(bank, targets);
  const std::uint64_t writes_after_first = bank.total_writes();

  // Write-verify loop: re-aim ONLY the offending cells by their measured
  // residual; converged cells are left untouched (re-programming them
  // would re-roll their placement noise).
  nn::Matrix corrected = targets;
  for (int iter = 0; iter < config.max_iterations; ++iter) {
    bool any_offender = false;
    for (int r = 0; r < bank.rows(); ++r) {
      for (int c = 0; c < bank.cols(); ++c) {
        const auto ur = static_cast<std::size_t>(r);
        const auto uc = static_cast<std::size_t>(c);
        const double target = std::clamp(targets.at(ur, uc), -1.0, 1.0);
        const double err = bank.realized_weight(r, c) - target;
        if (std::abs(err) > tolerance) {
          any_offender = true;
          // Aim past the target by the observed residual and rewrite just
          // this cell.
          corrected.at(ur, uc) =
              std::clamp(corrected.at(ur, uc) - err, -1.0, 1.0);
          (void)bank.program_cell(r, c, corrected.at(ur, uc));
        }
      }
    }
    if (!any_offender) {
      break;
    }
    ++result.iterations;
  }

  result.final_max_error = max_error(bank, targets);
  result.extra_writes = bank.total_writes() - writes_after_first;
  result.converged = result.final_max_error <= tolerance;
  for (int r = 0; r < bank.rows(); ++r) {
    for (int c = 0; c < bank.cols(); ++c) {
      const double target = std::clamp(
          targets.at(static_cast<std::size_t>(r),
                     static_cast<std::size_t>(c)),
          -1.0, 1.0);
      if (std::abs(bank.realized_weight(r, c) - target) <= tolerance) {
        ++result.cells_converged;
      }
    }
  }
  return result;
}

}  // namespace trident::core
