// Wear-levelling policies for GST cell endurance.
//
// The endurance analysis (core/endurance.hpp) shows the binding lifetime
// constraint under heavy workloads.  Wear spreads unevenly by default:
// tiles map to PEs round-robin from a fixed origin, so a model whose tile
// count is not a multiple of the PE count hammers the low-numbered PEs,
// and within a PE the activation cell of a busy row ages faster than an
// idle one.  A rotation policy — advance the tile→PE origin every batch —
// equalises long-run wear at zero hardware cost, extending the lifetime
// bound by the imbalance factor.  This module simulates both policies and
// reports the wear distribution.
#pragma once

#include <cstdint>
#include <vector>

#include "arch/photonic.hpp"
#include "nn/layer.hpp"

namespace trident::core {

enum class WearPolicy {
  kFixedOrigin,  ///< tiles always start at PE 0 (the naive schedule)
  kRotating,     ///< the start PE advances by one every inference
};

struct WearReport {
  std::vector<double> writes_per_pe;  ///< weight-cell writes, per PE
  double mean_writes = 0.0;
  double max_writes = 0.0;
  /// max / mean: 1.0 = perfectly level; the lifetime of the array is the
  /// lifetime of its most-worn cell, so this is the lifetime penalty of
  /// imbalance.
  double imbalance = 1.0;
};

/// Simulates `inferences` inferences of `model` on `accelerator`, tracking
/// cumulative weight-cell writes per PE under the given policy.
[[nodiscard]] WearReport simulate_wear(
    const nn::ModelSpec& model, const arch::PhotonicAccelerator& accelerator,
    std::uint64_t inferences, WearPolicy policy);

/// Lifetime extension factor of rotating vs fixed-origin scheduling (the
/// ratio of the two policies' max-wear figures).
[[nodiscard]] double rotation_benefit(
    const nn::ModelSpec& model, const arch::PhotonicAccelerator& accelerator,
    std::uint64_t inferences = 1000);

}  // namespace trident::core
