#include "core/trace_export.hpp"

#include <ostream>
#include <sstream>
#include <string>

#include "telemetry/exporters.hpp"

namespace trident::core {

namespace {

[[nodiscard]] const char* kind_name(SimEventKind kind) {
  switch (kind) {
    case SimEventKind::kProgram:
      return "program";
    case SimEventKind::kStream:
      return "stream";
    case SimEventKind::kOutputPass:
      return "output-pass";
  }
  return "?";
}

}  // namespace

void write_chrome_trace(const ArraySimResult& result, std::ostream& os) {
  // Shares telemetry's writer so schedule exports and live span traces
  // produce byte-compatible files (same escaping, same ns-rounded
  // timestamps) and can be concatenated or diffed in Perfetto workflows.
  telemetry::ChromeTraceWriter writer(os);
  for (const SimEvent& e : result.trace) {
    writer.event(e.layer + " #" + std::to_string(e.tile), kind_name(e.kind),
                 e.start.us(), (e.end - e.start).us(), 0,
                 static_cast<std::uint32_t>(e.pe));
  }
  writer.finish();
}

std::string chrome_trace_json(const ArraySimResult& result) {
  std::ostringstream os;
  write_chrome_trace(result, os);
  return os.str();
}

}  // namespace trident::core
