#include "core/trace_export.hpp"

#include <ostream>
#include <sstream>

namespace trident::core {

namespace {

[[nodiscard]] const char* kind_name(SimEventKind kind) {
  switch (kind) {
    case SimEventKind::kProgram:
      return "program";
    case SimEventKind::kStream:
      return "stream";
    case SimEventKind::kOutputPass:
      return "output-pass";
  }
  return "?";
}

/// JSON string escaping for the small character set layer names use.
[[nodiscard]] std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
    }
    out += c;
  }
  return out;
}

}  // namespace

void write_chrome_trace(const ArraySimResult& result, std::ostream& os) {
  os << "{\"traceEvents\":[";
  bool first = true;
  for (const SimEvent& e : result.trace) {
    if (!first) {
      os << ',';
    }
    first = false;
    os << "{\"name\":\"" << escape(e.layer) << " #" << e.tile << "\","
       << "\"cat\":\"" << kind_name(e.kind) << "\","
       << "\"ph\":\"X\","
       << "\"ts\":" << e.start.us() << ','
       << "\"dur\":" << (e.end - e.start).us() << ','
       << "\"pid\":0,\"tid\":" << e.pe << '}';
  }
  os << "],\"displayTimeUnit\":\"ns\"}";
}

std::string chrome_trace_json(const ArraySimResult& result) {
  std::ostringstream os;
  write_chrome_trace(result, os);
  return os.str();
}

}  // namespace trident::core
