// Trident Processing Element (Fig 1): the full device-level datapath.
//
//   WDM inputs → PCM-MRR weight bank → BPD (accumulate) → TIA →
//     forward:   GST activation cell → E/O laser → next PE
//     training:  LDSU latches f'(h); TIA gain reprogrammed on the backward
//                pass; outer products read per-ring products.
//
// One PE realises all three Table II encodings:
//   inference        bank ← W_k,       in ← x_k,       out = f(W_k x_k)
//   gradient vector  bank ← W_{k+1}ᵀ,  in ← δh_{k+1},  out = (Wᵀδh) ⊙ f'(h_k)
//   outer product    bank ← y_{k-1}ᵀ (every row), in ← δh_k,
//                    per-ring products tapped before BPD summation = δW_k
//
// Signals at this level are normalised: inputs ∈ [0, 1] optical amplitude,
// weights ∈ [-1, 1].  Signed *inputs* (gradients) use the standard
// two-pass trick: x = x⁺ − x⁻ with both parts non-negative.
#pragma once

#include <vector>

#include "core/weight_bank.hpp"
#include "nn/matrix.hpp"
#include "photonics/activation_cell.hpp"
#include "photonics/ldsu.hpp"
#include "photonics/photodetector.hpp"

namespace trident::core {

struct PeConfig {
  WeightBankConfig bank;
  phot::BpdParams bpd;
  phot::ActivationCellParams activation;
  double tia_transimpedance = 1.0e4;
  /// Optical power representing a full-scale (1.0) input.
  units::Power full_scale_power = units::Power::milliwatts(1.0);
};

class ProcessingElement {
 public:
  explicit ProcessingElement(const PeConfig& config);

  [[nodiscard]] int rows() const { return bank_.rows(); }
  [[nodiscard]] int cols() const { return bank_.cols(); }
  [[nodiscard]] const WeightBank& bank() const { return bank_; }
  [[nodiscard]] WeightBank& bank() { return bank_; }

  /// Programs the weight bank (entries in [-1, 1]); returns realised weights.
  nn::Matrix program_weights(const nn::Matrix& w);

  /// Inference symbol: x ∈ [0, 1]^cols.  Computes the row dot products,
  /// latches f'(h) into the LDSUs, applies the GST activation, and returns
  /// the activated outputs (normalised units, ready for the next PE).
  [[nodiscard]] nn::Vector forward(const nn::Vector& x);

  /// Same, without activation (bank output only), e.g. for output layers.
  [[nodiscard]] nn::Vector forward_linear(const nn::Vector& x);

  /// Gradient-vector symbol (bank must hold W_{k+1}ᵀ): computes
  /// (Wᵀ δh) ⊙ f'(h_k) using the derivative bits latched during the last
  /// forward pass, applied as TIA gains.  `delta` may be signed.
  [[nodiscard]] nn::Vector gradient_pass(const nn::Vector& delta);

  /// Outer-product pass (bank must hold y_{k-1}ᵀ replicated across rows):
  /// returns δW (rows×cols) = delta ⊗ y_prev read from the per-ring
  /// products.  `delta` may be signed; |delta| must be ≤ 1.
  [[nodiscard]] nn::Matrix outer_product(const nn::Vector& delta);

  /// The derivative bits f'(h) currently latched (for inspection/tests).
  [[nodiscard]] std::vector<double> latched_derivatives() const;

  /// Per-row GST activation cells (wear/reset accounting).
  [[nodiscard]] const phot::GstActivationCell& activation_cell(int row) const;

  /// Disables the activation stage for all rows (§III.C: fully amorphous
  /// cells pass signals through).
  void set_activation_bypass(bool bypass);

 private:
  /// Signed matvec via the two-pass (positive/negative decomposition)
  /// scheme; |x| entries must be ≤ 1.
  [[nodiscard]] nn::Vector signed_apply(const nn::Vector& x);

  PeConfig config_;
  WeightBank bank_;
  phot::BalancedPhotodetector bpd_;
  std::vector<phot::Tia> tias_;
  phot::LdsuBank ldsus_;
  std::vector<phot::GstActivationCell> activations_;
};

}  // namespace trident::core
