#include "core/pe.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace trident::core {

ProcessingElement::ProcessingElement(const PeConfig& config)
    : config_(config),
      bank_(config.bank),
      bpd_(config.bpd),
      ldsus_(config.bank.rows) {
  tias_.assign(static_cast<std::size_t>(bank_.rows()),
               phot::Tia(config.tia_transimpedance));
  activations_.assign(static_cast<std::size_t>(bank_.rows()),
                      phot::GstActivationCell(config.activation));
}

nn::Matrix ProcessingElement::program_weights(const nn::Matrix& w) {
  return bank_.program(w);
}

nn::Vector ProcessingElement::signed_apply(const nn::Vector& x) {
  TRIDENT_REQUIRE(static_cast<int>(x.size()) == cols(),
                  "input size must match bank columns");
  nn::Vector plus(x.size()), minus(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    TRIDENT_REQUIRE(std::abs(x[i]) <= 1.0 + 1e-12,
                    "normalised inputs must satisfy |x| <= 1");
    plus[i] = std::max(0.0, std::min(1.0, x[i]));
    minus[i] = std::max(0.0, std::min(1.0, -x[i]));
  }
  nn::Vector yp = bank_.apply(plus);
  const nn::Vector yn = bank_.apply(minus);
  for (std::size_t r = 0; r < yp.size(); ++r) {
    yp[r] -= yn[r];
  }
  return yp;
}

nn::Vector ProcessingElement::forward(const nn::Vector& x) {
  nn::Vector h = forward_linear(x);

  // Latch the 1-bit derivative selectors for a future backward pass.
  ldsus_.latch(h);

  // GST activation: the device cells record firing/reset events; the
  // numeric value follows the paper's linearisation (0.34 · max(0, h)).
  for (std::size_t r = 0; r < h.size(); ++r) {
    auto& cell = activations_[r];
    // Map the normalised logit onto pulse energy around the switching
    // threshold so the device-event accounting matches h ≷ 0.
    const Energy pulse = cell.params().threshold * (1.0 + h[r]);
    (void)cell.process(pulse);
    h[r] = phot::GstActivationCell::activate(h[r]);
  }
  return h;
}

nn::Vector ProcessingElement::forward_linear(const nn::Vector& x) {
  for (double v : x) {
    TRIDENT_REQUIRE(v >= 0.0 && v <= 1.0 + 1e-12,
                    "forward inputs are optical amplitudes in [0, 1]");
  }
  nn::Vector dots = bank_.apply(x);
  // Normalise the row accumulation to [-1, 1] so logits stay in the
  // optical/electronic dynamic range regardless of fan-in.
  const double norm = static_cast<double>(cols());
  for (double& v : dots) {
    v /= norm;
  }
  return dots;
}

nn::Vector ProcessingElement::gradient_pass(const nn::Vector& delta) {
  nn::Vector g = signed_apply(delta);
  const double norm = static_cast<double>(cols());
  for (std::size_t r = 0; r < g.size(); ++r) {
    // The Hadamard product with f'(h_k) is a TIA gain (§III.A.2).
    auto& tia = tias_[r];
    tia.set_gain(ldsus_.unit(static_cast<int>(r)).derivative());
    g[r] = tia.amplify(g[r] / norm) / tia.transimpedance();
  }
  return g;
}

nn::Matrix ProcessingElement::outer_product(const nn::Vector& delta) {
  TRIDENT_REQUIRE(static_cast<int>(delta.size()) == rows(),
                  "delta must have one entry per bank row");
  nn::Matrix dw(static_cast<std::size_t>(rows()),
                static_cast<std::size_t>(cols()));
  // Row j streams one symbol with every channel modulated to |δh_j|; the
  // per-ring products (before BPD summation) are y_i · |δh_j|, signed by
  // the TIA polarity.  All rows operate on parallel hardware; the J
  // symbols here are the row-local modulation pattern, not serial time.
  for (int j = 0; j < rows(); ++j) {
    const double d = delta[static_cast<std::size_t>(j)];
    TRIDENT_REQUIRE(std::abs(d) <= 1.0 + 1e-12,
                    "normalised |delta| must be <= 1");
    const double mag = std::min(1.0, std::abs(d));
    const double sign = d < 0.0 ? -1.0 : 1.0;
    for (int i = 0; i < cols(); ++i) {
      dw.at(static_cast<std::size_t>(j), static_cast<std::size_t>(i)) =
          sign * mag * bank_.realized_weight(j, i);
    }
  }
  return dw;
}

std::vector<double> ProcessingElement::latched_derivatives() const {
  return ldsus_.derivatives();
}

const phot::GstActivationCell& ProcessingElement::activation_cell(
    int row) const {
  TRIDENT_REQUIRE(row >= 0 && row < rows(), "row out of range");
  return activations_[static_cast<std::size_t>(row)];
}

void ProcessingElement::set_activation_bypass(bool bypass) {
  for (auto& cell : activations_) {
    cell.set_bypass(bypass);
  }
}

}  // namespace trident::core
