#include "core/array_sim.hpp"

#include <algorithm>
#include <queue>

#include "common/error.hpp"
#include "dataflow/analyzer.hpp"

namespace trident::core {

namespace {

/// Min-heap entry: (next-free time, PE id).
using PeSlot = std::pair<double, int>;

struct PeHeap {
  std::priority_queue<PeSlot, std::vector<PeSlot>, std::greater<>> queue;

  explicit PeHeap(int pes, double t0) {
    for (int i = 0; i < pes; ++i) {
      queue.push({t0, i});
    }
  }
  [[nodiscard]] PeSlot pop() {
    PeSlot s = queue.top();
    queue.pop();
    return s;
  }
  void push(double t, int pe) { queue.push({t, pe}); }
};

}  // namespace

ArraySimResult simulate_array(const nn::ModelSpec& model,
                              const PhotonicArrayDesc& array,
                              const ArraySimConfig& config) {
  model.validate();
  array.validate();
  TRIDENT_REQUIRE(config.batch >= 1, "batch must be >= 1");

  const int pes = array.pe_count;
  const double symbol_s = array.symbol_time().s();
  const double write_s = array.weight_write_time.s();
  const auto batch = static_cast<double>(config.batch);

  ArraySimResult result;
  result.pe_busy.assign(static_cast<std::size_t>(pes), Time::seconds(0.0));

  dataflow::AnalyzerOptions energy_opt;
  energy_opt.batch = config.batch;
  const double model_weight_bytes =
      static_cast<double>(model.total_weights());

  auto record = [&](SimEventKind kind, int pe, const std::string& layer,
                    std::uint64_t tile, double start, double end) {
    ++result.events;
    result.pe_busy[static_cast<std::size_t>(pe)] +=
        Time::seconds(end - start);
    if (config.record_trace && result.trace.size() < config.trace_limit) {
      result.trace.push_back({kind, pe, layer, tile, Time::seconds(start),
                              Time::seconds(end)});
    }
  };

  double barrier = 0.0;  // completion time of the previous layer
  for (const auto& layer : model.layers) {
    // Energy: identical bookkeeping to the analytical model (the simulator
    // adds *scheduling* fidelity, not new energy mechanisms).
    result.energy += dataflow::analyze_layer(layer, array, energy_opt,
                                             model_weight_bytes)
                         .energy;

    const dataflow::GemmShape g = dataflow::lower_to_gemm(layer);
    double layer_end = barrier;

    if (g.m == 0) {
      // Pooling: one streaming job through the electronic peripheral.
      const double elems = static_cast<double>(layer.inputs()) * batch;
      const double lanes = static_cast<double>(array.cols_per_pe);
      const double duration = std::ceil(elems / lanes) * symbol_s;
      record(SimEventKind::kStream, 0, layer.name, 0, barrier,
             barrier + duration);
      layer_end = barrier + duration;
      barrier = layer_end;
      continue;
    }

    const std::uint64_t tiles = dataflow::tile_count(layer, array);
    result.tiles_executed += tiles;
    const double stream_s = static_cast<double>(g.cols) * batch * symbol_s;

    PeHeap heap(pes, barrier);
    for (std::uint64_t t = 0; t < tiles; ++t) {
      auto [free_at, pe] = heap.pop();
      const double program_end = free_at + write_s;
      record(SimEventKind::kProgram, pe, layer.name, t, free_at, program_end);
      const double stream_end = program_end + stream_s;
      record(SimEventKind::kStream, pe, layer.name, t, program_end,
             stream_end);
      heap.push(stream_end, pe);
      layer_end = std::max(layer_end, stream_end);
    }

    // Non-photonic output path: the ADC + digital-activation pass sweeps
    // the activated outputs across the PEs' output lanes after the
    // streams, exactly as the analytical model charges it.
    if (array.output_path_delay.s() > 0.0 && layer.activations() > 0) {
      const double act =
          static_cast<double>(layer.activations()) * batch;
      const double pass =
          std::ceil(act / static_cast<double>(pes)) *
          array.output_path_delay.s();
      for (int pe = 0; pe < pes; ++pe) {
        record(SimEventKind::kOutputPass, pe, layer.name, 0, layer_end,
               layer_end + pass);
      }
      layer_end += pass;
    }
    barrier = layer_end;
  }

  result.makespan = Time::seconds(barrier);
  double busy_sum = 0.0;
  for (const Time& t : result.pe_busy) {
    busy_sum += t.s();
  }
  result.utilization =
      busy_sum / (static_cast<double>(pes) * result.makespan.s());
  return result;
}

}  // namespace trident::core
