#include "core/insitu_trainer.hpp"

#include <optional>

#include "common/error.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace trident::core {

namespace {

nn::Mlp make_net(const SessionConfig& config) {
  TRIDENT_REQUIRE(config.layer_sizes.size() >= 2,
                  "session needs at least input and output sizes");
  Rng rng(config.init_seed);
  return nn::Mlp(config.layer_sizes, config.activation, rng);
}

}  // namespace

TrainingSession::TrainingSession(const SessionConfig& config)
    : config_(config), net_(make_net(config)) {
  TRIDENT_REQUIRE(config.test_fraction > 0.0 && config.test_fraction < 1.0,
                  "test fraction must be in (0, 1)");
  if (config_.variation) {
    VariationConfig v = *config_.variation;
    v.hardware = config_.hardware;
    varied_ = std::make_unique<VariationBackend>(v);
  } else {
    plain_ = std::make_unique<PhotonicBackend>(config_.hardware);
  }
}

nn::MatvecBackend& TrainingSession::backend() {
  if (varied_) {
    return *varied_;
  }
  return *plain_;
}

SessionReport TrainingSession::run(nn::Dataset data) {
  std::optional<telemetry::Span> span;
  if (telemetry::enabled()) {
    span.emplace("insitu/session", "train");
  }
  data.validate();
  const auto [train_set, test_set] = data.split(config_.test_fraction);

  const PhotonicLedger before =
      varied_ ? varied_->ledger() : plain_->ledger();

  // Consume any progress restored by resume(): the schedule replays the
  // already-trained epochs' shuffles and continues where the snapshot
  // stopped, and the report stitches resumed + new records together so it
  // covers the whole logical schedule.
  nn::TrainConfig schedule = config_.schedule;
  schedule.start_epoch = resume_epochs_;
  std::vector<double> cumulative_loss = std::move(resume_loss_);
  std::vector<double> cumulative_accuracy = std::move(resume_accuracy_);
  resume_epochs_ = 0;
  resume_loss_.clear();
  resume_accuracy_.clear();

  if (config_.checkpoint_every_n_epochs > 0) {
    TRIDENT_REQUIRE(!config_.checkpoint_path.empty(),
                    "checkpointing needs a checkpoint_path");
    TRIDENT_REQUIRE(plain_ != nullptr,
                    "checkpointing supports plain hardware only");
    const int every = config_.checkpoint_every_n_epochs;
    schedule.on_epoch_end = [this, every, &schedule, &cumulative_loss,
                             &cumulative_accuracy](
                                int epoch, const nn::TrainResult& so_far) {
      const int done = epoch + 1;
      if (done % every != 0 && done != schedule.epochs) {
        return;
      }
      std::vector<double> loss = cumulative_loss;
      loss.insert(loss.end(), so_far.epoch_loss.begin(),
                  so_far.epoch_loss.end());
      std::vector<double> accuracy = cumulative_accuracy;
      accuracy.insert(accuracy.end(), so_far.epoch_accuracy.begin(),
                      so_far.epoch_accuracy.end());
      write_checkpoint(config_.checkpoint_path,
                       static_cast<std::uint64_t>(done), loss, accuracy);
    };
  }

  const nn::TrainResult result = nn::fit(net_, train_set, schedule, backend());

  SessionReport report;
  report.epoch_loss = std::move(cumulative_loss);
  report.epoch_loss.insert(report.epoch_loss.end(), result.epoch_loss.begin(),
                           result.epoch_loss.end());
  report.epoch_accuracy = std::move(cumulative_accuracy);
  report.epoch_accuracy.insert(report.epoch_accuracy.end(),
                               result.epoch_accuracy.begin(),
                               result.epoch_accuracy.end());
  report.test_accuracy = nn::evaluate(net_, test_set, backend());

  const PhotonicLedger after =
      varied_ ? varied_->ledger() : plain_->ledger();
  report.ledger = after - before;
  report.optical_energy = report.ledger.energy();
  report.optical_time = report.ledger.time();

  std::uint64_t weight_count = 0;
  for (int k = 0; k < net_.depth(); ++k) {
    weight_count += net_.weight(k).size();
  }
  report.writes_per_weight =
      static_cast<double>(report.ledger.weight_writes) /
      static_cast<double>(weight_count);
  return report;
}

nn::Vector TrainingSession::predict(const nn::Vector& x) {
  return net_.forward(x, backend()).activations.back();
}

PhotonicLedger TrainingSession::ledger() const {
  return varied_ ? varied_->ledger() : plain_->ledger();
}

int TrainingSession::resident_layer() const {
  if (plain_ == nullptr) {
    return -1;
  }
  for (int k = 0; k < net_.depth(); ++k) {
    if (plain_->is_resident(net_.weight(k))) {
      return k;
    }
  }
  return -1;
}

void TrainingSession::write_checkpoint(
    const std::string& path, std::uint64_t epochs_completed,
    const std::vector<double>& loss,
    const std::vector<double>& accuracy) const {
  TRIDENT_REQUIRE(plain_ != nullptr,
                  "checkpointing supports plain hardware only");
  state::Snapshot snap;
  snap.model = state::capture_model(net_);
  snap.ledger = state::to_ledger_state(plain_->ledger());

  state::TrainingState t;
  t.epochs_completed = epochs_completed;
  t.epoch_loss = loss;
  t.epoch_accuracy = accuracy;
  t.learning_rate = config_.schedule.learning_rate;
  t.shuffle = config_.schedule.shuffle ? 1 : 0;
  t.shuffle_seed = config_.schedule.shuffle_seed;
  t.batch_size = config_.schedule.batch_size;
  t.weight_bits = config_.hardware.weight_bits;
  t.input_bits = config_.hardware.input_bits;
  t.readout_noise = config_.hardware.readout_noise;
  t.stochastic_rounding = config_.hardware.stochastic_rounding ? 1 : 0;
  t.hw_seed = config_.hardware.seed;
  t.backend_rng = plain_->rng_state();
  t.resident_layer = resident_layer();
  snap.training = std::move(t);

  snap.save(path);
}

void TrainingSession::checkpoint(const std::string& path) const {
  // Deploy snapshot: current weights and books, no schedule progress.
  write_checkpoint(path, 0, {}, {});
}

void TrainingSession::resume(const std::string& path) {
  TRIDENT_REQUIRE(plain_ != nullptr,
                  "resume supports plain hardware only");
  const state::Snapshot snap = state::Snapshot::load(path);
  TRIDENT_REQUIRE(snap.training.has_value(),
                  "snapshot carries no training state");
  const state::TrainingState& t = *snap.training;

  // Refuse a resume whose arithmetic would differ from the run that wrote
  // the snapshot — continuation must be bit-identical, not approximate.
  // `epochs` itself is excluded: extending the schedule is legal.
  TRIDENT_REQUIRE(t.learning_rate == config_.schedule.learning_rate &&
                      (t.shuffle != 0) == config_.schedule.shuffle &&
                      t.shuffle_seed == config_.schedule.shuffle_seed &&
                      t.batch_size == config_.schedule.batch_size,
                  "snapshot schedule fingerprint does not match the session");
  TRIDENT_REQUIRE(
      t.weight_bits == config_.hardware.weight_bits &&
          t.input_bits == config_.hardware.input_bits &&
          t.readout_noise == config_.hardware.readout_noise &&
          (t.stochastic_rounding != 0) ==
              config_.hardware.stochastic_rounding &&
          t.hw_seed == config_.hardware.seed,
      "snapshot hardware fingerprint does not match the session");
  TRIDENT_REQUIRE(t.epochs_completed <=
                      static_cast<std::uint64_t>(config_.schedule.epochs),
                  "snapshot is ahead of this session's schedule");
  TRIDENT_REQUIRE(t.epoch_loss.size() == t.epochs_completed &&
                      t.epoch_accuracy.size() == t.epochs_completed,
                  "snapshot training records do not match its epoch count");

  state::restore_model_into(snap.model, net_);
  if (snap.ledger.has_value()) {
    plain_->restore_ledger(
        state::ledger_from_state<PhotonicLedger>(*snap.ledger));
  }
  plain_->restore_rng_state(t.backend_rng);
  if (t.resident_layer >= 0) {
    TRIDENT_REQUIRE(t.resident_layer < net_.depth(),
                    "snapshot resident layer out of range");
    plain_->mark_resident(net_.weight(t.resident_layer));
  }

  resume_epochs_ = static_cast<int>(t.epochs_completed);
  resume_loss_ = t.epoch_loss;
  resume_accuracy_ = t.epoch_accuracy;
}

}  // namespace trident::core
