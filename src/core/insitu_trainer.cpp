#include "core/insitu_trainer.hpp"

#include <optional>

#include "common/error.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace trident::core {

namespace {

nn::Mlp make_net(const SessionConfig& config) {
  TRIDENT_REQUIRE(config.layer_sizes.size() >= 2,
                  "session needs at least input and output sizes");
  Rng rng(config.init_seed);
  return nn::Mlp(config.layer_sizes, config.activation, rng);
}

}  // namespace

TrainingSession::TrainingSession(const SessionConfig& config)
    : config_(config), net_(make_net(config)) {
  TRIDENT_REQUIRE(config.test_fraction > 0.0 && config.test_fraction < 1.0,
                  "test fraction must be in (0, 1)");
  if (config_.variation) {
    VariationConfig v = *config_.variation;
    v.hardware = config_.hardware;
    varied_ = std::make_unique<VariationBackend>(v);
  } else {
    plain_ = std::make_unique<PhotonicBackend>(config_.hardware);
  }
}

nn::MatvecBackend& TrainingSession::backend() {
  if (varied_) {
    return *varied_;
  }
  return *plain_;
}

SessionReport TrainingSession::run(nn::Dataset data) {
  std::optional<telemetry::Span> span;
  if (telemetry::enabled()) {
    span.emplace("insitu/session", "train");
  }
  data.validate();
  const auto [train_set, test_set] = data.split(config_.test_fraction);

  const PhotonicLedger before =
      varied_ ? varied_->ledger() : plain_->ledger();

  const nn::TrainResult result =
      nn::fit(net_, train_set, config_.schedule, backend());

  SessionReport report;
  report.epoch_loss = result.epoch_loss;
  report.epoch_accuracy = result.epoch_accuracy;
  report.test_accuracy = nn::evaluate(net_, test_set, backend());

  const PhotonicLedger after =
      varied_ ? varied_->ledger() : plain_->ledger();
  report.ledger = after - before;
  report.optical_energy = report.ledger.energy();
  report.optical_time = report.ledger.time();

  std::uint64_t weight_count = 0;
  for (int k = 0; k < net_.depth(); ++k) {
    weight_count += net_.weight(k).size();
  }
  report.writes_per_weight =
      static_cast<double>(report.ledger.weight_writes) /
      static_cast<double>(weight_count);
  return report;
}

nn::Vector TrainingSession::predict(const nn::Vector& x) {
  return net_.forward(x, backend()).activations.back();
}

}  // namespace trident::core
