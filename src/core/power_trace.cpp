#include "core/power_trace.hpp"

#include <algorithm>
#include <map>

#include "common/error.hpp"

namespace trident::core {

PeStatePower PeStatePower::from(const arch::PhotonicAccelerator& accelerator) {
  const auto& p = accelerator.pe_power;
  PeStatePower s;
  s.programming = p.total();
  // Streaming: everything except the tuning writes.
  s.streaming = p.total() - p.tuning;
  // Idle: electronics that cannot gate off between layers.
  s.idle = p.bpd_tia + p.cache + p.control;
  return s;
}

PowerProfile power_profile(const ArraySimResult& result,
                           const arch::PhotonicAccelerator& accelerator) {
  TRIDENT_REQUIRE(!result.trace.empty(),
                  "power_profile needs a recorded trace "
                  "(ArraySimConfig::record_trace)");
  TRIDENT_REQUIRE(result.events == result.trace.size(),
                  "trace was truncated; raise ArraySimConfig::trace_limit");

  const PeStatePower state = PeStatePower::from(accelerator);
  const double idle_all =
      state.idle.W() * static_cast<double>(accelerator.pe_count);

  // Sweep line over event boundaries: each event adds (state − idle) for
  // its span on top of the all-idle baseline.
  std::map<double, double> deltas;  // time -> power delta (W)
  for (const SimEvent& e : result.trace) {
    double extra = 0.0;
    switch (e.kind) {
      case SimEventKind::kProgram:
        extra = state.programming.W() - state.idle.W();
        break;
      case SimEventKind::kStream:
      case SimEventKind::kOutputPass:
        extra = state.streaming.W() - state.idle.W();
        break;
    }
    deltas[e.start.s()] += extra;
    deltas[e.end.s()] -= extra;
  }
  deltas[result.makespan.s()];  // ensure the timeline reaches the end

  PowerProfile profile;
  profile.makespan = result.makespan;
  double current = idle_all;
  double prev_t = 0.0;
  double energy_j = 0.0;
  double peak = idle_all;
  if (deltas.empty() || deltas.begin()->first > 0.0) {
    profile.timeline.push_back({Time::seconds(0.0), Power::watts(idle_all)});
  }
  for (const auto& [t, delta] : deltas) {
    energy_j += current * (t - prev_t);
    current += delta;
    peak = std::max(peak, current);
    prev_t = t;
    if (t <= result.makespan.s()) {
      profile.timeline.push_back({Time::seconds(t), Power::watts(current)});
    }
  }
  profile.peak = Power::watts(peak);
  profile.energy = units::Energy::joules(energy_j);
  profile.average =
      Power::watts(energy_j / std::max(result.makespan.s(), 1e-18));
  return profile;
}

}  // namespace trident::core
