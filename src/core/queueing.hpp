// Edge-serving queueing simulation.
//
// The paper's introduction motivates on-device inference with "rapid
// response with low latency"; a deployed edge accelerator serves a *stream*
// of requests, so what the user feels is not the isolated inference
// latency of Fig 6 but the sojourn time under load — queueing delay
// included.  This module runs a discrete-event single-server simulation
// (deterministic service at the accelerator's measured latency, Poisson
// arrivals) and reports the latency distribution, which is how two
// accelerators with similar mean latency can feel very different at the
// 99th percentile.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace trident::core {

using units::Time;

struct QueueingConfig {
  /// Offered load as a fraction of capacity (λ/μ_eff); must be < 1.  With
  /// batching, capacity is batch_size requests per service interval, so
  /// λ = utilization · batch_size / service.
  double utilization = 0.7;
  int requests = 20000;
  /// Batch-service mode: the server takes up to `batch_size` queued
  /// requests per service and the whole batch completes after one
  /// deterministic `service_time` — the gated-batch analogue of the
  /// serving runtime's micro-batcher with a zero formation deadline.
  /// 1 recovers the plain M/D/1 model.
  int batch_size = 1;
  std::uint64_t seed = 0xEDCE;
};

struct QueueingResult {
  Time service;       ///< deterministic per-batch service time
  double arrival_rate = 0.0;  ///< requests/s offered
  Time mean_sojourn;  ///< queueing + service
  Time p50;
  Time p99;
  /// Mean wait anchor.  Exact M/D/1 closed form W = ρ/(2μ(1−ρ)) at
  /// batch_size 1; for batch_size B the same formula applied to the
  /// effective server of rate B·μ (an approximation that the simulation
  /// refines).
  Time analytic_mean_wait;
  /// Mean realised batch size (1.0 exactly when batch_size == 1).
  double mean_batch = 1.0;
};

/// Simulates Poisson arrivals served FIFO on one accelerator: fixed
/// `service_time` per service, up to `config.batch_size` requests taken
/// per service.
[[nodiscard]] QueueingResult simulate_service(Time service_time,
                                              const QueueingConfig& config = {});

/// Closed-form M/M/k (Erlang-C) fleet model: Poisson arrivals at rate
/// `arrival_rate` offered to `k` exponential servers of mean service time
/// `service_mean`, drawn from ONE shared queue.  This is the fleet-serving
/// analogue of the M/D/1 anchor in `simulate_service`: a cluster router
/// with a perfect least-loaded view approaches this bound from above
/// (join-shortest-queue with per-node queues can never beat the central
/// queue), while hash routing decomposes into independent per-node M/M/1s
/// instead — both cross-checks `bench/fleet_serving` runs against the real
/// Router.
struct MmkResult {
  int servers = 0;
  double arrival_rate = 0.0;    ///< λ, requests/s
  double utilization = 0.0;     ///< ρ = λ / (k·μ)
  double erlang_c = 0.0;        ///< P(wait > 0), the Erlang-C probability
  Time mean_wait;               ///< E[W_q] = C · 1/(kμ − λ)
  Time mean_sojourn;            ///< E[W_q] + 1/μ
};

/// Evaluates the M/M/k closed form.  Requires k ≥ 1 and λ < k·μ (a stable
/// queue).  The Erlang-C probability is computed through the numerically
/// stable Erlang-B recurrence, so k up to the thousands is exact in
/// doubles — no factorials.
[[nodiscard]] MmkResult analytic_mmk(Time service_mean, int k,
                                     double arrival_rate);

/// Degenerate single-server form: M/M/1 mean sojourn 1/(μ − λ).  The
/// per-node cross-check for hash-routed fleets (a Poisson stream thinned
/// onto one node is still Poisson).
[[nodiscard]] Time mm1_mean_sojourn(Time service_mean, double arrival_rate);

}  // namespace trident::core
