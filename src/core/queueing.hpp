// Edge-serving queueing simulation.
//
// The paper's introduction motivates on-device inference with "rapid
// response with low latency"; a deployed edge accelerator serves a *stream*
// of requests, so what the user feels is not the isolated inference
// latency of Fig 6 but the sojourn time under load — queueing delay
// included.  This module runs a discrete-event single-server simulation
// (deterministic service at the accelerator's measured latency, Poisson
// arrivals) and reports the latency distribution, which is how two
// accelerators with similar mean latency can feel very different at the
// 99th percentile.
#pragma once

#include <cstdint>
#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"

namespace trident::core {

using units::Time;

struct QueueingConfig {
  /// Offered load as a fraction of capacity (λ/μ); must be < 1.
  double utilization = 0.7;
  int requests = 20000;
  std::uint64_t seed = 0xEDCE;
};

struct QueueingResult {
  Time service;       ///< deterministic per-request service time
  double arrival_rate = 0.0;  ///< requests/s offered
  Time mean_sojourn;  ///< queueing + service
  Time p50;
  Time p99;
  /// M/D/1 closed form for the mean wait (sanity anchor):
  /// W = ρ/(2μ(1−ρ)).
  Time analytic_mean_wait;
};

/// Simulates Poisson arrivals served FIFO at fixed `service_time` per
/// request on one accelerator.
[[nodiscard]] QueueingResult simulate_service(Time service_time,
                                              const QueueingConfig& config = {});

}  // namespace trident::core
