#include "core/accelerator.hpp"

#include "common/error.hpp"
#include "photonics/constants.hpp"

namespace trident::core {

namespace {

/// Per-PE component areas (mm²).  The dominant entry is the analog TIA
/// chain, as Fig 5 reports; photonic structures are tiny in comparison.
struct PeAreas {
  // 16 receiver/amplifier chains (TIA + bias + pads).
  static constexpr double kTia = 16 * 0.70;
  // 256 weight-bank rings at a 40 µm pitch, GST patch included.
  static constexpr double kWeightBank = 256 * 0.0016;
  // 16 activation rings (60 µm radius → ~160 µm pitch cell).
  static constexpr double kActivation = 16 * 0.0256;
  // 16 balanced photodetector pairs.
  static constexpr double kBpd = 16 * 0.005;
  // 16 E/O lasers.
  static constexpr double kEoLaser = 16 * 0.02;
  // 16 LDSUs (comparator + DFF).
  static constexpr double kLdsu = 16 * 0.0005;
  // 16 kB cache, 0.092 × 0.085 mm² (§IV).
  static constexpr double kCache = 0.092 * 0.085;
  // WDM bus, couplers, routing.
  static constexpr double kWaveguides = 1.3059;

  static constexpr double total() {
    return kTia + kWeightBank + kActivation + kBpd + kEoLaser + kLdsu +
           kCache + kWaveguides;
  }
};

}  // namespace

TridentAccelerator::TridentAccelerator() : spec_(arch::make_trident()) {}

dataflow::ModelCost TridentAccelerator::inference(
    const nn::ModelSpec& model,
    const dataflow::AnalyzerOptions& options) const {
  return dataflow::analyze_model(model, spec_.array, options);
}

double TridentAccelerator::inferences_per_second(
    const nn::ModelSpec& model) const {
  return inference(model).inferences_per_second();
}

Energy TridentAccelerator::energy_per_inference(
    const nn::ModelSpec& model) const {
  return inference(model).energy.total();
}

double TridentAccelerator::sustained_tops(const nn::ModelSpec& model,
                                          int batch) const {
  dataflow::AnalyzerOptions options;
  options.batch = batch;
  return inference(model, options).effective_tops();
}

double TridentAccelerator::tops_per_watt(double tops) const {
  return tops / phot::kEdgePowerBudget.W();
}

std::vector<BreakdownEntry> TridentAccelerator::pe_power_breakdown() const {
  const auto& p = spec_.pe_power;
  const double total = p.total().W();
  auto entry = [&](std::string name, Power power) {
    return BreakdownEntry{std::move(name), power.W(),
                          power.W() / total * 100.0};
  };
  return {
      entry("LDSU", phot::kLdsuPower),
      entry("E/O Laser", phot::kEoLaserPower),
      entry("GST MRR Tuning", p.tuning),
      entry("GST MRR Read", p.readout),
      entry("GST Activation Function Reset", p.activation),
      entry("BPD and TIA", p.bpd_tia),
      entry("Cache", p.cache),
  };
}

Power TridentAccelerator::pe_power_total() const {
  return spec_.pe_power.total();
}

Power TridentAccelerator::pe_power_resident() const {
  // Non-volatility: once programmed, the 83.34 % tuning share disappears
  // (§IV: 0.67 W → 0.11 W).
  return spec_.pe_power.total() - spec_.pe_power.tuning;
}

std::vector<BreakdownEntry> TridentAccelerator::area_breakdown() const {
  const double pes = static_cast<double>(spec_.pe_count);
  const double total = PeAreas::total() * pes;
  auto entry = [&](std::string name, double per_pe_mm2) {
    const double v = per_pe_mm2 * pes;
    return BreakdownEntry{std::move(name), v, v / total * 100.0};
  };
  return {
      entry("TIA", PeAreas::kTia),
      entry("WDM waveguides & couplers", PeAreas::kWaveguides),
      entry("PCM-MRR weight bank", PeAreas::kWeightBank),
      entry("GST activation cells", PeAreas::kActivation),
      entry("E/O lasers", PeAreas::kEoLaser),
      entry("BPD", PeAreas::kBpd),
      entry("LDSU", PeAreas::kLdsu),
      entry("Cache", PeAreas::kCache),
  };
}

Area TridentAccelerator::total_area() const {
  return Area::square_millimeters(PeAreas::total() *
                                  static_cast<double>(spec_.pe_count));
}

TrainingStepCost TridentAccelerator::training_step(
    const nn::ModelSpec& model) const {
  // §V.B estimates training throughput from inference throughput: the
  // backward passes re-use the same PEs with different encodings
  // (Table II), so each pass costs one inference-shaped sweep.
  const dataflow::ModelCost fwd = inference(model);

  TrainingStepCost step;
  step.forward = fwd.latency;
  // Gradient-vector pass: same GEMM volume, bank re-encoded with Wᵀ.
  step.gradient = fwd.latency;
  // Outer-product pass: same GEMM volume, bank re-encoded with yᵀ.
  step.outer = fwd.latency;

  // Weight update: every changed weight receives a GST write pulse; banks
  // program in parallel, tiles round-robin over the PEs.
  const auto j = static_cast<std::uint64_t>(spec_.array.rows_per_pe);
  const auto n = static_cast<std::uint64_t>(spec_.array.cols_per_pe);
  std::uint64_t tiles = 0;
  for (const auto& layer : model.layers) {
    const dataflow::GemmShape g = dataflow::lower_to_gemm(layer);
    if (g.m == 0) {
      continue;
    }
    tiles += ((g.m + j - 1) / j) * ((g.k + n - 1) / n);
  }
  const auto pes = static_cast<std::uint64_t>(spec_.array.pe_count);
  const std::uint64_t rounds = (tiles + pes - 1) / pes;
  step.update = spec_.array.weight_write_time * static_cast<double>(rounds);

  step.energy = fwd.energy.total() * 3.0 +
                spec_.array.weight_write_energy *
                    static_cast<double>(model.total_weights());
  return step;
}

Time TridentAccelerator::time_to_train(const nn::ModelSpec& model,
                                       std::uint64_t images) const {
  TRIDENT_REQUIRE(images >= 1, "need at least one training image");
  return training_step(model).total() * static_cast<double>(images);
}

}  // namespace trident::core
