#include "core/endurance.hpp"

#include "common/error.hpp"
#include "photonics/drift.hpp"

namespace trident::core {

namespace {

/// Physical GST weight cells in the accelerator.
[[nodiscard]] double total_weight_cells(
    const arch::PhotonicAccelerator& acc) {
  return static_cast<double>(acc.pe_count) *
         static_cast<double>(acc.array.mrrs_per_pe());
}

[[nodiscard]] double years_from(double rated_cycles, double events_per_s,
                                double duty) {
  if (events_per_s <= 0.0) {
    return 1e9;  // effectively unlimited
  }
  return rated_cycles / (events_per_s * duty) / phot::kSecondsPerYear;
}

}  // namespace

EnduranceReport inference_endurance(
    const nn::ModelSpec& model, const arch::PhotonicAccelerator& accelerator,
    const EnduranceConfig& config) {
  TRIDENT_REQUIRE(config.rated_cycles > 0.0, "rated cycles must be positive");
  TRIDENT_REQUIRE(config.duty_cycle > 0.0 && config.duty_cycle <= 1.0,
                  "duty cycle must be in (0, 1]");
  TRIDENT_REQUIRE(config.batch >= 1, "batch must be >= 1");

  dataflow::AnalyzerOptions opt;
  opt.batch = config.batch;
  const dataflow::ModelCost cost =
      dataflow::analyze_model(model, accelerator.array, opt);

  EnduranceReport report;
  const double batch = static_cast<double>(config.batch);
  report.inferences_per_second = batch / cost.latency.s();

  // Weight cells: the whole model's weights pass through the banks once
  // per batch; wear spreads evenly over the physical cells.
  report.weight_writes_per_inference =
      static_cast<double>(model.total_weights()) /
      total_weight_cells(accelerator) / batch;

  // Activation cells: one per weight-bank row.  Partial-sum symbols
  // accumulate electronically before the activation stage, so each
  // *activated output element* drives one cell once, and only the
  // supra-threshold fraction actually switches it.
  TRIDENT_REQUIRE(config.firing_fraction > 0.0 && config.firing_fraction <= 1.0,
                  "firing fraction must be in (0, 1]");
  const double activation_cells =
      static_cast<double>(accelerator.pe_count) *
      static_cast<double>(accelerator.array.rows_per_pe);
  report.activation_switches_per_inference =
      static_cast<double>(model.total_activations()) * config.firing_fraction /
      activation_cells;

  report.weight_cell_lifetime_years = years_from(
      config.rated_cycles,
      report.weight_writes_per_inference * report.inferences_per_second,
      config.duty_cycle);
  report.activation_cell_lifetime_years = years_from(
      config.rated_cycles,
      report.activation_switches_per_inference * report.inferences_per_second,
      config.duty_cycle);
  report.lifetime_years = std::min(report.weight_cell_lifetime_years,
                                   report.activation_cell_lifetime_years);
  return report;
}

EnduranceReport training_endurance(
    const nn::ModelSpec& model, const arch::PhotonicAccelerator& accelerator,
    const EnduranceConfig& config) {
  // Per step: forward + gradient (bank ← Wᵀ) + outer (bank ← yᵀ) passes
  // each rewrite the cells once, and the weight update writes once more.
  EnduranceReport base = inference_endurance(model, accelerator, config);

  EnduranceReport report = base;
  const double step_time =
      3.0 / base.inferences_per_second;  // three inference-shaped passes
  report.inferences_per_second = 1.0 / step_time;  // steps per second
  report.weight_writes_per_inference = 4.0 * base.weight_writes_per_inference;
  // Only the forward pass drives the activation cells.
  report.activation_switches_per_inference =
      base.activation_switches_per_inference;

  report.weight_cell_lifetime_years = years_from(
      config.rated_cycles,
      report.weight_writes_per_inference * report.inferences_per_second,
      config.duty_cycle);
  report.activation_cell_lifetime_years = years_from(
      config.rated_cycles,
      report.activation_switches_per_inference * report.inferences_per_second,
      config.duty_cycle);
  report.lifetime_years = std::min(report.weight_cell_lifetime_years,
                                   report.activation_cell_lifetime_years);
  return report;
}

}  // namespace trident::core
