#include "core/wear_leveling.hpp"

#include <algorithm>

#include "common/error.hpp"
#include "dataflow/analyzer.hpp"

namespace trident::core {

WearReport simulate_wear(const nn::ModelSpec& model,
                         const arch::PhotonicAccelerator& accelerator,
                         std::uint64_t inferences, WearPolicy policy) {
  TRIDENT_REQUIRE(inferences >= 1, "need at least one inference");
  model.validate();

  const int pes = accelerator.pe_count;
  const auto mrrs = static_cast<double>(accelerator.array.mrrs_per_pe());

  // Per-layer tile counts (tiles map to PEs in index order).
  std::vector<std::uint64_t> layer_tiles;
  for (const auto& layer : model.layers) {
    const std::uint64_t t = dataflow::tile_count(layer, accelerator.array);
    if (t > 0) {
      layer_tiles.push_back(t);
    }
  }
  TRIDENT_REQUIRE(!layer_tiles.empty(), "model has no compute layers");

  // One inference's per-PE tile counts for a given starting origin.  The
  // pattern repeats every `pes` origins, so precompute those and scale.
  const auto tiles_for_origin = [&](int origin) {
    std::vector<std::uint64_t> counts(static_cast<std::size_t>(pes), 0);
    int cursor = origin;
    for (const std::uint64_t tiles : layer_tiles) {
      for (std::uint64_t t = 0; t < tiles; ++t) {
        counts[static_cast<std::size_t>(cursor)] += 1;
        cursor = (cursor + 1) % pes;
      }
    }
    return counts;
  };

  WearReport report;
  report.writes_per_pe.assign(static_cast<std::size_t>(pes), 0.0);

  if (policy == WearPolicy::kFixedOrigin) {
    const auto counts = tiles_for_origin(0);
    for (int pe = 0; pe < pes; ++pe) {
      report.writes_per_pe[static_cast<std::size_t>(pe)] =
          static_cast<double>(counts[static_cast<std::size_t>(pe)]) * mrrs *
          static_cast<double>(inferences);
    }
  } else {
    // Rotating origin: inference i starts at PE (i mod pes).  Sum the
    // `pes` distinct patterns, weighted by how many inferences use each.
    const std::uint64_t full_cycles = inferences / static_cast<std::uint64_t>(pes);
    const std::uint64_t remainder = inferences % static_cast<std::uint64_t>(pes);
    for (int origin = 0; origin < pes; ++origin) {
      const auto counts = tiles_for_origin(origin);
      const double uses =
          static_cast<double>(full_cycles) +
          (static_cast<std::uint64_t>(origin) < remainder ? 1.0 : 0.0);
      for (int pe = 0; pe < pes; ++pe) {
        report.writes_per_pe[static_cast<std::size_t>(pe)] +=
            static_cast<double>(counts[static_cast<std::size_t>(pe)]) * mrrs *
            uses;
      }
    }
  }

  double sum = 0.0;
  for (double w : report.writes_per_pe) {
    sum += w;
    report.max_writes = std::max(report.max_writes, w);
  }
  report.mean_writes = sum / static_cast<double>(pes);
  report.imbalance =
      report.mean_writes > 0.0 ? report.max_writes / report.mean_writes : 1.0;
  return report;
}

double rotation_benefit(const nn::ModelSpec& model,
                        const arch::PhotonicAccelerator& accelerator,
                        std::uint64_t inferences) {
  const WearReport fixed =
      simulate_wear(model, accelerator, inferences, WearPolicy::kFixedOrigin);
  const WearReport rotating =
      simulate_wear(model, accelerator, inferences, WearPolicy::kRotating);
  TRIDENT_ASSERT(rotating.max_writes > 0.0, "degenerate wear simulation");
  return fixed.max_writes / rotating.max_writes;
}

}  // namespace trident::core
