#include "core/weight_bank.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"
#include "photonics/device_lut.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace trident::core {

namespace {

/// Decoded-weight cache behaviour across all banks in the process.
struct BankMetrics {
  telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::global();
  telemetry::Counter& decode_hits =
      reg.counter("trident_bank_decode_cache_hits_total",
                  "decoded_weights() calls served by the cached raw table");
  telemetry::Counter& decode_rebuilds =
      reg.counter("trident_bank_decode_cache_rebuilds_total",
                  "decoded_weights() calls that re-decoded every cell");
  telemetry::Counter& decode_invalidations =
      reg.counter("trident_bank_decode_cache_invalidations_total",
                  "cell programmings that dirtied the decoded cache");
  telemetry::Counter& cells_programmed =
      reg.counter("trident_bank_cells_programmed_total",
                  "individual GST cell programming operations");
  telemetry::Counter& symbol_reads =
      reg.counter("trident_bank_symbol_reads_total",
                  "optical symbols streamed through a device-model bank");
};

BankMetrics& bank_metrics() {
  static BankMetrics m;
  return m;
}

}  // namespace

WeightBank::WeightBank(const WeightBankConfig& config)
    : rows_(config.rows), cols_(config.cols), config_(config) {
  TRIDENT_REQUIRE(rows_ >= 1 && cols_ >= 1, "bank dimensions must be positive");
  TRIDENT_REQUIRE(config.plan.size() >= cols_,
                  "channel plan must cover every bank column");

  cells_.assign(static_cast<std::size_t>(rows_ * cols_),
                phot::GstCell(config_.gst));
  column_rings_.reserve(static_cast<std::size_t>(cols_));
  for (int c = 0; c < cols_; ++c) {
    column_rings_.emplace_back(config_.mrr, config_.plan.channel(c));
  }

  // Calibration sweep: realised (drop − through) for every GST level.
  // Delegated to the shared LUT builder — the same probe-cell sweep this
  // constructor used to run inline, so the table is bit-identical (the
  // linearised MRR model makes the choice of channel irrelevant).
  const phot::MrrWeightLut lut = phot::build_mrr_weight_lut(
      config_.mrr, config_.plan.channel(0), config_.gst);
  level_weights_ = lut.raw;
  raw_min_ = lut.raw_min;
  raw_max_ = lut.raw_max;
  weight_scale_ = lut.scale;
}

const phot::GstCell& WeightBank::cell(int r, int c) const {
  TRIDENT_REQUIRE(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                  "bank index out of range");
  return cells_[static_cast<std::size_t>(r * cols_ + c)];
}

phot::GstCell& WeightBank::cell(int r, int c) {
  TRIDENT_REQUIRE(r >= 0 && r < rows_ && c >= 0 && c < cols_,
                  "bank index out of range");
  return cells_[static_cast<std::size_t>(r * cols_ + c)];
}

double WeightBank::weight_at_level(int level) const {
  TRIDENT_REQUIRE(level >= 0 && level < config_.gst.levels,
                  "level out of range");
  const double raw = level_weights_[static_cast<std::size_t>(level)];
  return (raw - (raw_min_ + raw_max_) / 2.0) / weight_scale_;
}

double WeightBank::program_cell(int r, int c, double target) {
  const double clamped = std::clamp(target, -1.0, 1.0);
  const double mid = (raw_min_ + raw_max_) / 2.0;
  const double desired_raw = mid + clamped * weight_scale_;
  // Nearest calibrated level.  The sweep is monotonic in the level, so a
  // binary search over the table would also work; the table is only 255
  // entries and programming is not the hot path.
  int best = 0;
  double best_err = std::abs(level_weights_[0] - desired_raw);
  for (int l = 1; l < config_.gst.levels; ++l) {
    const double err =
        std::abs(level_weights_[static_cast<std::size_t>(l)] - desired_raw);
    if (err < best_err) {
      best_err = err;
      best = l;
    }
  }
  cell(r, c).program(best, config_.rng);
  if (telemetry::enabled()) {
    BankMetrics& m = bank_metrics();
    m.cells_programmed.add(1);
    if (!decoded_dirty_) {
      m.decode_invalidations.add(1);
    }
  }
  decoded_dirty_ = true;
  return realized_weight(r, c);
}

const std::vector<double>& WeightBank::decoded_weights() const {
  if (decoded_dirty_) {
    decoded_raw_.resize(cells_.size());
    for (std::size_t i = 0; i < cells_.size(); ++i) {
      decoded_raw_[i] =
          level_weights_[static_cast<std::size_t>(cells_[i].level())];
    }
    decoded_dirty_ = false;
    if (telemetry::enabled()) {
      bank_metrics().decode_rebuilds.add(1);
    }
  } else if (telemetry::enabled()) {
    bank_metrics().decode_hits.add(1);
  }
  return decoded_raw_;
}

double WeightBank::worst_quantization_error() const {
  double worst_gap = 0.0;
  for (std::size_t l = 1; l < level_weights_.size(); ++l) {
    worst_gap = std::max(
        worst_gap, std::abs(level_weights_[l] - level_weights_[l - 1]));
  }
  return worst_gap / 2.0 / weight_scale_;
}

nn::Matrix WeightBank::program(const nn::Matrix& w) {
  TRIDENT_REQUIRE(static_cast<int>(w.rows()) == rows_ &&
                      static_cast<int>(w.cols()) == cols_,
                  "weight matrix must match bank dimensions");
  nn::Matrix realized(w.rows(), w.cols());
  for (int r = 0; r < rows_; ++r) {
    for (int c = 0; c < cols_; ++c) {
      realized.at(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) =
          program_cell(r, c,
                       w.at(static_cast<std::size_t>(r),
                            static_cast<std::size_t>(c)));
    }
  }
  return realized;
}

double WeightBank::realized_weight(int r, int c) const {
  return weight_at_level(cell(r, c).level());
}

nn::Vector WeightBank::apply(const nn::Vector& inputs) {
  TRIDENT_REQUIRE(static_cast<int>(inputs.size()) == cols_,
                  "input vector must match bank columns");
  for (double x : inputs) {
    TRIDENT_REQUIRE(x >= 0.0 && x <= 1.0,
                    "optical amplitudes must be in [0, 1]");
  }
  // One read pulse per ring, charged once for the whole symbol.
  symbol_reads_ += 1;
  if (telemetry::enabled()) {
    bank_metrics().symbol_reads.add(1);
  }
  return apply_const(inputs);
}

nn::Matrix WeightBank::apply_batch(const nn::Matrix& inputs) {
  TRIDENT_REQUIRE(static_cast<int>(inputs.cols()) == cols_,
                  "input block must match bank columns");
  for (double x : inputs.data()) {
    TRIDENT_REQUIRE(x >= 0.0 && x <= 1.0,
                    "optical amplitudes must be in [0, 1]");
  }
  const std::size_t batch = inputs.rows();
  symbol_reads_ += batch;
  if (telemetry::enabled()) {
    bank_metrics().symbol_reads.add(batch);
  }

  const std::vector<double>& raw = decoded_weights();
  const double mid = (raw_min_ + raw_max_) / 2.0;
  const auto rows = static_cast<std::size_t>(rows_);
  const auto cols = static_cast<std::size_t>(cols_);
  nn::Matrix out(batch, rows);
  for (std::size_t b = 0; b < batch; ++b) {
    const auto in = inputs.row(b);
    double input_sum = 0.0;
    for (double x : in) {
      input_sum += x;
    }
    auto yr = out.row(b);
    for (std::size_t r = 0; r < rows; ++r) {
      const double* w = raw.data() + r * cols;
      double acc = 0.0;
      for (std::size_t c = 0; c < cols; ++c) {
        acc += w[c] * in[c];
      }
      yr[r] = (acc - mid * input_sum) / weight_scale_;
    }
  }
  return out;
}

nn::Vector WeightBank::apply_const(const nn::Vector& inputs) const {
  TRIDENT_REQUIRE(static_cast<int>(inputs.size()) == cols_,
                  "input vector must match bank columns");
  nn::Vector out(static_cast<std::size_t>(rows_), 0.0);
  double input_sum = 0.0;
  for (double x : inputs) {
    input_sum += x;
  }
  const std::vector<double>& raw = decoded_weights();
  const double mid = (raw_min_ + raw_max_) / 2.0;
  const auto rows = static_cast<std::size_t>(rows_);
  const auto cols = static_cast<std::size_t>(cols_);
  for (std::size_t r = 0; r < rows; ++r) {
    const double* w = raw.data() + r * cols;
    double acc = 0.0;
    for (std::size_t c = 0; c < cols; ++c) {
      acc += w[c] * inputs[c];
    }
    out[r] = (acc - mid * input_sum) / weight_scale_;
  }
  return out;
}

std::uint64_t WeightBank::total_writes() const {
  std::uint64_t n = 0;
  for (const auto& c : cells_) {
    n += c.writes();
  }
  return n;
}

Energy WeightBank::total_write_energy() const {
  Energy e;
  for (const auto& c : cells_) {
    e += c.total_write_energy();
  }
  return e;
}

Energy WeightBank::total_read_energy() const {
  Energy e;
  for (const auto& c : cells_) {
    e += c.total_read_energy();
  }
  // Symbol reads are charged at bank level (every cell shares the same read
  // pulse energy), so one counter stands in for rows×cols per-cell updates.
  e += config_.gst.read_energy * static_cast<double>(symbol_reads_) *
       static_cast<double>(cells_.size());
  return e;
}

std::uint64_t WeightBank::total_reads() const {
  std::uint64_t n = 0;
  for (const auto& c : cells_) {
    n += c.reads();
  }
  n += symbol_reads_ * cells_.size();
  return n;
}

double WeightBank::max_wear() const {
  double w = 0.0;
  for (const auto& c : cells_) {
    w = std::max(w, c.wear());
  }
  return w;
}

state::BankState WeightBank::capture_state() const {
  state::BankState s;
  s.rows = rows_;
  s.cols = cols_;
  s.levels.reserve(cells_.size());
  s.writes.reserve(cells_.size());
  s.reads.reserve(cells_.size());
  for (const phot::GstCell& c : cells_) {
    s.levels.push_back(c.level());
    s.writes.push_back(c.writes());
    s.reads.push_back(c.reads());
  }
  s.symbol_reads = symbol_reads_;
  return s;
}

void WeightBank::restore_state(const state::BankState& snapshot) {
  TRIDENT_REQUIRE(snapshot.rows == rows_ && snapshot.cols == cols_,
                  "bank snapshot dimensions do not match this bank");
  TRIDENT_REQUIRE(snapshot.levels.size() == cells_.size() &&
                      snapshot.writes.size() == cells_.size() &&
                      snapshot.reads.size() == cells_.size(),
                  "bank snapshot cell count does not match this bank");
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    cells_[i].restore(snapshot.levels[i], snapshot.writes[i],
                      snapshot.reads[i]);
  }
  symbol_reads_ = snapshot.symbol_reads;
  decoded_dirty_ = true;
}

}  // namespace trident::core
