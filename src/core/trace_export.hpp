// Event-trace export in the Chrome tracing (about://tracing, Perfetto)
// JSON format.
//
// `simulate_array` can record the full program/stream/output-pass schedule;
// this module renders it as a trace file where each PE is a "thread" —
// load it in a trace viewer to see the tile schedule, the programming
// bubbles, and the layer barriers at a glance.
#pragma once

#include <iosfwd>
#include <string>

#include "core/array_sim.hpp"

namespace trident::core {

/// Writes `result.trace` as Chrome-tracing JSON to `os` (complete-event
/// "X" records; timestamps in microseconds as the format requires).
void write_chrome_trace(const ArraySimResult& result, std::ostream& os);

/// Convenience: render to a string (tests, small traces).
[[nodiscard]] std::string chrome_trace_json(const ArraySimResult& result);

}  // namespace trident::core
