// Time-resolved power profile of a simulated run.
//
// The §IV power story is static: 44 PEs × 0.67 W ≤ 30 W.  But a running
// accelerator is a mixture of states — PEs programming (0.67 W), PEs
// streaming with resident weights (0.11 W), PEs idle between layers — so
// the *instantaneous* draw depends on the schedule.  This module converts
// an event trace from simulate_array into a piecewise-constant power
// timeline and reports the peak (must stay within the budget: the claim,
// checked dynamically), the average, and the time-integral energy.
#pragma once

#include <vector>

#include "arch/photonic.hpp"
#include "core/array_sim.hpp"

namespace trident::core {

using units::Power;

/// One step of the piecewise-constant power timeline.
struct PowerSample {
  Time at;      ///< step start
  Power total;  ///< accelerator draw from `at` until the next sample
};

struct PowerProfile {
  std::vector<PowerSample> timeline;
  Power peak;
  Power average;          ///< energy / makespan
  units::Energy energy;   ///< ∫ P dt over the makespan
  Time makespan;

  /// Whether the instantaneous draw ever exceeded `budget`.
  [[nodiscard]] bool within(Power budget) const {
    return peak.W() <= budget.W() + 1e-12;
  }
};

/// Per-PE power by activity state, derived from the accelerator's PE
/// power model.
struct PeStatePower {
  Power programming;  ///< GST write pulses active (Table III total)
  Power streaming;    ///< weights resident, optics running
  Power idle;         ///< receivers + cache + control only

  [[nodiscard]] static PeStatePower from(
      const arch::PhotonicAccelerator& accelerator);
};

/// Builds the power profile of `result` (must carry a trace) for the
/// accelerator whose schedule it is.
[[nodiscard]] PowerProfile power_profile(
    const ArraySimResult& result,
    const arch::PhotonicAccelerator& accelerator);

}  // namespace trident::core
