// Quantized int8 inference tier (the "fast" serving path).
//
// The photonic functional model quantizes every weight and input anyway —
// GST cells hold one of 255 levels, the modulator DAC is 8-bit — so a
// noise-free forward pass never needs double-precision device math: the
// whole computation collapses to integer level arithmetic plus one scale
// multiply per output.  This module ships that observation as two tiers:
//
//   * QuantizedBackend — a drop-in nn::MatvecBackend: weight matrices are
//     compiled once into pre-packed int8 level panels (cached by address,
//     guarded by a content fingerprint) and executed through the blocked
//     multi-ISA int8 GEMM kernels (src/nn/int8_gemm) with exact int32
//     accumulation.  Ledger accounting mirrors PhotonicBackend call for
//     call — level reads, program events, symbol counts — so energy books
//     and the chaos conservation invariants keep holding.
//
//   * QuantizedProgram — the fully fused plan: one compile walk of an Mlp
//     precomputes per-layer weight panels AND per-layer int8→int8
//     activation tables (LDSU threshold + GST slope + requantization folded
//     into one 256-entry lookup, built from the device LUTs in
//     src/photonics/device_lut), so inference never leaves integers
//     between layers.  Per-layer activation ranges are calibrated from a
//     reference forward pass, which yields a *provable* output error bound
//     against the double-precision reference (`unit_error_bound`).
//
// Error-bound contract: for inputs whose per-layer activations stay inside
// the calibrated envelope (`saturated == false`), every fast-tier output
// differs from the FloatBackend reference by at most the reported bound —
// a closed-form function of the SymmetricQuantizer step sizes.  The zoo
// equivalence tests assert exactly this, plus top-1 agreement.
#pragma once

#include <cstdint>
#include <unordered_map>
#include <vector>

#include "common/quantize.hpp"
#include "core/photonic_backend.hpp"
#include "nn/matrix.hpp"
#include "nn/mlp.hpp"
#include "photonics/device_lut.hpp"

namespace trident::core {

struct QuantizedBackendConfig {
  int weight_bits = 8;  ///< GST level grid (must be ≤ 8 to pack into int8)
  int input_bits = 8;   ///< modulator DAC grid (must be ≤ 8)
};

/// int8 SIMD inference backend.  Deterministic (no noise model): it computes
/// exactly what a noise-free PhotonicBackend computes, up to one extra weight
/// quantization — see matmul_error_bound.  Like PhotonicBackend, an instance
/// is driven from a single thread (each serving replica owns one).
class QuantizedBackend final : public nn::MatvecBackend {
 public:
  explicit QuantizedBackend(const QuantizedBackendConfig& config = {});

  [[nodiscard]] nn::Vector matvec(const nn::Matrix& w,
                                  const nn::Vector& x) override;
  [[nodiscard]] nn::Vector matvec_transposed(const nn::Matrix& w,
                                             const nn::Vector& x) override;
  /// In-situ SGD step on the weight grid — same deterministic semantics as
  /// a noise-free PhotonicBackend (sub-LSB updates are lost), and the
  /// compiled panel for `w` is invalidated.
  void rank1_update(nn::Matrix& w, const nn::Vector& dh,
                    const nn::Vector& y_prev, double lr) override;

  /// Batched forward through the blocked int8 GEMM.  Row b is bit-identical
  /// to matvec(w, x.row(b)): the int32 accumulation is exact (no rounding,
  /// no order sensitivity) and the per-sample scale multiplies identically.
  [[nodiscard]] nn::Matrix matmul(const nn::Matrix& w,
                                  const nn::Matrix& x) override;
  [[nodiscard]] nn::Matrix matmul_transposed(const nn::Matrix& w,
                                             const nn::Matrix& x) override;

  /// Fused plan execution: streams the plan's pre-packed int8 panels
  /// through int8_gemm with arena-resident scratch — no per-lookup content
  /// fingerprint (plan immutability replaces it) and zero steady-state
  /// heap allocation.  Only taken when the plan's weight grid matches this
  /// backend's (otherwise the per-op interpreter runs, which re-packs at
  /// the right grid through plan_for); outputs and ledger counters are
  /// bit-identical to Mlp::forward_batch through matmul either way.
  bool run_plan(const nn::ExecutionPlan& plan, const nn::Matrix& x,
                nn::PlanArena& arena) override;

  [[nodiscard]] const PhotonicLedger& ledger() const { return ledger_; }
  [[nodiscard]] const QuantizedBackendConfig& config() const {
    return config_;
  }
  [[nodiscard]] double weight_lsb() const { return weight_quantizer_.step(); }

  /// Closed-form bound on |fast − reference| for one output element of a
  /// matmul against a weight matrix with `cols` fan-in and entries in
  /// [-1, 1], where the per-sample DAC scale was `x_scale`:
  ///
  ///   x_scale · cols · (w_step/2 + x_step/2 + w_step·x_step/4 + 4·cols·ε)
  ///
  /// The first two terms are the quantizer rounding of weights and inputs,
  /// the third their cross term, the last the float accumulation slop of
  /// the double-precision reference (the int32 path is exact).  Also valid
  /// against a noise-free PhotonicBackend (which shares the input grid, so
  /// its distance is smaller).
  [[nodiscard]] double matmul_error_bound(std::size_t cols,
                                          double x_scale) const;

  // --- snapshot/serving hooks (parity with PhotonicBackend) ---------------
  void restore_ledger(const PhotonicLedger& ledger) { ledger_ = ledger; }
  void mark_resident(const nn::Matrix& w) {
    resident_matrix_ = static_cast<const void*>(&w);
  }
  [[nodiscard]] bool is_resident(const nn::Matrix& w) const {
    return resident_matrix_ == static_cast<const void*>(&w);
  }

 private:
  /// Pre-packed int8 level panel of one weight matrix.  Keyed by matrix
  /// address but guarded by a content fingerprint: weight hot-swap copies
  /// new values into the SAME buffers (and rank-1 updates mutate them in
  /// place), so the address alone can go stale — every lookup re-hashes.
  struct WeightPlan {
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::uint64_t fingerprint = 0;
    std::vector<std::int8_t> levels;  ///< row-major rows×cols
  };

  [[nodiscard]] const WeightPlan& plan_for(const nn::Matrix& w);
  void ensure_programmed(const nn::Matrix& w);

  QuantizedBackendConfig config_;
  SymmetricQuantizer weight_quantizer_;
  SymmetricQuantizer input_quantizer_;
  PhotonicLedger ledger_;
  std::unordered_map<const void*, WeightPlan> plans_;
  const void* resident_matrix_ = nullptr;
};

/// Fully fused compiled inference plan for one Mlp: per-layer int8 weight
/// panels plus per-layer int8→int8 activation tables.  Compilation walks the
/// model once with the double reference over `calibration` (per-sample
/// normalised, like the DAC does) to size each layer's pre-activation and
/// activation grids; `range_margin` widens them so same-distribution inputs
/// do not saturate.
class QuantizedProgram {
 public:
  QuantizedProgram(const nn::Mlp& model, const nn::Matrix& calibration,
                   const QuantizedBackendConfig& config = {},
                   double range_margin = 1.5);

  /// Fused forward: returns the output logits (batch × out).  Integers flow
  /// between layers; the only per-element float work is the int32→int8
  /// requantization at each layer boundary and the final logit scaling.
  /// If `saturated` is non-null, it reports whether any intermediate left
  /// its calibrated range (the error bound only binds when false).
  [[nodiscard]] nn::Matrix forward(const nn::Matrix& x,
                                   bool* saturated = nullptr) const;

  /// Output-logit error bound versus the FloatBackend reference, for a
  /// sample whose DAC scale was 1 (multiply by the per-sample scale
  /// max(1, max|x|) for arbitrary inputs).  Derived purely from quantizer
  /// step sizes, layer fan-ins, calibrated ranges, and activation Lipschitz
  /// constants — computed once at compile time.
  [[nodiscard]] double unit_error_bound() const { return unit_bound_; }

  [[nodiscard]] int depth() const { return static_cast<int>(layers_.size()); }
  [[nodiscard]] const QuantizedBackendConfig& config() const {
    return config_;
  }

 private:
  struct FusedLayer {
    std::size_t rows = 0;
    std::size_t cols = 0;
    std::vector<std::int8_t> weights;  ///< packed levels, row-major
    double w_step = 0.0;               ///< weight-grid step
    double in_step = 0.0;   ///< value of one input level (prev grid step)
    double h_range = 0.0;   ///< calibrated pre-activation range
    double h_step = 0.0;    ///< pre-activation grid step (8-bit LDSU)
    int h_half_steps = 0;
    double out_step = 0.0;  ///< value of one output level (next grid step)
    phot::ActivationLut lut;  ///< h level → next-layer input level
    bool has_lut = false;     ///< false on the (identity) output layer
  };

  QuantizedBackendConfig config_;
  std::vector<FusedLayer> layers_;
  double unit_bound_ = 0.0;
};

/// Fast-vs-exact audit of one model: runs the double reference and the fused
/// int8 tier over `eval` (calibrating the program on `calibration`) and
/// reports both outputs, the per-sample bound, and agreement statistics.
/// The error-bound contract the tests pin down is:
///   !saturated  ⇒  max_abs_error ≤ max over samples of bound.
struct FastPathReport {
  nn::Matrix exact;           ///< reference logits (batch × out)
  nn::Matrix fast;            ///< fused-tier logits (batch × out)
  std::vector<double> bound;  ///< per-sample error bound
  double max_abs_error = 0.0;
  double top1_agreement = 1.0;  ///< fraction of samples with matching argmax
  bool saturated = false;
};

[[nodiscard]] FastPathReport check_fast_path(
    const nn::Mlp& model, const nn::Matrix& calibration,
    const nn::Matrix& eval, const QuantizedBackendConfig& config = {});

}  // namespace trident::core
