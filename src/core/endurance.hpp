// PCM endurance / lifetime analysis.
//
// §III.C: "the number of operation cycles is eventually limited by the
// endurance of the PCM cells.  However, endurance is not a concern because
// individual PCM devices ... have already shown the ability to perform a
// trillion switching cycles" [17].  This module turns that assertion into
// numbers: given a workload's tile schedule, how often is each GST weight
// cell rewritten and each activation cell switched, and how long until a
// cell reaches its rated cycles at a given duty factor?
//
// (Running the model makes the fine print visible: at 100 % duty the
// activation cells — which must recrystallise after every firing — burn
// through 10¹² cycles in hours, so realistic edge duty cycles and wear
// management matter; see EXPERIMENTS.md for the discussion.)
#pragma once

#include "arch/photonic.hpp"
#include "dataflow/analyzer.hpp"
#include "nn/layer.hpp"
#include "photonics/constants.hpp"

namespace trident::core {

struct EnduranceConfig {
  double rated_cycles = phot::kGstEnduranceCycles;  ///< [17]
  /// Fraction of wall-clock time the accelerator actually runs inference.
  double duty_cycle = 1.0;
  /// Inference batch (programming amortisation, as in the latency model).
  int batch = 1;
  /// Fraction of logits that actually exceed the threshold and switch the
  /// activation cell (sub-threshold outputs leave it crystalline).  ~0.5
  /// for zero-centred logits; set 1.0 for the worst case.
  double firing_fraction = 0.5;
};

struct EnduranceReport {
  /// Mean GST write pulses per *weight cell* per inference: tiles rotate
  /// through the banks, so every resident cell is rewritten once per
  /// round it participates in.
  double weight_writes_per_inference = 0.0;
  /// Switching events per *activation cell* per inference: each activated
  /// output element reaches exactly one activation cell, and only
  /// supra-threshold logits switch it.
  double activation_switches_per_inference = 0.0;
  double inferences_per_second = 0.0;
  /// Wall-clock years until the rated cycles are consumed.
  double weight_cell_lifetime_years = 0.0;
  double activation_cell_lifetime_years = 0.0;
  /// The binding constraint of the two.
  double lifetime_years = 0.0;
};

/// Inference-mode endurance analysis of `model` on `accelerator`.
[[nodiscard]] EnduranceReport inference_endurance(
    const nn::ModelSpec& model, const arch::PhotonicAccelerator& accelerator,
    const EnduranceConfig& config = {});

/// Training-mode analysis: three passes re-encode the banks and the update
/// rewrites every weight, so per-step wear is ~3× the inference figure
/// plus one full-weight write.
[[nodiscard]] EnduranceReport training_endurance(
    const nn::ModelSpec& model, const arch::PhotonicAccelerator& accelerator,
    const EnduranceConfig& config = {});

}  // namespace trident::core
