// Full-spectrum weight-bank transfer analysis.
//
// The functional WeightBank evaluates each ring only at its own channel;
// this module computes the bank's COMPLETE spectral transfer matrix: every
// ring's drop/through response evaluated at every channel's wavelength.
// The result is the physically realised matrix
//
//     H[r][i] = Σ_c  w_response(ring_{r,c}, λ_i)
//
// whose off-diagonal (in the channel dimension) terms are the inter-
// channel crosstalk the phot::ChannelPlan analysis bounds analytically.  From H
// we measure the realised MVM error against the programmed weights and
// the effective bit accuracy — connecting device geometry to arithmetic
// precision without any hand-waving in between.
//
// Physical subtlety captured here: light dropped by an earlier ring in a
// row is gone; the cascade attenuates downstream channels.  We model the
// row as a serial bus: channel i reaches ring c after passing the through
// ports of rings 0..c-1 at λ_i.
#pragma once

#include <vector>

#include "nn/matrix.hpp"
#include "photonics/gst.hpp"
#include "photonics/mrr.hpp"
#include "photonics/wdm.hpp"

namespace trident::core {

/// Where the GST cell sits relative to the ring.
enum class GstPlacement {
  /// Inside the cavity (Fig 2b read literally): maximal weight swing, but
  /// heavy crystalline loss broadens the resonance and smears absorption
  /// across neighbouring channels — weight-dependent crosstalk.
  kIntracavity,
  /// On the drop waveguide after the ring: the cavity stays high-Q and
  /// fixed; the GST attenuates only the already-dropped signal.  Crosstalk
  /// reduces to the ring's static Lorentzian leakage.
  kPostDrop,
};

struct SpectralBankConfig {
  int rows = 4;
  int cols = 4;
  phot::MrrDesign mrr;
  phot::GstCellParams gst;
  phot::ChannelPlan plan{4};
  GstPlacement placement = GstPlacement::kIntracavity;
};

/// A weight bank evaluated with full spectral fidelity.
class SpectralWeightBank {
 public:
  explicit SpectralWeightBank(const SpectralBankConfig& config);

  [[nodiscard]] int rows() const { return config_.rows; }
  [[nodiscard]] int cols() const { return config_.cols; }

  /// Programs targets ∈ [-1, 1] per cell (nearest calibrated GST level,
  /// same mapping as core::WeightBank).
  void program(const nn::Matrix& targets);

  /// Closed-loop programming against the MEASURED transfer matrix: after
  /// the open-loop program, iteratively re-aims every cell by the residual
  /// H − targets (Gauss-Seidel over the weakly coupled crosstalk terms).
  /// This is the capability in-situ hardware gets for free — the same
  /// read-out that enables training also enables crosstalk-compensated
  /// weight placement.  Returns the iterations used.
  int program_compensated(const nn::Matrix& targets, int max_iterations = 8);

  /// Max |H − targets| against an arbitrary reference (the right metric
  /// after compensated programming, where per-cell aims differ from the
  /// logical targets).
  [[nodiscard]] double worst_error_vs(
      const nn::Matrix& targets,
      units::Length ambient_shift = units::Length::meters(0.0)) const;

  /// Largest |ambient drift| (one-sided) at which worst_error_vs stays
  /// below `tolerance` — the bank's uncompensated temperature window,
  /// convertible to kelvin at 0.08 nm/K.
  [[nodiscard]] units::Length ambient_tolerance(
      const nn::Matrix& targets, double tolerance = 0.05) const;

  /// The realised transfer matrix H (rows × cols): row r's balanced-
  /// detector response to unit power on channel i, including the serial
  /// bus cascade and every ring's response at every wavelength.
  /// `ambient_shift` models a COMMON-MODE resonance drift of every ring
  /// (silicon: ≈ 0.08 nm/K of ambient temperature).  Trident's rings have
  /// no heaters, so unlike thermally tuned banks there is nothing on-chip
  /// to track ambient drift — this is the knob that quantifies the cost.
  [[nodiscard]] nn::Matrix transfer_matrix(
      units::Length ambient_shift = units::Length::meters(0.0)) const;

  /// The ideal (crosstalk-free) weight matrix the programming aimed for,
  /// in the same normalised units as transfer_matrix().
  [[nodiscard]] const nn::Matrix& ideal_weights() const { return ideal_; }

  /// Max |H - W_ideal| over all entries: the raw, uncalibrated arithmetic
  /// error.  Dominated by systematic per-channel effects (bus insertion
  /// loss, off-resonance drop offsets) that any real weight bank trims out
  /// during bring-up.
  [[nodiscard]] double worst_weight_error() const;

  /// Residual error after the standard bring-up calibration: a per-channel
  /// affine correction (gain + offset, fitted least-squares over the rows).
  /// What remains is the *weight-dependent* crosstalk that cannot be
  /// calibrated away — the quantity that actually limits precision.
  [[nodiscard]] double calibrated_error() const;

  /// Effective bits from the calibrated error:
  /// floor(log2(1 / calibrated_error())), clamped to [1, 16] — directly
  /// comparable to analyze_crosstalk's analytical estimate.
  [[nodiscard]] int effective_bits() const;

 private:
  SpectralBankConfig config_;
  std::vector<phot::Mrr> rings_;        ///< per column (shared geometry per row)
  std::vector<phot::GstCell> cells_;    ///< row-major rows×cols
  nn::Matrix ideal_;
  double raw_min_ = 0.0;
  double raw_max_ = 0.0;
  double scale_ = 1.0;
};

}  // namespace trident::core
