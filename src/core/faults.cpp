#include "core/faults.hpp"

#include "common/error.hpp"

namespace trident::core {

FaultyBackend::FaultyBackend(const FaultConfig& config)
    : config_(config), inner_(config.hardware), fault_rng_(config.seed) {
  TRIDENT_REQUIRE(config.fault_rate >= 0.0 && config.fault_rate < 0.5,
                  "fault rate must be in [0, 0.5)");
  TRIDENT_REQUIRE(config.stuck_value >= -1.0 && config.stuck_value <= 1.0,
                  "stuck value must lie in the weight range");
}

const FaultyBackend::Mask& FaultyBackend::mask_for(const nn::Matrix& w) {
  const void* key = static_cast<const void*>(&w);
  auto it = masks_.find(key);
  if (it == masks_.end()) {
    Mask mask;
    for (std::size_t i = 0; i < w.size(); ++i) {
      if (fault_rng_.bernoulli(config_.fault_rate)) {
        mask.positions.push_back(i);
        // Alternate stuck-SET / stuck-RESET.
        const bool stuck_set = fault_rng_.bernoulli(0.5);
        mask.stuck.push_back(stuck_set ? config_.stuck_value
                                       : -config_.stuck_value);
      }
    }
    it = masks_.emplace(key, std::move(mask)).first;
  }
  return it->second;
}

nn::Matrix FaultyBackend::effective(const nn::Matrix& w) {
  const Mask& mask = mask_for(w);
  nn::Matrix eff = w;
  for (std::size_t i = 0; i < mask.positions.size(); ++i) {
    eff.data()[mask.positions[i]] = mask.stuck[i];
  }
  return eff;
}

std::size_t FaultyBackend::fault_count(const nn::Matrix& w) {
  return mask_for(w).positions.size();
}

nn::Vector FaultyBackend::matvec(const nn::Matrix& w, const nn::Vector& x) {
  const nn::Matrix eff = effective(w);
  return inner_.matvec(eff, x);
}

nn::Vector FaultyBackend::matvec_transposed(const nn::Matrix& w,
                                            const nn::Vector& x) {
  const nn::Matrix eff = effective(w);
  return inner_.matvec_transposed(eff, x);
}

nn::Matrix FaultyBackend::matmul(const nn::Matrix& w, const nn::Matrix& x) {
  // One mask application for the whole block: the inner batched kernel is
  // loop-identical per row, so outputs match a loop of faulted matvecs
  // bit-for-bit while the bank is programmed once instead of per sample.
  const nn::Matrix eff = effective(w);
  return inner_.matmul(eff, x);
}

nn::Matrix FaultyBackend::matmul_transposed(const nn::Matrix& w,
                                            const nn::Matrix& x) {
  const nn::Matrix eff = effective(w);
  return inner_.matmul_transposed(eff, x);
}

void FaultyBackend::rank1_update(nn::Matrix& w, const nn::Vector& dh,
                                 const nn::Vector& y_prev, double lr) {
  inner_.rank1_update(w, dh, y_prev, lr);
  // Writes to dead cells are lost: the stored value snaps back.  (It does
  // not matter what value the master copy holds — reads always see the
  // stuck value — but keeping them pinned makes inspection honest.)
  const Mask& mask = mask_for(w);
  for (std::size_t i = 0; i < mask.positions.size(); ++i) {
    w.data()[mask.positions[i]] = mask.stuck[i];
  }
}

FaultStudy fault_study(const nn::Dataset& train_set,
                       const nn::Dataset& test_set,
                       const std::vector<int>& layer_sizes,
                       const FaultConfig& faults, int epochs,
                       int finetune_epochs, double learning_rate,
                       std::uint64_t init_seed) {
  TRIDENT_REQUIRE(epochs >= 1 && finetune_epochs >= 0,
                  "epoch counts must be sensible");
  Rng init(init_seed);
  nn::Mlp net(layer_sizes, nn::Activation::kGstPhotonic, init);

  nn::FloatBackend clean;
  nn::TrainConfig cfg;
  cfg.epochs = epochs;
  cfg.learning_rate = learning_rate;
  (void)nn::fit(net, train_set, cfg, clean);

  FaultStudy study;
  study.clean_accuracy = nn::evaluate(net, test_set, clean);

  FaultyBackend hardware(faults);
  study.faulty_accuracy = nn::evaluate(net, test_set, hardware);

  if (finetune_epochs > 0) {
    nn::TrainConfig ft;
    ft.epochs = finetune_epochs;
    ft.learning_rate = learning_rate;
    (void)nn::fit(net, train_set, ft, hardware);
  }
  study.retrained_accuracy = nn::evaluate(net, test_set, hardware);
  return study;
}

}  // namespace trident::core
