#include "core/variation.hpp"

#include <algorithm>

#include "common/error.hpp"

namespace trident::core {

VariationBackend::VariationBackend(const VariationConfig& config)
    : config_(config), inner_(config.hardware), gain_rng_(config.seed) {
  TRIDENT_REQUIRE(config.gain_sigma >= 0.0 && config.gain_sigma < 0.5,
                  "gain sigma must be in [0, 0.5)");
  TRIDENT_REQUIRE(config.row_offset_sigma >= 0.0,
                  "row offset sigma must be non-negative");
  TRIDENT_REQUIRE(config.weight_offset_sigma >= 0.0 &&
                      config.weight_offset_sigma < 0.5,
                  "weight offset sigma must be in [0, 0.5)");
}

const std::vector<double>& VariationBackend::gains(const nn::Matrix& w) {
  const void* key = static_cast<const void*>(&w);
  auto it = gain_maps_.find(key);
  if (it == gain_maps_.end()) {
    std::vector<double> g(w.size());
    for (double& v : g) {
      v = std::max(0.1, gain_rng_.normal(1.0, config_.gain_sigma));
    }
    it = gain_maps_.emplace(key, std::move(g)).first;
    std::vector<double> cell_off(w.size());
    for (double& v : cell_off) {
      v = gain_rng_.normal(0.0, config_.weight_offset_sigma);
    }
    cell_offsets_.emplace(key, std::move(cell_off));
    std::vector<double> offsets(w.rows());
    for (double& v : offsets) {
      v = gain_rng_.normal(0.0, config_.row_offset_sigma);
    }
    row_offsets_.emplace(key, std::move(offsets));
  }
  return it->second;
}

nn::Matrix VariationBackend::effective(const nn::Matrix& w) {
  const std::vector<double>& g = gains(w);
  const std::vector<double>& delta = cell_offsets_.at(static_cast<const void*>(&w));
  nn::Matrix eff(w.rows(), w.cols());
  for (std::size_t i = 0; i < w.size(); ++i) {
    eff.data()[i] =
        std::clamp(std::clamp(w.data()[i], -1.0, 1.0) * g[i] + delta[i],
                   -1.0, 1.0);
  }
  return eff;
}

nn::Vector VariationBackend::matvec(const nn::Matrix& w, const nn::Vector& x) {
  const nn::Matrix eff = effective(w);
  nn::Vector y = inner_.matvec(eff, x);
  const auto& offsets = row_offsets_.at(static_cast<const void*>(&w));
  for (std::size_t r = 0; r < y.size(); ++r) {
    y[r] += offsets[r];
  }
  return y;
}

nn::Vector VariationBackend::matvec_transposed(const nn::Matrix& w,
                                               const nn::Vector& x) {
  // The backward pass runs through the same physical cells, so it sees the
  // same gains — this is exactly why in-situ gradients compensate
  // variation while offline gradients cannot.
  const nn::Matrix eff = effective(w);
  return inner_.matvec_transposed(eff, x);
}

void VariationBackend::rank1_update(nn::Matrix& w, const nn::Vector& dh,
                                    const nn::Vector& y_prev, double lr) {
  // The *stored* levels are updated; their effect on the optics is still
  // filtered through the per-cell gains on the next read.
  inner_.rank1_update(w, dh, y_prev, lr);
}

DeploymentStudy deployment_study(const nn::Dataset& train_set,
                                 const nn::Dataset& test_set,
                                 const std::vector<int>& layer_sizes,
                                 const VariationConfig& variation, int epochs,
                                 int finetune_epochs, double learning_rate,
                                 std::uint64_t init_seed) {
  TRIDENT_REQUIRE(epochs >= 1 && finetune_epochs >= 0,
                  "epoch counts must be sensible");

  // 1. Offline training in float — the "digital model" of §I.
  Rng init(init_seed);
  nn::Mlp net(layer_sizes, nn::Activation::kGstPhotonic, init);
  nn::FloatBackend float_backend;
  nn::TrainConfig cfg;
  cfg.epochs = epochs;
  cfg.learning_rate = learning_rate;
  (void)nn::fit(net, train_set, cfg, float_backend);

  DeploymentStudy study;
  study.float_accuracy = nn::evaluate(net, test_set, float_backend);

  // 2. Deploy the trained weights onto varied hardware.
  VariationBackend hardware(variation);
  study.deployed_accuracy = nn::evaluate(net, test_set, hardware);

  // 3. In-situ fine-tuning on the same hardware (same gains).
  if (finetune_epochs > 0) {
    nn::TrainConfig ft;
    ft.epochs = finetune_epochs;
    ft.learning_rate = learning_rate;
    (void)nn::fit(net, train_set, ft, hardware);
  }
  study.finetuned_accuracy = nn::evaluate(net, test_set, hardware);

  const double gap = study.float_accuracy - study.deployed_accuracy;
  study.recovered_fraction =
      gap > 1e-9
          ? (study.finetuned_accuracy - study.deployed_accuracy) / gap
          : 1.0;
  return study;
}

}  // namespace trident::core
