// Hard-fault injection for reliability studies.
//
// PCM cells fail in two characteristic ways: stuck-SET (the cell no longer
// crystallises — reads as a large weight) and stuck-RESET (no longer
// amorphises — small weight).  A deployed accelerator accumulates such
// faults over its lifetime (the endurance analysis says how fast); the
// questions that matter are (a) how much accuracy a given fault density
// costs, and (b) whether in-situ training can *route around* dead cells —
// something an offline-trained deployment cannot do.
//
// FaultyBackend wraps the photonic backend with a frozen per-matrix fault
// mask: faulty positions read a stuck value on every forward/backward
// access, and rank-1 updates to them are silently lost (the device no
// longer switches).
#pragma once

#include <unordered_map>
#include <vector>

#include "core/photonic_backend.hpp"
#include "nn/dataset.hpp"
#include "nn/train.hpp"

namespace trident::core {

struct FaultConfig {
  /// Fraction of cells that are stuck (split evenly SET/RESET).
  double fault_rate = 0.01;
  /// Stuck-SET cells read this weight; stuck-RESET cells read its negative.
  double stuck_value = 1.0;
  PhotonicBackendConfig hardware;
  std::uint64_t seed = 0xDEAD;
};

class FaultyBackend final : public nn::MatvecBackend {
 public:
  explicit FaultyBackend(const FaultConfig& config = {});

  [[nodiscard]] nn::Vector matvec(const nn::Matrix& w,
                                  const nn::Vector& x) override;
  [[nodiscard]] nn::Vector matvec_transposed(const nn::Matrix& w,
                                             const nn::Vector& x) override;
  void rank1_update(nn::Matrix& w, const nn::Vector& dh,
                    const nn::Vector& y_prev, double lr) override;

  /// Batched forward on faulty hardware: imposes the stuck-cell mask ONCE
  /// per batch and hands the effective matrix to the photonic GEMM path.
  /// Outputs are bit-identical to a loop of faulted matvecs (the mask is
  /// frozen per matrix and the inner GEMM is loop-identical); the batch
  /// additionally amortises bank reprogramming across the block, which is
  /// what lets FaultyBackend ride the batched serving path.
  [[nodiscard]] nn::Matrix matmul(const nn::Matrix& w,
                                  const nn::Matrix& x) override;
  /// Batched gradient-vector pass with the same once-per-batch mask.
  [[nodiscard]] nn::Matrix matmul_transposed(const nn::Matrix& w,
                                             const nn::Matrix& x) override;

  [[nodiscard]] const FaultConfig& config() const { return config_; }
  [[nodiscard]] const PhotonicLedger& ledger() const {
    return inner_.ledger();
  }

  /// Number of stuck cells assigned to `w` (assigns the mask on first use).
  [[nodiscard]] std::size_t fault_count(const nn::Matrix& w);

 private:
  struct Mask {
    std::vector<std::size_t> positions;
    std::vector<double> stuck;
  };
  [[nodiscard]] const Mask& mask_for(const nn::Matrix& w);
  /// Copy of w with the stuck values imposed.
  [[nodiscard]] nn::Matrix effective(const nn::Matrix& w);

  FaultConfig config_;
  PhotonicBackend inner_;
  Rng fault_rng_;
  std::unordered_map<const void*, Mask> masks_;
};

/// The reliability experiment: train offline (clean float), deploy on
/// faulty hardware, then fine-tune in-situ on the same faulty hardware.
struct FaultStudy {
  double clean_accuracy = 0.0;
  double faulty_accuracy = 0.0;
  double retrained_accuracy = 0.0;
};

[[nodiscard]] FaultStudy fault_study(const nn::Dataset& train_set,
                                     const nn::Dataset& test_set,
                                     const std::vector<int>& layer_sizes,
                                     const FaultConfig& faults,
                                     int epochs = 30, int finetune_epochs = 10,
                                     double learning_rate = 0.05,
                                     std::uint64_t init_seed = 7);

}  // namespace trident::core
