// Photonic execution backend for the functional NN simulation.
//
// Implements nn::MatvecBackend with the behavioural constraints of the
// Trident hardware, without paying device-model cost per ring:
//
//   * weights live in GST cells → stored values are quantized to the
//     configured bit resolution (8 for GST, 6 for the thermal ablation);
//     SGD updates smaller than half an LSB are lost to rounding, which is
//     exactly why the paper says 6-bit hardware cannot train [34];
//   * inputs pass through the modulator DAC → input quantization;
//   * the analog accumulation can carry additive read-out noise;
//   * per-layer scaling mirrors hardware practice: the weight matrix is
//     normalised by its max |w| before programming and the scale is
//     re-applied electronically after detection;
//   * non-volatility: programming is charged only when the bank contents
//     actually change (weight reuse between calls is free — the 0.67 W →
//     0.11 W effect), and each programming event costs one parallel
//     write-pulse time;
//   * energy/time books: writes, symbols, reads, activations.
#pragma once

#include <cstdint>
#include <string>

#include "common/quantize.hpp"
#include "common/rng.hpp"
#include "common/units.hpp"
#include "nn/mlp.hpp"

namespace trident::core {

struct PhotonicBackendConfig {
  int weight_bits = 8;        ///< GST levels → 8; thermal crosstalk → 6
  int input_bits = 8;         ///< modulator DAC resolution
  double readout_noise = 0.0; ///< relative additive noise on each output
  /// Stochastic rounding of programmed weights (programming jitter acts as
  /// dither; off = deterministic round-to-nearest level).
  bool stochastic_rounding = false;
  std::uint64_t seed = 0x7d3ull;
};

/// Energy/latency ledger of everything the backend executed.
struct PhotonicLedger {
  std::uint64_t weight_writes = 0;     ///< GST cells programmed
  std::uint64_t program_events = 0;    ///< parallel bank writes
  std::uint64_t symbols = 0;           ///< optical symbols streamed
  std::uint64_t macs = 0;              ///< ring read-outs
  std::uint64_t activations = 0;       ///< GST activation firing events

  [[nodiscard]] units::Energy energy() const;
  [[nodiscard]] units::Time time() const;

  /// Zeroes all counters (start of a measured phase).
  void reset() { *this = PhotonicLedger{}; }

  friend bool operator==(const PhotonicLedger&,
                         const PhotonicLedger&) = default;
};

namespace detail {
/// Mirrors a ledger delta into the process-wide trident_ledger_* telemetry
/// counters (no-op when telemetry is disabled).  Every backend that keeps a
/// PhotonicLedger must mirror through here with the exact amounts it just
/// added, so a metrics snapshot reconstructs the summed ledger of ALL
/// backends in the process bit-for-bit — the invariant
/// chaos::check_ledger_conservation audits.
void mirror_ledger_delta(const PhotonicLedger& delta);
}  // namespace detail

/// Per-phase attribution: `after - before` is the hardware bill of
/// whatever ran in between (forward vs backward, per epoch, …) without
/// manual counter snapshots.  `before` must be an earlier snapshot of the
/// same monotonic ledger.
[[nodiscard]] PhotonicLedger operator-(const PhotonicLedger& after,
                                       const PhotonicLedger& before);
/// Aggregation across backends (e.g. summing an 8-bit and a 6-bit run's
/// bills; energy()/time() are linear in the counters, so the sum's bill is
/// the bill of the sum).
[[nodiscard]] PhotonicLedger operator+(const PhotonicLedger& a,
                                       const PhotonicLedger& b);

class PhotonicBackend final : public nn::MatvecBackend {
 public:
  explicit PhotonicBackend(const PhotonicBackendConfig& config = {});

  [[nodiscard]] nn::Vector matvec(const nn::Matrix& w,
                                  const nn::Vector& x) override;
  [[nodiscard]] nn::Vector matvec_transposed(const nn::Matrix& w,
                                             const nn::Vector& x) override;
  void rank1_update(nn::Matrix& w, const nn::Vector& dh,
                    const nn::Vector& y_prev, double lr) override;

  /// Batched forward: quantizes the whole input block in one pass, charges
  /// the ledger once per block, and runs the blocked GEMM kernel.  Outputs,
  /// noise draws, and ledger counters are bit-identical to a loop of
  /// per-sample matvec calls.
  [[nodiscard]] nn::Matrix matmul(const nn::Matrix& w,
                                  const nn::Matrix& x) override;
  /// Batched gradient-vector pass, loop-equivalent to matvec_transposed per
  /// sample (including one bank re-encode per sample — the hardware really
  /// does re-program Wᵀ for each gradient symbol pair, Table II).
  [[nodiscard]] nn::Matrix matmul_transposed(const nn::Matrix& w,
                                             const nn::Matrix& x) override;
  // update_batch intentionally keeps the base-class sequential loop: in-situ
  // GST programming quantizes after every sample, so the batched result is
  // defined BY the per-sample order.

  /// Fused plan execution: per layer, programs the plan's own weight panel,
  /// quantizes the block into the arena, multiplies against the pre-clamped
  /// panel, then applies noise/re-scale and the activation epilogue in
  /// place.  Outputs, RNG draws, and ledger counters are bit-identical to
  /// Mlp::forward_batch through matmul; the per-call clamped weight copy is
  /// the only work removed.  Zero steady-state heap allocation.
  bool run_plan(const nn::ExecutionPlan& plan, const nn::Matrix& x,
                nn::PlanArena& arena) override;

  [[nodiscard]] const PhotonicLedger& ledger() const { return ledger_; }
  [[nodiscard]] const PhotonicBackendConfig& config() const { return config_; }

  /// LSB of the stored-weight quantizer at unit scale.
  [[nodiscard]] double weight_lsb() const { return weight_quantizer_.step(); }

  // --- snapshot/restore hooks (state::Snapshot) --------------------------

  /// Serialised state of the hardware RNG (noise + stochastic rounding
  /// draws), so a resumed run replays the exact draw sequence.
  [[nodiscard]] std::string rng_state() const { return rng_.state(); }
  void restore_rng_state(const std::string& text) {
    rng_.restore_state(text);
  }

  /// Overwrites the ledger with a snapshotted one.  Deliberately NOT
  /// mirrored into telemetry: the metrics counters track operations this
  /// process executed, and restoring historical books must not re-count
  /// pulses a previous process already mirrored.
  void restore_ledger(const PhotonicLedger& ledger) { ledger_ = ledger; }

  /// Marks `w` as the matrix currently programmed into the bank, so the
  /// next forward through it skips the program burst (the physical cells
  /// kept their phase across the restart — non-volatility).
  void mark_resident(const nn::Matrix& w) { resident_matrix_ = &w; }
  [[nodiscard]] bool is_resident(const nn::Matrix& w) const {
    return resident_matrix_ == &w;
  }

 private:
  /// Charges programming for `w` unless it is still resident.
  void ensure_programmed(const nn::Matrix& w);
  /// Quantizes a value to the stored-weight grid at scale `scale`.
  [[nodiscard]] double quantize_weight(double v, double scale);

  PhotonicBackendConfig config_;
  SymmetricQuantizer weight_quantizer_;
  SymmetricQuantizer input_quantizer_;
  Rng rng_;
  PhotonicLedger ledger_;
  const void* resident_matrix_ = nullptr;
};

}  // namespace trident::core
