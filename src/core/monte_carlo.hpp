// Monte-Carlo studies over device randomness.
//
// Single-seed results can flatter or damn a design by luck; the claims
// that matter (training accuracy at a given bit resolution, deployment
// loss under fabrication variation) deserve means and spreads.  This
// module runs N independently seeded trials of the key functional
// experiments in parallel (one worker per trial via the thread pool) and
// reports distribution statistics.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "common/stats.hpp"
#include "core/variation.hpp"

namespace trident::core {

struct McSummary {
  int trials = 0;
  double mean = 0.0;
  double stddev = 0.0;
  double min = 0.0;
  double max = 0.0;
};

/// Runs `trial(seed)` for seeds 0..trials-1 in parallel and summarises the
/// returned metric.
[[nodiscard]] McSummary monte_carlo(
    int trials, const std::function<double(std::uint64_t seed)>& trial);

/// Mean/σ final training accuracy of the two-moons MLP on photonic
/// hardware at `weight_bits`, over `trials` seeds (data, init, hardware
/// noise all re-seeded per trial).  `batch_size` feeds the batched GEMM
/// training path (1 = per-sample SGD, identical to the historical loop).
[[nodiscard]] McSummary mc_training_accuracy(int weight_bits, int trials,
                                             int epochs = 60,
                                             double learning_rate = 0.05,
                                             int batch_size = 1);

/// Mean/σ deployed-accuracy drop (float minus deployed) of the §I
/// deployment experiment at the given variation strength.
[[nodiscard]] McSummary mc_deployment_gap(double weight_offset_sigma,
                                          int trials);

}  // namespace trident::core
