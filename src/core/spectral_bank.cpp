#include "core/spectral_bank.hpp"

#include <algorithm>
#include <cmath>

#include "common/error.hpp"

namespace trident::core {

namespace {

/// Per-ring interaction of channel light at `lambda` with ring `ring`
/// carrying GST state `cell` under the given placement:
///   `drop`    — power fraction delivered to the plus (drop) bus;
///   `through` — power fraction continuing along the main bus.
struct RingInteraction {
  double drop = 0.0;
  double through = 1.0;
};

[[nodiscard]] RingInteraction interact(const phot::Mrr& ring,
                                       const phot::GstCell& cell,
                                       units::Length lambda,
                                       GstPlacement placement) {
  RingInteraction out;
  if (placement == GstPlacement::kIntracavity) {
    const phot::MrrResponse r =
        ring.response(lambda, cell.amplitude_transmittance());
    out.drop = r.drop;
    out.through = r.through;
  } else {
    // Post-drop attenuator: the cavity runs at its intrinsic (high-Q)
    // state; the GST multiplies only the dropped power.
    const phot::MrrResponse r = ring.response(lambda, 1.0);
    out.drop = r.drop * cell.transmittance();
    out.through = r.through;
  }
  return out;
}

}  // namespace

SpectralWeightBank::SpectralWeightBank(const SpectralBankConfig& config)
    : config_(config), ideal_(1, 1) {
  TRIDENT_REQUIRE(config.rows >= 1 && config.cols >= 1,
                  "bank dimensions must be positive");
  TRIDENT_REQUIRE(config.plan.size() >= config.cols,
                  "channel plan must cover every column");

  rings_.reserve(static_cast<std::size_t>(config_.cols));
  for (int c = 0; c < config_.cols; ++c) {
    rings_.emplace_back(config_.mrr, config_.plan.channel(c));
    // Fabrication trimming: the ring sits exactly on its channel (the
    // constructor snaps to the nearest cavity mode, which can be a large
    // fraction of an FSR away).
    rings_.back().set_resonance(config_.plan.channel(c));
  }
  cells_.assign(static_cast<std::size_t>(config_.rows * config_.cols),
                phot::GstCell(config_.gst));
  ideal_ = nn::Matrix(static_cast<std::size_t>(config_.rows),
                      static_cast<std::size_t>(config_.cols));

  // Calibration: raw on-resonance (drop − through) across the level range.
  phot::GstCell probe(config_.gst);
  probe.program(0);
  const RingInteraction lo = interact(rings_.front(), probe,
                                      rings_.front().resonance(),
                                      config_.placement);
  probe.program(config_.gst.levels - 1);
  const RingInteraction hi = interact(rings_.front(), probe,
                                      rings_.front().resonance(),
                                      config_.placement);
  raw_min_ = std::min(lo.drop - lo.through, hi.drop - hi.through);
  raw_max_ = std::max(lo.drop - lo.through, hi.drop - hi.through);
  TRIDENT_ASSERT(raw_max_ > raw_min_, "degenerate calibration range");
  scale_ = (raw_max_ - raw_min_) / 2.0;
}

void SpectralWeightBank::program(const nn::Matrix& targets) {
  TRIDENT_REQUIRE(static_cast<int>(targets.rows()) == config_.rows &&
                      static_cast<int>(targets.cols()) == config_.cols,
                  "targets must match bank dimensions");
  const double mid = (raw_min_ + raw_max_) / 2.0;
  for (int r = 0; r < config_.rows; ++r) {
    for (int c = 0; c < config_.cols; ++c) {
      const double target = std::clamp(
          targets.at(static_cast<std::size_t>(r),
                     static_cast<std::size_t>(c)),
          -1.0, 1.0);
      const double desired_raw = mid + target * scale_;
      // Nearest level by scanning the (monotonic) single-ring response.
      int best = 0;
      double best_err = 1e300;
      phot::GstCell probe(config_.gst);
      const auto& ring = rings_[static_cast<std::size_t>(c)];
      for (int l = 0; l < config_.gst.levels; ++l) {
        probe.program(l);
        const RingInteraction resp =
            interact(ring, probe, ring.resonance(), config_.placement);
        const double err = std::abs(resp.drop - resp.through - desired_raw);
        if (err < best_err) {
          best_err = err;
          best = l;
        }
      }
      auto& cell = cells_[static_cast<std::size_t>(r * config_.cols + c)];
      cell.program(best);
      const RingInteraction realized =
          interact(ring, cell, ring.resonance(), config_.placement);
      ideal_.at(static_cast<std::size_t>(r), static_cast<std::size_t>(c)) =
          (realized.drop - realized.through - mid) / scale_;
    }
  }
}

int SpectralWeightBank::program_compensated(const nn::Matrix& targets,
                                            int max_iterations) {
  TRIDENT_REQUIRE(max_iterations >= 1, "need at least one iteration");
  program(targets);
  nn::Matrix aim = targets;
  int used = 0;
  double best = worst_error_vs(targets);
  for (int iter = 0; iter < max_iterations; ++iter) {
    const nn::Matrix h = transfer_matrix();
    for (std::size_t idx = 0; idx < aim.size(); ++idx) {
      aim.data()[idx] = std::clamp(
          aim.data()[idx] - (h.data()[idx] - targets.data()[idx]), -1.0, 1.0);
    }
    program(aim);
    ++used;
    const double err = worst_error_vs(targets);
    if (err >= best - 1e-6) {
      break;  // converged (or limited by quantization / reachable range)
    }
    best = err;
  }
  return used;
}

double SpectralWeightBank::worst_error_vs(const nn::Matrix& targets,
                                          units::Length ambient_shift) const {
  TRIDENT_REQUIRE(targets.rows() == static_cast<std::size_t>(config_.rows) &&
                      targets.cols() == static_cast<std::size_t>(config_.cols),
                  "targets must match bank dimensions");
  const nn::Matrix h = transfer_matrix(ambient_shift);
  double worst = 0.0;
  for (std::size_t idx = 0; idx < h.size(); ++idx) {
    worst = std::max(
        worst,
        std::abs(h.data()[idx] - std::clamp(targets.data()[idx], -1.0, 1.0)));
  }
  return worst;
}

nn::Matrix SpectralWeightBank::transfer_matrix(
    units::Length ambient_shift) const {
  const double mid = (raw_min_ + raw_max_) / 2.0;
  nn::Matrix h(static_cast<std::size_t>(config_.rows),
               static_cast<std::size_t>(config_.cols));
  for (int r = 0; r < config_.rows; ++r) {
    for (int i = 0; i < config_.cols; ++i) {
      // A common-mode ring shift of +s is equivalent to probing each ring
      // at λ − s (the channels themselves do not move).
      const units::Length lambda = units::Length::meters(
          config_.plan.channel(i).m() - ambient_shift.m());
      // Serial bus walk: channel i passes every ring of row r in order.
      double p = 1.0;
      double plus = 0.0;
      for (int c = 0; c < config_.cols; ++c) {
        const auto& cell =
            cells_[static_cast<std::size_t>(r * config_.cols + c)];
        const RingInteraction resp =
            interact(rings_[static_cast<std::size_t>(c)], cell, lambda,
                     config_.placement);
        plus += p * resp.drop;
        p *= resp.through;
      }
      const double minus = p;
      h.at(static_cast<std::size_t>(r), static_cast<std::size_t>(i)) =
          (plus - minus - mid) / scale_;
    }
  }
  return h;
}

double SpectralWeightBank::worst_weight_error() const {
  const nn::Matrix h = transfer_matrix();
  double worst = 0.0;
  for (std::size_t idx = 0; idx < h.size(); ++idx) {
    worst = std::max(worst, std::abs(h.data()[idx] - ideal_.data()[idx]));
  }
  return worst;
}

double SpectralWeightBank::calibrated_error() const {
  const nn::Matrix h = transfer_matrix();
  const auto rows = static_cast<std::size_t>(config_.rows);
  double worst = 0.0;
  for (std::size_t i = 0; i < static_cast<std::size_t>(config_.cols); ++i) {
    // Least-squares fit H[:,i] = a * W[:,i] + b over the rows.
    double sw = 0.0, sh = 0.0, sww = 0.0, swh = 0.0;
    for (std::size_t r = 0; r < rows; ++r) {
      const double w = ideal_.at(r, i);
      const double hv = h.at(r, i);
      sw += w;
      sh += hv;
      sww += w * w;
      swh += w * hv;
    }
    const double n = static_cast<double>(rows);
    const double denom = n * sww - sw * sw;
    double a = 1.0, b = 0.0;
    if (std::abs(denom) > 1e-12) {
      a = (n * swh - sw * sh) / denom;
      b = (sh - a * sw) / n;
    }
    // Residual after removing the channel's systematic gain/offset; guard
    // against degenerate fits (tiny |a| would blow the correction up).
    const double gain = std::abs(a) > 0.2 ? a : 1.0;
    for (std::size_t r = 0; r < rows; ++r) {
      const double corrected = (h.at(r, i) - b) / gain;
      worst = std::max(worst, std::abs(corrected - ideal_.at(r, i)));
    }
  }
  return worst;
}

int SpectralWeightBank::effective_bits() const {
  const double err = calibrated_error();
  if (err <= 0.0) {
    return 16;
  }
  return std::clamp(static_cast<int>(std::floor(std::log2(1.0 / err))), 1,
                    16);
}

units::Length SpectralWeightBank::ambient_tolerance(
    const nn::Matrix& targets, double tolerance) const {
  TRIDENT_REQUIRE(tolerance > 0.0, "tolerance must be positive");
  // The baseline error (no drift) may already be near the tolerance; the
  // window is where drift pushes it past.  Scan outward in 1 pm steps up
  // to one channel spacing.
  const double spacing_m = config_.plan.spacing().m();
  const double step = 5.0e-12;
  double last_ok = 0.0;
  for (double s = 0.0; s <= spacing_m; s += step) {
    const double err_pos =
        worst_error_vs(targets, units::Length::meters(s));
    const double err_neg =
        worst_error_vs(targets, units::Length::meters(-s));
    if (std::max(err_pos, err_neg) > tolerance) {
      break;
    }
    last_ok = s;
  }
  return units::Length::meters(last_ok);
}

}  // namespace trident::core
