// Trident accelerator facade: the top-level public API.
//
// Wraps the architecture model (arch::make_trident), the dataflow analyzer
// and the training cost model behind the queries the paper's evaluation
// asks: per-model inference latency/energy, TOPS and TOPS/W (Table IV),
// the PE power breakdown (Table III), the chip area breakdown (Fig 5) and
// training time (Table V).
#pragma once

#include <string>
#include <vector>

#include "arch/photonic.hpp"
#include "dataflow/analyzer.hpp"
#include "nn/layer.hpp"

namespace trident::core {

using units::Area;
using units::Energy;
using units::Power;
using units::Time;

/// One row of Table III / Fig 5.
struct BreakdownEntry {
  std::string component;
  double value = 0.0;    ///< watts (power) or mm² (area)
  double percent = 0.0;  ///< share of the total
};

/// Training-step cost decomposition (per image).
struct TrainingStepCost {
  Time forward;
  Time gradient;   ///< gradient-vector pass (bank ← Wᵀ)
  Time outer;      ///< outer-product pass (bank ← yᵀ)
  Time update;     ///< programming the new weights
  Energy energy;
  [[nodiscard]] Time total() const {
    return forward + gradient + outer + update;
  }
};

class TridentAccelerator {
 public:
  TridentAccelerator();

  [[nodiscard]] const arch::PhotonicAccelerator& spec() const { return spec_; }

  /// Per-model inference analysis (batch-1 unless stated).
  [[nodiscard]] dataflow::ModelCost inference(
      const nn::ModelSpec& model,
      const dataflow::AnalyzerOptions& options = {}) const;

  [[nodiscard]] double inferences_per_second(const nn::ModelSpec& model) const;
  [[nodiscard]] Energy energy_per_inference(const nn::ModelSpec& model) const;

  /// Sustained throughput on `model` (2 ops/MAC).  The paper's headline
  /// 7.8 TOPS (§V.A) is a steady-state rate with weights pre-loaded and
  /// "inference performed on many inputs without re-tuning"; `batch`
  /// amortises tile programming over that many streamed inputs (batch 1 =
  /// cold-start latency view, as in Fig 6).
  [[nodiscard]] double sustained_tops(const nn::ModelSpec& model,
                                      int batch = 1) const;
  [[nodiscard]] double tops_per_watt(double tops) const;

  // --- Table III ------------------------------------------------------------
  /// Per-PE power breakdown while programming weights.
  [[nodiscard]] std::vector<BreakdownEntry> pe_power_breakdown() const;
  [[nodiscard]] Power pe_power_total() const;
  /// PE power once weights are resident (tuning power gone, §IV).
  [[nodiscard]] Power pe_power_resident() const;

  // --- Fig 5 ------------------------------------------------------------
  /// Chip area by component across all PEs.
  [[nodiscard]] std::vector<BreakdownEntry> area_breakdown() const;
  [[nodiscard]] Area total_area() const;

  // --- Table V ------------------------------------------------------------
  /// In-situ backprop cost for one training image.
  [[nodiscard]] TrainingStepCost training_step(
      const nn::ModelSpec& model) const;
  /// Wall-clock to train `images` images (one pass, batch 1, as §V.B).
  [[nodiscard]] Time time_to_train(const nn::ModelSpec& model,
                                   std::uint64_t images) const;

 private:
  arch::PhotonicAccelerator spec_;
};

}  // namespace trident::core
