#include "core/photonic_backend.hpp"

#include <algorithm>
#include <cmath>

#include "nn/plan.hpp"
#include "photonics/constants.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace trident::core {

namespace {

using namespace trident::units::literals;

/// Process-wide backend metrics.  The ledger counters mirror every
/// PhotonicLedger increment exactly (same integers, added at the same
/// sites), so a metrics snapshot reconstructs the summed ledger of all
/// backends in the process bit-for-bit — including its energy()/time().
struct BackendMetrics {
  telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::global();
  telemetry::Counter& weight_writes =
      reg.counter("trident_ledger_weight_writes_total",
                  "GST cells programmed (PhotonicLedger::weight_writes)");
  telemetry::Counter& program_events =
      reg.counter("trident_ledger_program_events_total",
                  "parallel bank writes (PhotonicLedger::program_events)");
  telemetry::Counter& symbols =
      reg.counter("trident_ledger_symbols_total",
                  "optical symbols streamed (PhotonicLedger::symbols)");
  telemetry::Counter& macs = reg.counter(
      "trident_ledger_macs_total", "ring read-outs (PhotonicLedger::macs)");
  telemetry::Counter& activations =
      reg.counter("trident_ledger_activations_total",
                  "GST activation firings (PhotonicLedger::activations)");
  telemetry::Counter& quantize_passes =
      reg.counter("trident_backend_quantize_passes_total",
                  "input/weight quantization passes over a vector or block");
  telemetry::Counter& matvec_calls = reg.counter(
      "trident_backend_matvec_total", "per-sample forward matvec calls");
  telemetry::Counter& matmul_calls = reg.counter(
      "trident_backend_matmul_total", "batched forward matmul calls");
  telemetry::Counter& matvec_transposed_calls =
      reg.counter("trident_backend_matvec_transposed_total",
                  "per-sample gradient-vector calls");
  telemetry::Counter& matmul_transposed_calls =
      reg.counter("trident_backend_matmul_transposed_total",
                  "batched gradient-vector calls");
  telemetry::Counter& rank1_updates = reg.counter(
      "trident_backend_rank1_updates_total", "in-situ rank-1 weight updates");
  telemetry::Counter& program_reuse =
      reg.counter("trident_backend_program_reuse_total",
                  "forward calls served by resident non-volatile weights "
                  "(the 0.67 W -> 0.11 W effect)");
};

BackendMetrics& metrics() {
  static BackendMetrics m;
  return m;
}

/// Mirrors a ledger delta into the metric counters (call sites pass the
/// exact amounts they just added to the PhotonicLedger).
void note_ledger(std::uint64_t weight_writes, std::uint64_t program_events,
                 std::uint64_t symbols, std::uint64_t macs,
                 std::uint64_t activations) {
  BackendMetrics& m = metrics();
  if (weight_writes != 0) {
    m.weight_writes.add(weight_writes);
  }
  if (program_events != 0) {
    m.program_events.add(program_events);
  }
  if (symbols != 0) {
    m.symbols.add(symbols);
  }
  if (macs != 0) {
    m.macs.add(macs);
  }
  if (activations != 0) {
    m.activations.add(activations);
  }
}

/// Per-MAC detection energy from Table III (17.1 mW / 256 rings / clock).
[[nodiscard]] units::Energy read_energy_per_mac() {
  return phot::kGstMrrReadPowerPerPe * units::period(phot::kClockRate) /
         static_cast<double>(phot::kMrrsPerPe);
}

/// Per-activation GST reset energy from Table III (53.3 mW / 16 rows / clock).
[[nodiscard]] units::Energy reset_energy_per_activation() {
  return phot::kGstActivationResetPower * units::period(phot::kClockRate) /
         static_cast<double>(phot::kWeightBankRows);
}

/// Per-symbol per-channel input energy (laser share + E/O laser).
[[nodiscard]] units::Energy input_energy_per_element() {
  return (units::Power::milliwatts(1.0) + phot::kEoLaserPower) *
         units::period(phot::kClockRate);
}

}  // namespace

namespace detail {

void mirror_ledger_delta(const PhotonicLedger& delta) {
  if (!telemetry::enabled()) {
    return;
  }
  note_ledger(delta.weight_writes, delta.program_events, delta.symbols,
              delta.macs, delta.activations);
}

}  // namespace detail

PhotonicLedger operator-(const PhotonicLedger& after,
                         const PhotonicLedger& before) {
  TRIDENT_REQUIRE(after.weight_writes >= before.weight_writes &&
                      after.program_events >= before.program_events &&
                      after.symbols >= before.symbols &&
                      after.macs >= before.macs &&
                      after.activations >= before.activations,
                  "ledger delta: `before` is not an earlier snapshot");
  PhotonicLedger d;
  d.weight_writes = after.weight_writes - before.weight_writes;
  d.program_events = after.program_events - before.program_events;
  d.symbols = after.symbols - before.symbols;
  d.macs = after.macs - before.macs;
  d.activations = after.activations - before.activations;
  return d;
}

PhotonicLedger operator+(const PhotonicLedger& a, const PhotonicLedger& b) {
  PhotonicLedger s;
  s.weight_writes = a.weight_writes + b.weight_writes;
  s.program_events = a.program_events + b.program_events;
  s.symbols = a.symbols + b.symbols;
  s.macs = a.macs + b.macs;
  s.activations = a.activations + b.activations;
  return s;
}

units::Energy PhotonicLedger::energy() const {
  return phot::kGstWriteEnergy * static_cast<double>(weight_writes) +
         read_energy_per_mac() * static_cast<double>(macs) +
         input_energy_per_element() * static_cast<double>(symbols) +
         reset_energy_per_activation() * static_cast<double>(activations);
}

units::Time PhotonicLedger::time() const {
  return phot::kGstWriteTime * static_cast<double>(program_events) +
         units::period(phot::kClockRate) * static_cast<double>(symbols);
}

PhotonicBackend::PhotonicBackend(const PhotonicBackendConfig& config)
    : config_(config),
      weight_quantizer_(config.weight_bits, 1.0),
      input_quantizer_(config.input_bits, 1.0),
      rng_(config.seed) {}

void PhotonicBackend::ensure_programmed(const nn::Matrix& w) {
  if (resident_matrix_ == static_cast<const void*>(&w)) {
    if (telemetry::enabled()) {
      metrics().program_reuse.add(1);
    }
    return;  // non-volatile weights are still loaded — free reuse
  }
  ledger_.weight_writes += w.size();
  ledger_.program_events += 1;
  if (telemetry::enabled()) {
    note_ledger(w.size(), 1, 0, 0, 0);
  }
  resident_matrix_ = static_cast<const void*>(&w);
}

double PhotonicBackend::quantize_weight(double v, double scale) {
  const double unit = std::clamp(v / scale, -1.0, 1.0);
  if (!config_.stochastic_rounding) {
    return weight_quantizer_.quantize(unit) * scale;
  }
  // Stochastic rounding: round up with probability equal to the fractional
  // position between the two neighbouring levels (unbiased dither).
  const double step = weight_quantizer_.step();
  const double scaled = unit / step;
  const double floor_level = std::floor(scaled);
  const double frac = scaled - floor_level;
  const double level = rng_.bernoulli(frac) ? floor_level + 1.0 : floor_level;
  const double q = std::clamp(level * step, -1.0, 1.0);
  return q * scale;
}

nn::Vector PhotonicBackend::matvec(const nn::Matrix& w, const nn::Vector& x) {
  TRIDENT_REQUIRE(x.size() == w.cols(), "matvec dimension mismatch");
  ensure_programmed(w);

  // Input DAC: hardware range is [-1, 1] after the polarity split, so the
  // vector is electronically pre-scaled into range and the scale re-applied
  // at the TIA.
  double x_scale = 1.0;
  for (double v : x) {
    x_scale = std::max(x_scale, std::abs(v));
  }
  nn::Vector xq(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    xq[i] = input_quantizer_.quantize(x[i] / x_scale);
  }

  nn::Vector y(w.rows(), 0.0);
  for (std::size_t r = 0; r < w.rows(); ++r) {
    double acc = 0.0;
    const auto row = w.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) {
      // Stored weights are already on the GST grid (rank1_update keeps the
      // master copy quantized); clamp defends against externally-set
      // out-of-range values.
      acc += std::clamp(row[c], -1.0, 1.0) * xq[c];
    }
    if (config_.readout_noise > 0.0) {
      acc += rng_.normal(0.0, config_.readout_noise);
    }
    y[r] = acc * x_scale;
  }

  ledger_.symbols += 1;
  ledger_.macs += w.size();
  ledger_.activations += w.rows();
  if (telemetry::enabled()) {
    note_ledger(0, 0, 1, w.size(), w.rows());
    metrics().matvec_calls.add(1);
    metrics().quantize_passes.add(1);
  }
  return y;
}

nn::Matrix PhotonicBackend::matmul(const nn::Matrix& w, const nn::Matrix& x) {
  TRIDENT_REQUIRE(x.cols() == w.cols(), "matmul dimension mismatch");
  ensure_programmed(w);
  const std::size_t batch = x.rows();

  // One pass over the block: per-sample DAC range scale, then quantize.
  nn::Vector scale(batch, 1.0);
  nn::Matrix xq(batch, w.cols());
  for (std::size_t b = 0; b < batch; ++b) {
    const auto row = x.row(b);
    double s = 1.0;
    for (double v : row) {
      s = std::max(s, std::abs(v));
    }
    scale[b] = s;
    auto q = xq.row(b);
    for (std::size_t c = 0; c < row.size(); ++c) {
      q[c] = input_quantizer_.quantize(row[c] / s);
    }
  }

  // Saturate the stored weights once per block instead of once per MAC.
  nn::Matrix clamped = w;
  for (double& v : clamped.data()) {
    v = std::clamp(v, -1.0, 1.0);
  }

  nn::Matrix y = clamped.matmul(xq);
  // Read-out noise and TIA re-scaling, in the same draw order as a loop of
  // matvec calls (per sample, then per row).
  for (std::size_t b = 0; b < batch; ++b) {
    auto yr = y.row(b);
    for (double& v : yr) {
      if (config_.readout_noise > 0.0) {
        v += rng_.normal(0.0, config_.readout_noise);
      }
      v *= scale[b];
    }
  }

  ledger_.symbols += batch;
  ledger_.macs += batch * w.size();
  ledger_.activations += batch * w.rows();
  if (telemetry::enabled()) {
    note_ledger(0, 0, batch, batch * w.size(), batch * w.rows());
    metrics().matmul_calls.add(1);
    metrics().quantize_passes.add(1);
  }
  return y;
}

bool PhotonicBackend::run_plan(const nn::ExecutionPlan& plan,
                               const nn::Matrix& x, nn::PlanArena& arena) {
  const std::size_t batch = x.rows();
  const int depth = plan.depth();
  const nn::Matrix* cur = &x;
  nn::Vector& scale = arena.scale();
  nn::Matrix& xq = arena.quantized();
  for (int k = 0; k < depth; ++k) {
    const nn::PlanLayer& layer = plan.layer(k);
    // Programming is keyed on the plan's own panel: with depth ≥ 2 the
    // bank churns through the layers exactly as the per-op path churns
    // through the model's matrices, so the billing pattern is identical.
    ensure_programmed(layer.weights);

    // Input DAC, same pass as matmul but into arena scratch.
    xq.reshape(batch, layer.cols);
    for (std::size_t b = 0; b < batch; ++b) {
      const auto row = cur->row(b);
      double s = 1.0;
      for (double v : row) {
        s = std::max(s, std::abs(v));
      }
      scale[b] = s;
      auto q = xq.row(b);
      for (std::size_t c = 0; c < row.size(); ++c) {
        q[c] = input_quantizer_.quantize(row[c] / s);
      }
    }

    const bool last = (k == depth - 1);
    nn::Matrix& y = last ? arena.out() : arena.act(k);
    y.reshape(batch, layer.rows);
    // The pre-clamped panel replaces the fresh saturated copy matmul makes
    // per call — same values, no allocation.
    layer.clamped.matmul_into(xq, y);
    // Read-out noise and TIA re-scaling, in the same draw order as matmul
    // (per sample, then per row).
    for (std::size_t b = 0; b < batch; ++b) {
      auto yr = y.row(b);
      for (double& v : yr) {
        if (config_.readout_noise > 0.0) {
          v += rng_.normal(0.0, config_.readout_noise);
        }
        v *= scale[b];
      }
    }
    // Hidden-layer activation as its own whole-buffer pass, mirroring
    // forward_batch: the branch-free loop vectorizes, where folding the
    // activation into the noise/re-scale loop above measurably does not.
    if (!last) {
      for (double& v : y.data()) {
        v = nn::apply_activation(layer.activation, v);
      }
    }

    ledger_.symbols += batch;
    ledger_.macs += batch * layer.weights.size();
    ledger_.activations += batch * layer.weights.rows();
    if (telemetry::enabled()) {
      note_ledger(0, 0, batch, batch * layer.weights.size(),
                  batch * layer.weights.rows());
      metrics().matmul_calls.add(1);
      metrics().quantize_passes.add(1);
    }

    if (!last) {
      cur = &y;
    }
  }
  return true;
}

nn::Matrix PhotonicBackend::matmul_transposed(const nn::Matrix& w,
                                              const nn::Matrix& x) {
  TRIDENT_REQUIRE(x.cols() == w.rows(), "transposed matmul dimension mismatch");
  const std::size_t batch = x.rows();
  // Loop-equivalent accounting: every gradient symbol pair re-encodes the
  // bank with Wᵀ, exactly as a sequence of matvec_transposed calls would.
  ledger_.weight_writes += batch * w.size();
  ledger_.program_events += batch;
  if (telemetry::enabled()) {
    note_ledger(batch * w.size(), batch, 0, 0, 0);
  }
  resident_matrix_ = nullptr;

  nn::Vector scale(batch, 1.0);
  nn::Matrix xq(batch, w.rows());
  for (std::size_t b = 0; b < batch; ++b) {
    const auto row = x.row(b);
    double s = 1.0;
    for (double v : row) {
      s = std::max(s, std::abs(v));
    }
    scale[b] = s;
    auto q = xq.row(b);
    for (std::size_t c = 0; c < row.size(); ++c) {
      q[c] = input_quantizer_.quantize(row[c] / s);
    }
  }

  nn::Matrix clamped = w;
  for (double& v : clamped.data()) {
    v = std::clamp(v, -1.0, 1.0);
  }

  nn::Matrix y = clamped.matmul_transposed(xq);
  for (std::size_t b = 0; b < batch; ++b) {
    auto yr = y.row(b);
    for (double& v : yr) {
      if (config_.readout_noise > 0.0) {
        v += rng_.normal(0.0, config_.readout_noise);
      }
      v *= scale[b];
    }
  }

  ledger_.symbols += 2 * batch;
  ledger_.macs += batch * w.size();
  if (telemetry::enabled()) {
    note_ledger(0, 0, 2 * batch, batch * w.size(), 0);
    metrics().matmul_transposed_calls.add(1);
    metrics().quantize_passes.add(1);
  }
  return y;
}

nn::Vector PhotonicBackend::matvec_transposed(const nn::Matrix& w,
                                              const nn::Vector& x) {
  TRIDENT_REQUIRE(x.size() == w.rows(), "transposed matvec dimension mismatch");
  // The gradient-vector pass re-encodes the bank with Wᵀ (Table II): one
  // programming event even though the values are the same cells transposed.
  ledger_.weight_writes += w.size();
  ledger_.program_events += 1;
  if (telemetry::enabled()) {
    note_ledger(w.size(), 1, 0, 0, 0);
  }
  resident_matrix_ = nullptr;  // bank no longer holds the forward layout

  double x_scale = 1.0;
  for (double v : x) {
    x_scale = std::max(x_scale, std::abs(v));
  }
  nn::Vector xq(x.size());
  for (std::size_t i = 0; i < x.size(); ++i) {
    xq[i] = input_quantizer_.quantize(x[i] / x_scale);
  }

  nn::Vector y(w.cols(), 0.0);
  for (std::size_t r = 0; r < w.rows(); ++r) {
    const auto row = w.row(r);
    const double xr = xq[r];
    for (std::size_t c = 0; c < row.size(); ++c) {
      y[c] += std::clamp(row[c], -1.0, 1.0) * xr;
    }
  }
  for (double& v : y) {
    if (config_.readout_noise > 0.0) {
      v += rng_.normal(0.0, config_.readout_noise);
    }
    v *= x_scale;
  }

  // Signed gradients stream as two polarity symbols.
  ledger_.symbols += 2;
  ledger_.macs += w.size();
  if (telemetry::enabled()) {
    note_ledger(0, 0, 2, w.size(), 0);
    metrics().matvec_transposed_calls.add(1);
    metrics().quantize_passes.add(1);
  }
  return y;
}

void PhotonicBackend::rank1_update(nn::Matrix& w, const nn::Vector& dh,
                                   const nn::Vector& y_prev, double lr) {
  TRIDENT_REQUIRE(dh.size() == w.rows() && y_prev.size() == w.cols(),
                  "rank-1 update dimension mismatch");
  // The outer product δh·yᵀ is computed optically (Table II, third
  // encoding): charge one symbol per row's modulation pattern.
  ledger_.symbols += w.rows();
  ledger_.macs += w.size();

  // In-situ update: the new value must land on a programmable GST level —
  // there is no float master copy in the hardware, so updates below half an
  // LSB are simply lost (the 8-vs-6-bit training cliff).
  std::uint64_t changed = 0;
  for (std::size_t r = 0; r < w.rows(); ++r) {
    auto row = w.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) {
      const double target = row[c] - lr * dh[r] * y_prev[c];
      const double quantized = quantize_weight(target, 1.0);
      if (quantized != row[c]) {
        row[c] = quantized;
        ++changed;
      }
    }
  }
  // Only cells whose level actually moved receive a write pulse.
  ledger_.weight_writes += changed;
  if (changed > 0) {
    ledger_.program_events += 1;
    resident_matrix_ = nullptr;
  }
  if (telemetry::enabled()) {
    note_ledger(changed, changed > 0 ? 1 : 0, w.rows(), w.size(), 0);
    metrics().rank1_updates.add(1);
    metrics().quantize_passes.add(1);
  }
}

}  // namespace trident::core
