// Device-level PCM-MRR weight bank (§III.B, Fig 2b).
//
// A J×N grid of add-drop MRRs, one column per WDM channel, each ring
// carrying an embedded GST cell.  A weight is programmed by setting the GST
// cell's crystalline level, which changes the intracavity loss and thereby
// the drop/through power split at the ring's resonance.  The balanced
// photodetector of row j reads Σᵢ (drop − through)ᵢ · Pᵢ — a signed dot
// product.
//
// Because the achievable (drop − through) range of a physical ring is not
// exactly [-1, 1], the bank self-calibrates at construction: it sweeps all
// GST levels through the MRR transfer function, records the realisable
// weight range, and exposes `weight_scale()` so users can renormalise.
// Programming then picks the GST level whose *measured* weight is nearest
// the target — exactly what a hardware calibration loop does.
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "common/units.hpp"
#include "nn/matrix.hpp"
#include "photonics/gst.hpp"
#include "photonics/mrr.hpp"
#include "photonics/wdm.hpp"
#include "state/snapshot.hpp"

namespace trident::core {

using units::Energy;
using units::Time;

struct WeightBankConfig {
  int rows = 4;
  int cols = 4;
  phot::MrrDesign mrr;
  phot::GstCellParams gst;
  phot::ChannelPlan plan{4};
  /// Optional programming noise source (nullptr = ideal writes).
  Rng* rng = nullptr;
};

class WeightBank {
 public:
  explicit WeightBank(const WeightBankConfig& config);

  [[nodiscard]] int rows() const { return rows_; }
  [[nodiscard]] int cols() const { return cols_; }

  /// Largest |weight| the ring + GST combination can realise; targets are
  /// interpreted in units of this scale (i.e. `program` maps w ∈ [-1, 1]
  /// onto [-scale, +scale]).
  [[nodiscard]] double weight_scale() const { return weight_scale_; }

  /// Programs the whole bank from `w` (rows×cols, entries in [-1, 1]).
  /// Unchanged weights cost nothing (non-volatile skip).  Returns the
  /// realised weights in [-1, 1] units.
  nn::Matrix program(const nn::Matrix& w);

  /// Programs a single cell to `target` ∈ [-1, 1] (write-verify loops
  /// re-aim individual offenders without disturbing converged cells).
  /// Returns the realised weight.
  double program_cell(int r, int c, double target);

  /// Worst-case |realised − target| of a noiseless nearest-level program:
  /// half the largest gap between adjacent calibrated levels.  This is the
  /// right open-loop tolerance for calibration on this device.
  [[nodiscard]] double worst_quantization_error() const;

  /// The weight currently realised at (r, c), in [-1, 1] units.
  [[nodiscard]] double realized_weight(int r, int c) const;

  /// One optical symbol: inputs[c] ∈ [0, 1] are the channel amplitudes;
  /// returns per-row (drop − through) accumulations in [-1, 1]·row-sum
  /// units (divide by cols for a normalised mean).  Charges one GST read
  /// per ring.
  [[nodiscard]] nn::Vector apply(const nn::Vector& inputs);

  /// A block of symbols: inputs is (batch × cols), one symbol per row;
  /// returns (batch × rows).  Row b equals apply(inputs.row(b)); the read
  /// accounting is charged once for the whole block.
  [[nodiscard]] nn::Matrix apply_batch(const nn::Matrix& inputs);

  /// y = (W/scale)·x without energy accounting (pure query).
  [[nodiscard]] nn::Vector apply_const(const nn::Vector& inputs) const;

  // --- accounting ---------------------------------------------------------
  [[nodiscard]] std::uint64_t total_writes() const;
  [[nodiscard]] Energy total_write_energy() const;
  [[nodiscard]] Energy total_read_energy() const;
  /// Read pulses fired so far (one per ring per symbol).
  [[nodiscard]] std::uint64_t total_reads() const;
  /// Worst per-cell wear across the bank (endurance tracking).
  [[nodiscard]] double max_wear() const;

  /// Weight realised by a given GST level (calibration-table lookup).
  [[nodiscard]] double weight_at_level(int level) const;

  // --- snapshot/restore (state::Snapshot) --------------------------------

  /// Captures every cell's non-volatile level plus the historical pulse
  /// counters — enough to rebuild the bank's physical state exactly.
  [[nodiscard]] state::BankState capture_state() const;

  /// Restores a captured bank state without firing a single pulse: the
  /// physical cells kept their phase across the restart, so levels land
  /// for free and the pulse counters carry over.  Dimensions must match.
  void restore_state(const state::BankState& snapshot);

 private:
  [[nodiscard]] const phot::GstCell& cell(int r, int c) const;
  [[nodiscard]] phot::GstCell& cell(int r, int c);
  /// Decoded-weight cache: the contiguous raw weight of every cell
  /// (level_weights_[cell.level()], row-major), rebuilt lazily after any
  /// programming event so apply() pays neither the bounds-checked cell
  /// accessor nor the per-MAC table lookup.
  [[nodiscard]] const std::vector<double>& decoded_weights() const;

  int rows_;
  int cols_;
  WeightBankConfig config_;
  std::vector<phot::GstCell> cells_;       ///< row-major rows×cols
  std::vector<phot::Mrr> column_rings_;    ///< one template ring per channel
  std::vector<double> level_weights_;      ///< calibration: level -> raw weight
  mutable std::vector<double> decoded_raw_;  ///< cache: cell -> raw weight
  mutable bool decoded_dirty_ = true;
  std::uint64_t symbol_reads_ = 0;  ///< whole-bank read pulses (one/symbol)
  double raw_min_ = 0.0;
  double raw_max_ = 0.0;
  double weight_scale_ = 1.0;
};

}  // namespace trident::core
