// Closed-loop write-verify programming for the PCM-MRR weight bank.
//
// A single optical write pulse places a GST cell only approximately (the
// paper's 255 "levels" are the ideal; real programming has level-placement
// jitter).  Phase-change memories solve this with write-verify: program,
// read back, re-program the cells whose error exceeds a tolerance, repeat.
// This module implements that loop over a device-level WeightBank and
// accounts for its cost — each verify iteration spends read pulses on the
// whole bank and write pulses on the still-offending cells, which is the
// energy/latency price of accuracy on noisy hardware.
#pragma once

#include "core/weight_bank.hpp"

namespace trident::core {

struct CalibrationConfig {
  /// Absolute weight-error tolerance (in [-1, 1] weight units) below which
  /// a cell counts as converged.  Half an 8-bit LSB by default.
  double tolerance = 1.0 / 254.0;
  int max_iterations = 8;
};

struct CalibrationResult {
  int iterations = 0;           ///< verify iterations actually run
  double initial_max_error = 0.0;
  double final_max_error = 0.0;
  std::uint64_t extra_writes = 0;  ///< write pulses beyond the first program
  std::uint64_t cells_converged = 0;
  std::uint64_t cells_total = 0;
  bool converged = false;          ///< every cell within tolerance
};

/// Programs `targets` (entries in [-1, 1]) into `bank` with write-verify.
/// Returns the convergence record; the bank's own energy books accumulate
/// the true cost.
[[nodiscard]] CalibrationResult calibrate_program(
    WeightBank& bank, const nn::Matrix& targets,
    const CalibrationConfig& config = {});

}  // namespace trident::core
