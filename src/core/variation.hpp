// Fabrication-variation model and hardware-in-the-loop deployment study.
//
// The paper's introduction motivates unified on-hardware training with the
// observation that offline-trained weights never match the physical
// devices: "digital models used at the time of training cannot capture all
// the manufacturing imperfections and variations of the physical hardware.
// The resulting mismatch between trained and implemented weights leads to
// sub-optimal accuracy at inference time" (§I, after [9]).
//
// This module makes that claim testable:
//   * VariationBackend wraps the photonic backend with a *static*
//     per-device gain error (each MRR+GST cell realises γ·w instead of w,
//     γ ~ N(1, σ) fixed at fabrication) plus optional resonance-offset
//     loss.  The error is invisible to an offline float model but fully
//     present in every on-hardware operation — forward and backward — so
//     in-situ training naturally adapts around it.
//   * deployment_study() runs the three-step experiment: train offline in
//     float, deploy onto varied hardware (accuracy drops), fine-tune
//     in-situ (accuracy recovers).
#pragma once

#include <unordered_map>
#include <vector>

#include "core/photonic_backend.hpp"
#include "nn/dataset.hpp"
#include "nn/train.hpp"

namespace trident::core {

struct VariationConfig {
  /// Std-dev of the static multiplicative per-cell gain error.  A few
  /// percent is typical for uncompensated fabrication spread.
  double gain_sigma = 0.05;
  /// Std-dev of the static *additive* per-cell weight offset: resonance
  /// mismatch between a ring and its channel biases the realised weight
  /// even at mid-scale.  This is the damaging term for deployed models.
  double weight_offset_sigma = 0.0;
  /// Weight-independent additive offset per row (detector/TIA mismatch).
  double row_offset_sigma = 0.0;
  /// Quantization / noise configuration of the underlying hardware.
  PhotonicBackendConfig hardware;
  std::uint64_t seed = 0xFAB;
};

/// MatvecBackend with frozen fabrication variation on top of the photonic
/// quantization model.  Gains are drawn once per matrix (per device array)
/// the first time it is seen and stay fixed — they model hardware, not
/// noise.
class VariationBackend final : public nn::MatvecBackend {
 public:
  explicit VariationBackend(const VariationConfig& config = {});

  [[nodiscard]] nn::Vector matvec(const nn::Matrix& w,
                                  const nn::Vector& x) override;
  [[nodiscard]] nn::Vector matvec_transposed(const nn::Matrix& w,
                                             const nn::Vector& x) override;
  void rank1_update(nn::Matrix& w, const nn::Vector& dh,
                    const nn::Vector& y_prev, double lr) override;

  [[nodiscard]] const PhotonicLedger& ledger() const {
    return inner_.ledger();
  }
  [[nodiscard]] const VariationConfig& config() const { return config_; }

  /// The gain map assigned to matrix `w` (test/inspection hook; creates it
  /// if the matrix has not been seen).
  [[nodiscard]] const std::vector<double>& gains(const nn::Matrix& w);

 private:
  /// Effective (device-realised) copy of w: clamp(w)·γ + row offsets.
  [[nodiscard]] nn::Matrix effective(const nn::Matrix& w);

  VariationConfig config_;
  PhotonicBackend inner_;
  Rng gain_rng_;
  std::unordered_map<const void*, std::vector<double>> gain_maps_;
  std::unordered_map<const void*, std::vector<double>> cell_offsets_;
  std::unordered_map<const void*, std::vector<double>> row_offsets_;
};

/// Result of the offline-vs-in-situ deployment experiment.
struct DeploymentStudy {
  double float_accuracy = 0.0;      ///< offline model on exact hardware
  double deployed_accuracy = 0.0;   ///< offline weights on varied hardware
  double finetuned_accuracy = 0.0;  ///< after in-situ fine-tuning epochs
  double recovered_fraction = 0.0;  ///< of the deployment gap closed
};

/// Runs the full §I-motivation experiment on a dataset:
///  1. train `epochs` epochs offline (float backend);
///  2. evaluate the same weights through a VariationBackend;
///  3. fine-tune `finetune_epochs` in-situ on that backend and re-evaluate.
[[nodiscard]] DeploymentStudy deployment_study(
    const nn::Dataset& train_set, const nn::Dataset& test_set,
    const std::vector<int>& layer_sizes, const VariationConfig& variation,
    int epochs = 40, int finetune_epochs = 10, double learning_rate = 0.05,
    std::uint64_t init_seed = 7);

}  // namespace trident::core
