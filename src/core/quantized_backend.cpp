#include "core/quantized_backend.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>
#include <span>

#include "common/error.hpp"
#include "nn/int8_gemm.hpp"
#include "nn/plan.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace trident::core {

namespace {

struct QuantizedMetrics {
  telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::global();
  telemetry::Counter& plan_compiles =
      reg.counter("trident_quantized_plan_compiles_total",
                  "weight matrices compiled into packed int8 level panels");
  telemetry::Counter& plan_reuse =
      reg.counter("trident_quantized_plan_reuse_total",
                  "plan-cache hits (fingerprint matched, panel reused)");
  telemetry::Counter& plan_recompiles =
      reg.counter("trident_quantized_plan_recompiles_total",
                  "plan-cache entries rebuilt after a content change "
                  "(hot-swap or in-situ update mutated the buffer)");
};

QuantizedMetrics& metrics() {
  static QuantizedMetrics m;
  return m;
}

/// splitmix64 finisher: full-avalanche mix of one 64-bit word.
std::uint64_t mix64(std::uint64_t x) {
  x ^= x >> 30;
  x *= 0xbf58476d1ce4e5b9ull;
  x ^= x >> 27;
  x *= 0x94d049bb133111ebull;
  x ^= x >> 31;
  return x;
}

/// Content hash of the weight buffer.  The plan cache keys panels by matrix
/// address, but weight hot-swap copy-assigns new values into the SAME
/// allocation — the fingerprint is what actually decides whether the
/// compiled panel is still the matrix in front of us.  It runs on EVERY
/// lookup, so it is on the fast path's critical path: four independent
/// xor-multiply lanes (word-at-a-time, multiplies pipelined) keep it an
/// order of magnitude cheaper than a byte-serial FNV while still
/// avalanching every input bit through the splitmix64 finisher.
std::uint64_t fingerprint_of(const std::vector<double>& data) {
  std::uint64_t h0 = 0x9e3779b97f4a7c15ull;
  std::uint64_t h1 = 0xbf58476d1ce4e5b9ull;
  std::uint64_t h2 = 0x94d049bb133111ebull;
  std::uint64_t h3 = 0x2545f4914f6cdd1dull;
  constexpr std::uint64_t kMul = 0x9ddfea08eb382d69ull;
  const std::size_t n = data.size();
  std::size_t i = 0;
  for (; i + 4 <= n; i += 4) {
    h0 = std::rotl((h0 ^ std::bit_cast<std::uint64_t>(data[i])) * kMul, 27);
    h1 = std::rotl((h1 ^ std::bit_cast<std::uint64_t>(data[i + 1])) * kMul, 29);
    h2 = std::rotl((h2 ^ std::bit_cast<std::uint64_t>(data[i + 2])) * kMul, 31);
    h3 = std::rotl((h3 ^ std::bit_cast<std::uint64_t>(data[i + 3])) * kMul, 33);
  }
  for (; i < n; ++i) {
    h0 = std::rotl((h0 ^ std::bit_cast<std::uint64_t>(data[i])) * kMul, 27);
  }
  return mix64(mix64(h0 + n) ^ mix64(h1) ^ mix64(h2) ^ mix64(h3));
}

/// max(1, max|row|): the per-sample DAC pre-scale PhotonicBackend applies.
double dac_scale(std::span<const double> row) {
  double s = 1.0;
  for (double v : row) {
    s = std::max(s, std::abs(v));
  }
  return s;
}

/// Exact Lipschitz constant of the (piecewise-linear, kink-at-zero)
/// activations: the steeper of the two unit slopes.  Measuring it from
/// apply_activation keeps the bound honest if the GST slope ever changes.
double activation_lipschitz(nn::Activation act) {
  const double pos = std::abs(nn::apply_activation(act, 1.0) -
                              nn::apply_activation(act, 0.0));
  const double neg = std::abs(nn::apply_activation(act, 0.0) -
                              nn::apply_activation(act, -1.0));
  return std::max(pos, neg);
}

}  // namespace

QuantizedBackend::QuantizedBackend(const QuantizedBackendConfig& config)
    : config_(config),
      weight_quantizer_(config.weight_bits, 1.0),
      input_quantizer_(config.input_bits, 1.0) {
  TRIDENT_REQUIRE(config.weight_bits >= 1 && config.weight_bits <= 8,
                  "quantized tier weight grid must fit int8");
  TRIDENT_REQUIRE(config.input_bits >= 1 && config.input_bits <= 8,
                  "quantized tier input grid must fit int8");
}

const QuantizedBackend::WeightPlan& QuantizedBackend::plan_for(
    const nn::Matrix& w) {
  const std::uint64_t fp = fingerprint_of(w.data());
  WeightPlan& plan = plans_[static_cast<const void*>(&w)];
  if (!plan.levels.empty() && plan.fingerprint == fp &&
      plan.rows == w.rows() && plan.cols == w.cols()) {
    if (telemetry::enabled()) {
      metrics().plan_reuse.add(1);
    }
    return plan;
  }
  if (telemetry::enabled()) {
    if (plan.levels.empty()) {
      metrics().plan_compiles.add(1);
    } else {
      metrics().plan_recompiles.add(1);
    }
  }
  plan.rows = w.rows();
  plan.cols = w.cols();
  plan.fingerprint = fp;
  plan.levels.resize(w.size());
  // to_level saturates outside [-1, 1], which doubles as the clamp the
  // photonic path applies to externally-set out-of-range weights.
  weight_quantizer_.to_levels(w.data(), plan.levels);
  return plan;
}

void QuantizedBackend::ensure_programmed(const nn::Matrix& w) {
  if (resident_matrix_ == static_cast<const void*>(&w)) {
    return;  // non-volatile weights are still loaded — free reuse
  }
  ledger_.weight_writes += w.size();
  ledger_.program_events += 1;
  PhotonicLedger d;
  d.weight_writes = w.size();
  d.program_events = 1;
  detail::mirror_ledger_delta(d);
  resident_matrix_ = static_cast<const void*>(&w);
}

nn::Matrix QuantizedBackend::matmul(const nn::Matrix& w, const nn::Matrix& x) {
  TRIDENT_REQUIRE(x.cols() == w.cols(), "matmul dimension mismatch");
  const WeightPlan& plan = plan_for(w);
  ensure_programmed(w);
  const std::size_t batch = x.rows();
  const std::size_t rows = w.rows();
  const std::size_t cols = w.cols();

  // Per-sample DAC scale, then one int8 quantization pass over the block.
  std::vector<double> scale(batch, 1.0);
  std::vector<std::int8_t> xq(batch * cols);
  std::vector<double> scaled(cols);
  for (std::size_t b = 0; b < batch; ++b) {
    const auto row = x.row(b);
    const double s = dac_scale(row);
    scale[b] = s;
    for (std::size_t c = 0; c < cols; ++c) {
      scaled[c] = row[c] / s;
    }
    input_quantizer_.to_levels(
        scaled, std::span<std::int8_t>(xq.data() + b * cols, cols));
  }

  std::vector<std::int32_t> acc(batch * rows);
  nn::int8_gemm(plan.levels.data(), rows, cols, xq.data(), batch, acc.data());

  // TIA re-scale: one multiply per output.  The int32 accumulation is exact,
  // so row b is bit-identical whether it ran alone or inside this block.
  const double unit = weight_quantizer_.step() * input_quantizer_.step();
  nn::Matrix y(batch, rows);
  for (std::size_t b = 0; b < batch; ++b) {
    auto yr = y.row(b);
    const std::int32_t* ar = acc.data() + b * rows;
    for (std::size_t r = 0; r < rows; ++r) {
      yr[r] = static_cast<double>(ar[r]) * unit * scale[b];
    }
  }

  ledger_.symbols += batch;
  ledger_.macs += batch * w.size();
  ledger_.activations += batch * w.rows();
  PhotonicLedger d;
  d.symbols = batch;
  d.macs = batch * w.size();
  d.activations = batch * w.rows();
  detail::mirror_ledger_delta(d);
  return y;
}

bool QuantizedBackend::run_plan(const nn::ExecutionPlan& plan,
                                const nn::Matrix& x, nn::PlanArena& arena) {
  if (plan.config().weight_bits != config_.weight_bits) {
    return false;  // panel grid mismatch — interpret per-op (re-packs right)
  }
  const std::size_t batch = x.rows();
  const int depth = plan.depth();
  const double unit = weight_quantizer_.step() * input_quantizer_.step();
  const nn::Matrix* cur = &x;
  nn::Vector& scale = arena.scale();
  nn::Vector& scaled = arena.scratch();
  std::vector<std::int8_t>& xq = arena.int8_input();
  std::vector<std::int32_t>& acc = arena.int32_acc();
  for (int k = 0; k < depth; ++k) {
    const nn::PlanLayer& layer = plan.layer(k);
    const std::size_t rows = layer.rows;
    const std::size_t cols = layer.cols;
    TRIDENT_REQUIRE(cols <= nn::kInt8GemmMaxCols,
                    "layer fan-in too large for exact int32 accumulation");
    ensure_programmed(layer.weights);

    for (std::size_t b = 0; b < batch; ++b) {
      const auto row = cur->row(b);
      const double s = dac_scale(row);
      scale[b] = s;
      for (std::size_t c = 0; c < cols; ++c) {
        scaled[c] = row[c] / s;
      }
      input_quantizer_.to_levels(
          std::span<const double>(scaled.data(), cols),
          std::span<std::int8_t>(xq.data() + b * cols, cols));
    }

    // The plan's immutable panel replaces plan_for: no per-call content
    // fingerprint, because published plans never mutate.
    nn::int8_gemm(layer.levels.data(), rows, cols, xq.data(), batch,
                  acc.data());

    // Fused epilogue: the TIA re-scale and the activation land in one pass
    // over the output block.  Routing the rescaled value through a register
    // instead of memory does not change its bits, so this matches the
    // legacy rescale-then-activate sequence exactly.
    const bool last = (k == depth - 1);
    nn::Matrix& y = last ? arena.out() : arena.act(k);
    y.reshape(batch, rows);
    for (std::size_t b = 0; b < batch; ++b) {
      auto yr = y.row(b);
      const std::int32_t* ar = acc.data() + b * rows;
      if (last) {
        for (std::size_t r = 0; r < rows; ++r) {
          yr[r] = static_cast<double>(ar[r]) * unit * scale[b];
        }
      } else {
        for (std::size_t r = 0; r < rows; ++r) {
          yr[r] = nn::apply_activation(
              layer.activation,
              static_cast<double>(ar[r]) * unit * scale[b]);
        }
      }
    }

    ledger_.symbols += batch;
    ledger_.macs += batch * layer.weights.size();
    ledger_.activations += batch * rows;
    PhotonicLedger d;
    d.symbols = batch;
    d.macs = batch * layer.weights.size();
    d.activations = batch * rows;
    detail::mirror_ledger_delta(d);

    if (!last) {
      cur = &y;
    }
  }
  return true;
}

nn::Vector QuantizedBackend::matvec(const nn::Matrix& w, const nn::Vector& x) {
  TRIDENT_REQUIRE(x.size() == w.cols(), "matvec dimension mismatch");
  nn::Matrix xm(1, x.size());
  std::copy(x.begin(), x.end(), xm.data().begin());
  // Batch-of-one through the block path: same kernels, same scaling order,
  // same ledger charges — bit-identity with matmul rows is structural.
  const nn::Matrix y = matmul(w, xm);
  const auto row = y.row(0);
  return nn::Vector(row.begin(), row.end());
}

nn::Matrix QuantizedBackend::matmul_transposed(const nn::Matrix& w,
                                               const nn::Matrix& x) {
  TRIDENT_REQUIRE(x.cols() == w.rows(), "transposed matmul dimension mismatch");
  const WeightPlan& plan = plan_for(w);
  const std::size_t batch = x.rows();
  const std::size_t rows = w.rows();
  const std::size_t cols = w.cols();

  // Same accounting as the photonic path: every gradient symbol pair
  // re-encodes the bank with Wᵀ, and the forward layout is gone after.
  ledger_.weight_writes += batch * w.size();
  ledger_.program_events += batch;
  PhotonicLedger dw;
  dw.weight_writes = batch * w.size();
  dw.program_events = batch;
  detail::mirror_ledger_delta(dw);
  resident_matrix_ = nullptr;

  std::vector<double> scale(batch, 1.0);
  std::vector<std::int8_t> xq(batch * rows);
  std::vector<double> scaled(rows);
  for (std::size_t b = 0; b < batch; ++b) {
    const auto row = x.row(b);
    const double s = dac_scale(row);
    scale[b] = s;
    for (std::size_t r = 0; r < rows; ++r) {
      scaled[r] = row[r] / s;
    }
    input_quantizer_.to_levels(
        scaled, std::span<std::int8_t>(xq.data() + b * rows, rows));
  }

  std::vector<std::int32_t> acc(batch * cols);
  nn::int8_gemm_transposed(plan.levels.data(), rows, cols, xq.data(), batch,
                           acc.data());

  const double unit = weight_quantizer_.step() * input_quantizer_.step();
  nn::Matrix y(batch, cols);
  for (std::size_t b = 0; b < batch; ++b) {
    auto yr = y.row(b);
    const std::int32_t* ar = acc.data() + b * cols;
    for (std::size_t c = 0; c < cols; ++c) {
      yr[c] = static_cast<double>(ar[c]) * unit * scale[b];
    }
  }

  ledger_.symbols += 2 * batch;  // signed gradients: two polarity symbols
  ledger_.macs += batch * w.size();
  PhotonicLedger dr;
  dr.symbols = 2 * batch;
  dr.macs = batch * w.size();
  detail::mirror_ledger_delta(dr);
  return y;
}

nn::Vector QuantizedBackend::matvec_transposed(const nn::Matrix& w,
                                               const nn::Vector& x) {
  TRIDENT_REQUIRE(x.size() == w.rows(), "transposed matvec dimension mismatch");
  nn::Matrix xm(1, x.size());
  std::copy(x.begin(), x.end(), xm.data().begin());
  nn::Matrix y = matmul_transposed(w, xm);
  const auto row = y.row(0);
  return nn::Vector(row.begin(), row.end());
}

void QuantizedBackend::rank1_update(nn::Matrix& w, const nn::Vector& dh,
                                    const nn::Vector& y_prev, double lr) {
  TRIDENT_REQUIRE(dh.size() == w.rows() && y_prev.size() == w.cols(),
                  "rank-1 update dimension mismatch");
  ledger_.symbols += w.rows();
  ledger_.macs += w.size();

  // Deterministic in-situ update on the weight grid: identical to a
  // noise-free PhotonicBackend (round-to-nearest level, sub-LSB loss).
  std::uint64_t changed = 0;
  for (std::size_t r = 0; r < w.rows(); ++r) {
    auto row = w.row(r);
    for (std::size_t c = 0; c < row.size(); ++c) {
      const double target = row[c] - lr * dh[r] * y_prev[c];
      const double quantized =
          weight_quantizer_.quantize(std::clamp(target, -1.0, 1.0));
      if (quantized != row[c]) {
        row[c] = quantized;
        ++changed;
      }
    }
  }
  ledger_.weight_writes += changed;
  if (changed > 0) {
    ledger_.program_events += 1;
    resident_matrix_ = nullptr;
    plans_.erase(static_cast<const void*>(&w));  // panel is stale
  }
  PhotonicLedger d;
  d.weight_writes = changed;
  d.program_events = changed > 0 ? 1 : 0;
  d.symbols = w.rows();
  d.macs = w.size();
  detail::mirror_ledger_delta(d);
}

double QuantizedBackend::matmul_error_bound(std::size_t cols,
                                            double x_scale) const {
  const double eps = std::numeric_limits<double>::epsilon();
  const double we = weight_quantizer_.step() / 2.0;
  const double xe = input_quantizer_.step() / 2.0;
  const double n = static_cast<double>(cols);
  return x_scale * n * (we + xe + we * xe + 4.0 * n * eps);
}

// ---------------------------------------------------------------------------
// QuantizedProgram
// ---------------------------------------------------------------------------

QuantizedProgram::QuantizedProgram(const nn::Mlp& model,
                                   const nn::Matrix& calibration,
                                   const QuantizedBackendConfig& config,
                                   double range_margin)
    : config_(config) {
  TRIDENT_REQUIRE(config.weight_bits >= 1 && config.weight_bits <= 8,
                  "quantized tier weight grid must fit int8");
  TRIDENT_REQUIRE(config.input_bits >= 1 && config.input_bits <= 8,
                  "quantized tier input grid must fit int8");
  TRIDENT_REQUIRE(range_margin >= 1.0, "range margin must be >= 1");
  const int depth = model.depth();
  TRIDENT_REQUIRE(depth >= 1, "model has no layers");
  TRIDENT_REQUIRE(calibration.cols() ==
                      static_cast<std::size_t>(model.layer_sizes().front()),
                  "calibration batch does not match the model input width");

  // Calibration walk: the double reference over per-sample-normalised
  // inputs (the network is positively homogeneous — ReLU/GST/identity — so
  // normalising commutes with inference and the per-sample DAC scale can be
  // re-applied at the output).
  nn::Matrix xn = calibration;
  for (std::size_t b = 0; b < xn.rows(); ++b) {
    auto row = xn.row(b);
    const double s = dac_scale(row);
    for (double& v : row) {
      v /= s;
    }
  }
  nn::FloatBackend ref;
  const nn::BatchForwardTrace trace = model.forward_batch(xn, ref);

  const SymmetricQuantizer wq(config.weight_bits, 1.0);
  const nn::Activation act = model.hidden_activation();
  const double lipschitz = activation_lipschitz(act);
  const double eps = std::numeric_limits<double>::epsilon();

  double in_step = SymmetricQuantizer(config.input_bits, 1.0).step();
  double in_range = 1.0;        // normalised inputs live in [-1, 1]
  double e_in = in_step / 2.0;  // propagated per-element error bound

  layers_.reserve(static_cast<std::size_t>(depth));
  for (int k = 0; k < depth; ++k) {
    const nn::Matrix& w = model.weight(k);
    TRIDENT_REQUIRE(w.cols() <= nn::kInt8GemmMaxCols,
                    "layer fan-in too large for exact int32 accumulation");
    FusedLayer layer;
    layer.rows = w.rows();
    layer.cols = w.cols();
    layer.w_step = wq.step();
    layer.in_step = in_step;
    layer.weights.resize(w.size());
    wq.to_levels(w.data(), layer.weights);

    const double n = static_cast<double>(w.cols());
    // |ĥ − h| ≤ Σ |w|·|δy| + |δw|·|ŷ|, |w| ≤ 1, |ŷ| ≤ in_range, plus the
    // reference's own float accumulation slop (the int path is exact).
    double e_h = n * (e_in + (wq.step() / 2.0) * in_range) +
                 4.0 * eps * n * n * std::max(1.0, in_range);

    const bool last = (k == depth - 1);
    if (last) {
      unit_bound_ = e_h;
      layers_.push_back(std::move(layer));
      break;
    }

    // Calibrated pre-activation grid (8-bit, the LDSU comparator width).
    double h_max = 0.0;
    for (double v : trace.logits[static_cast<std::size_t>(k)].data()) {
      h_max = std::max(h_max, std::abs(v));
    }
    layer.h_range = std::max(range_margin * h_max, 1e-6);
    const SymmetricQuantizer hq(8, layer.h_range);
    layer.h_step = hq.step();
    layer.h_half_steps = (hq.levels() - 1) / 2;

    // Output grid sized to the calibrated activation range, widened if
    // needed so every h-grid level's activation image stays representable
    // (otherwise the LUT itself would saturate invisibly).
    double y_max = 0.0;
    for (double v :
         trace.activations[static_cast<std::size_t>(k) + 1].data()) {
      y_max = std::max(y_max, std::abs(v));
    }
    double f_image = 0.0;
    for (int l = -layer.h_half_steps; l <= layer.h_half_steps; ++l) {
      f_image = std::max(
          f_image, std::abs(nn::apply_activation(act, l * layer.h_step)));
    }
    const double y_range =
        std::max({range_margin * y_max, f_image, 1e-6});
    const SymmetricQuantizer oq(config.input_bits, y_range);
    layer.out_step = oq.step();
    layer.lut = phot::build_activation_lut(
        [act](double h) { return nn::apply_activation(act, h); }, hq, oq);
    layer.has_lut = true;

    // Propagate: activation is `lipschitz`-Lipschitz, the h requantization
    // adds h_step/2, landing on the next input grid adds out_step/2.
    e_in = lipschitz * (e_h + layer.h_step / 2.0) + layer.out_step / 2.0;
    in_range = y_range;
    in_step = layer.out_step;
    layers_.push_back(std::move(layer));
  }
}

nn::Matrix QuantizedProgram::forward(const nn::Matrix& x,
                                     bool* saturated) const {
  TRIDENT_REQUIRE(x.cols() == layers_.front().cols,
                  "input batch does not match the compiled model");
  const std::size_t batch = x.rows();
  bool sat = false;

  // Layer-0 DAC: per-sample scale, quantize onto the unit input grid.
  const SymmetricQuantizer in0(config_.input_bits, 1.0);
  std::vector<double> scale(batch, 1.0);
  std::size_t cur_cols = layers_.front().cols;
  std::vector<std::int8_t> cur(batch * cur_cols);
  std::vector<double> scaled(cur_cols);
  for (std::size_t b = 0; b < batch; ++b) {
    const auto row = x.row(b);
    const double s = dac_scale(row);
    scale[b] = s;
    for (std::size_t c = 0; c < cur_cols; ++c) {
      scaled[c] = row[c] / s;
    }
    in0.to_levels(scaled,
                  std::span<std::int8_t>(cur.data() + b * cur_cols, cur_cols));
  }

  std::vector<std::int32_t> acc;
  std::vector<std::int8_t> next;
  nn::Matrix out(batch, layers_.back().rows);
  for (std::size_t k = 0; k < layers_.size(); ++k) {
    const FusedLayer& layer = layers_[k];
    acc.resize(batch * layer.rows);
    nn::int8_gemm(layer.weights.data(), layer.rows, layer.cols, cur.data(),
                  batch, acc.data());
    const double unit = layer.w_step * layer.in_step;
    if (!layer.has_lut) {
      // Output layer (identity): undo the carried per-sample DAC scale.
      for (std::size_t b = 0; b < batch; ++b) {
        auto yr = out.row(b);
        const std::int32_t* ar = acc.data() + b * layer.rows;
        for (std::size_t r = 0; r < layer.rows; ++r) {
          yr[r] = static_cast<double>(ar[r]) * unit * scale[b];
        }
      }
      break;
    }
    // Requantize the exact int32 pre-activation onto the h grid, then the
    // fused activation table emits the next layer's input level directly.
    next.resize(batch * layer.rows);
    const double to_h = unit / layer.h_step;
    for (std::size_t i = 0; i < acc.size(); ++i) {
      long level = std::lround(static_cast<double>(acc[i]) * to_h);
      if (level > layer.h_half_steps || level < -layer.h_half_steps) {
        sat = true;  // left the calibrated envelope — bound no longer binds
        level = std::clamp<long>(level, -layer.h_half_steps,
                                 layer.h_half_steps);
      }
      next[i] = layer.lut(static_cast<std::int8_t>(level));
    }
    cur.swap(next);
    cur_cols = layer.rows;
  }

  if (saturated != nullptr) {
    *saturated = sat;
  }
  return out;
}

FastPathReport check_fast_path(const nn::Mlp& model,
                               const nn::Matrix& calibration,
                               const nn::Matrix& eval,
                               const QuantizedBackendConfig& config) {
  const QuantizedProgram program(model, calibration, config);

  nn::FloatBackend ref;
  const nn::BatchForwardTrace trace = model.forward_batch(eval, ref);

  FastPathReport report;
  report.exact = trace.activations.back();
  report.fast = program.forward(eval, &report.saturated);

  const std::size_t batch = eval.rows();
  report.bound.resize(batch);
  std::size_t agree = 0;
  for (std::size_t b = 0; b < batch; ++b) {
    report.bound[b] = dac_scale(eval.row(b)) * program.unit_error_bound();
    const auto er = report.exact.row(b);
    const auto fr = report.fast.row(b);
    std::size_t e_arg = 0;
    std::size_t f_arg = 0;
    for (std::size_t r = 0; r < er.size(); ++r) {
      report.max_abs_error =
          std::max(report.max_abs_error, std::abs(fr[r] - er[r]));
      if (er[r] > er[e_arg]) {
        e_arg = r;
      }
      if (fr[r] > fr[f_arg]) {
        f_arg = r;
      }
    }
    if (e_arg == f_arg) {
      ++agree;
    }
  }
  report.top1_agreement =
      batch == 0 ? 1.0 : static_cast<double>(agree) / static_cast<double>(batch);
  return report;
}

}  // namespace trident::core
