#include "nn/matrix.hpp"

#include <algorithm>
#include <cmath>

namespace trident::nn {

Vector Matrix::matvec(const Vector& x) const {
  TRIDENT_REQUIRE(x.size() == cols_, "matvec dimension mismatch");
  Vector y(rows_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* w = data_.data() + r * cols_;
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) {
      acc += w[c] * x[c];
    }
    y[r] = acc;
  }
  return y;
}

Vector Matrix::matvec_transposed(const Vector& x) const {
  TRIDENT_REQUIRE(x.size() == rows_, "transposed matvec dimension mismatch");
  Vector y(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* w = data_.data() + r * cols_;
    const double xr = x[r];
    for (std::size_t c = 0; c < cols_; ++c) {
      y[c] += w[c] * xr;
    }
  }
  return y;
}

void Matrix::add_outer(const Vector& a, const Vector& b, double scale) {
  TRIDENT_REQUIRE(a.size() == rows_ && b.size() == cols_,
                  "outer-product dimension mismatch");
  for (std::size_t r = 0; r < rows_; ++r) {
    double* w = data_.data() + r * cols_;
    const double ar = scale * a[r];
    for (std::size_t c = 0; c < cols_; ++c) {
      w[c] += ar * b[c];
    }
  }
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t.at(c, r) = at(r, c);
    }
  }
  return t;
}

Matrix Matrix::xavier(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  const double limit =
      std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (double& v : m.data_) {
    v = rng.uniform(-limit, limit);
  }
  return m;
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) {
    m = std::max(m, std::abs(v));
  }
  return m;
}

Vector hadamard(const Vector& a, const Vector& b) {
  TRIDENT_REQUIRE(a.size() == b.size(), "hadamard dimension mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = a[i] * b[i];
  }
  return out;
}

double dot(const Vector& a, const Vector& b) {
  TRIDENT_REQUIRE(a.size() == b.size(), "dot dimension mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += a[i] * b[i];
  }
  return acc;
}

std::size_t argmax(const Vector& v) {
  TRIDENT_REQUIRE(!v.empty(), "argmax of empty vector");
  return static_cast<std::size_t>(
      std::distance(v.begin(), std::max_element(v.begin(), v.end())));
}

}  // namespace trident::nn
