#include "nn/matrix.hpp"

#include <algorithm>
#include <array>
#include <chrono>
#include <cmath>
#include <string>

#include "parallel/thread_pool.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace trident::nn {

// The batched kernels below carry GCC/Clang function multiversioning: the
// loops are compiled once per ISA (AVX-512, AVX2, baseline SSE2) and the
// best clone is picked at load time, so one binary runs everywhere but uses
// the wide units where they exist.  Together with -ffp-contract=off (set on
// this file by CMake) every clone performs the identical sequence of IEEE
// multiplies and adds — vector width changes which lanes run together, never
// what any one sample's accumulation chain computes.
// ThreadSanitizer runs its interceptors before the dynamic loader resolves
// ifuncs; the target_clones resolver then faults inside libtsan.  Sanitized
// builds therefore compile the baseline kernel only — the maths is identical
// (see above), only the vector width changes.
// TRIDENT_NO_KERNEL_CLONES (the -DTRIDENT_SIMD=OFF build) additionally
// forces the baseline-only fallback so CI can prove the maths does not
// depend on the multiversioned clones.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_THREAD__) && !defined(TRIDENT_NO_KERNEL_CLONES)
#define TRIDENT_KERNEL_CLONES \
  __attribute__((target_clones("avx512f", "avx2", "default")))
#else
#define TRIDENT_KERNEL_CLONES
#endif

// GNU vector extension: an 8-lane double vector compiled down to whatever
// the enclosing clone's ISA provides (one zmm op on AVX-512, four SSE2 ops
// on baseline).  Lanes are independent multiply-then-add — lowering width
// never changes any lane's result.
#if defined(__GNUC__) || defined(__clang__)
#define TRIDENT_HAVE_VECTOR_EXT 1
using v8df = double __attribute__((vector_size(64), aligned(64)));
#endif

namespace {

/// Samples per wide microkernel panel: one independent accumulation chain
/// per sample lets the compiler vectorise across the batch without
/// reassociating any single sample's sum (strict FP semantics).  16 chains
/// fill the FP-add pipeline (two 8-wide vectors in flight) on AVX-512.
constexpr std::size_t kBatchBlock = 16;
/// Half-width panel for mid-sized tails (8 ≤ tail < 16 samples).
constexpr std::size_t kBatchBlockSmall = 8;
/// Fan-in block: a kColBlock × kBatchBlock panel is 32 KiB — stays in L1
/// while every weight row of the block streams over it.
constexpr std::size_t kColBlock = 256;

/// Grain for parallel_for so tiny batched calls run inline: target roughly
/// 256k multiply-adds per dispatched task.
[[nodiscard]] std::size_t grain_for(std::size_t flops_per_index) {
  constexpr std::size_t kTargetFlops = 262144;
  return std::max<std::size_t>(
      1, kTargetFlops / std::max<std::size_t>(1, flops_per_index));
}

/// Computes output rows [b0, b0+MB) of y = x·Wᵀ.  Samples are packed into a
/// column-major panel so the inner loop is a stride-1 multiply-add across
/// the MB independent chains; each sample still accumulates in strict
/// column order.  always_inline so the body vectorises at the ISA of the
/// TRIDENT_KERNEL_CLONES wrapper it is inlined into.
template <std::size_t MB>
[[gnu::always_inline]] inline void matmul_panel(const double* wdata,
                                                std::size_t rows,
                                                std::size_t cols,
                                                const double* xdata,
                                                double* ydata,
                                                std::size_t b0) {
#ifdef TRIDENT_HAVE_VECTOR_EXT
  // Explicit 8-lane vectors keep the compiler from vectorising the fan-in
  // loop instead (which would need in-order reductions and serialise every
  // add).  Each lane is one sample's chain, accumulated in strict column
  // order — exactly the scalar kernel's arithmetic.
  static_assert(MB % 8 == 0);
  constexpr std::size_t kNV = MB / 8;
  v8df panel[kColBlock * kNV];
  double* const pd = reinterpret_cast<double*>(panel);
  for (std::size_t c0 = 0; c0 < cols; c0 += kColBlock) {
    const std::size_t kc = std::min(kColBlock, cols - c0);
    for (std::size_t m = 0; m < MB; ++m) {
      const double* xr = xdata + (b0 + m) * cols + c0;
      for (std::size_t c = 0; c < kc; ++c) {
        pd[c * MB + m] = xr[c];
      }
    }
    for (std::size_t r = 0; r < rows; ++r) {
      const double* w = wdata + r * cols + c0;
      alignas(64) double lanes[MB];
      for (std::size_t m = 0; m < MB; ++m) {
        lanes[m] = ydata[(b0 + m) * rows + r];
      }
      v8df acc[kNV];
      __builtin_memcpy(acc, lanes, sizeof(lanes));
      for (std::size_t c = 0; c < kc; ++c) {
        const double wc = w[c];
        const v8df* px = panel + c * kNV;
        for (std::size_t v = 0; v < kNV; ++v) {
          acc[v] += wc * px[v];
        }
      }
      __builtin_memcpy(lanes, acc, sizeof(lanes));
      for (std::size_t m = 0; m < MB; ++m) {
        ydata[(b0 + m) * rows + r] = lanes[m];
      }
    }
  }
#else
  std::array<double, kColBlock * MB> panel;
  for (std::size_t c0 = 0; c0 < cols; c0 += kColBlock) {
    const std::size_t kc = std::min(kColBlock, cols - c0);
    for (std::size_t m = 0; m < MB; ++m) {
      const double* xr = xdata + (b0 + m) * cols + c0;
      for (std::size_t c = 0; c < kc; ++c) {
        panel[c * MB + m] = xr[c];
      }
    }
    for (std::size_t r = 0; r < rows; ++r) {
      const double* w = wdata + r * cols + c0;
      std::array<double, MB> acc;
      for (std::size_t m = 0; m < MB; ++m) {
        acc[m] = ydata[(b0 + m) * rows + r];
      }
      for (std::size_t c = 0; c < kc; ++c) {
        const double wc = w[c];
        const double* px = panel.data() + c * MB;
        for (std::size_t m = 0; m < MB; ++m) {
          acc[m] += wc * px[m];
        }
      }
      for (std::size_t m = 0; m < MB; ++m) {
        ydata[(b0 + m) * rows + r] = acc[m];
      }
    }
  }
#endif
}

TRIDENT_KERNEL_CLONES
void matmul_block_wide(const double* wdata, std::size_t rows,
                       std::size_t cols, const double* xdata, double* ydata,
                       std::size_t b0) {
  matmul_panel<kBatchBlock>(wdata, rows, cols, xdata, ydata, b0);
}

TRIDENT_KERNEL_CLONES
void matmul_block_small(const double* wdata, std::size_t rows,
                        std::size_t cols, const double* xdata, double* ydata,
                        std::size_t b0) {
  matmul_panel<kBatchBlockSmall>(wdata, rows, cols, xdata, ydata, b0);
}

/// Transposed-GEMM block: samples [b0, b0+mb).  Each sample owns its output
/// row (y[c] += w[c]·xr has no cross-column chain), so the column loop
/// vectorises at full width on every clone.
TRIDENT_KERNEL_CLONES
void matmul_transposed_block(const double* wdata, std::size_t rows,
                             std::size_t cols, const double* xdata,
                             double* ydata, std::size_t b0, std::size_t mb) {
  for (std::size_t r = 0; r < rows; ++r) {
    const double* w = wdata + r * cols;
    for (std::size_t m = 0; m < mb; ++m) {
      const double xr = xdata[(b0 + m) * rows + r];
      double* yr = ydata + (b0 + m) * cols;
      for (std::size_t c = 0; c < cols; ++c) {
        yr[c] += w[c] * xr;
      }
    }
  }
}

/// One weight row of the batched outer-product accumulation, samples in
/// batch order (bit-identical to sequential add_outer calls).
TRIDENT_KERNEL_CLONES
void add_outer_row(double* w, const double* adata, const double* bdata,
                   std::size_t rows, std::size_t cols, std::size_t batch,
                   std::size_t r, double scale) {
  for (std::size_t m = 0; m < batch; ++m) {
    const double ar = scale * adata[m * rows + r];
    const double* br = bdata + m * cols;
    for (std::size_t c = 0; c < cols; ++c) {
      w[c] += ar * br[c];
    }
  }
}

/// ISA tier the target_clones resolver picks on this machine.  GCC's ifunc
/// resolver and __builtin_cpu_supports consult the same CPUID feature words,
/// so this names the clone that actually runs.
[[nodiscard]] const char* kernel_isa() {
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_THREAD__) && !defined(TRIDENT_NO_KERNEL_CLONES)
  if (__builtin_cpu_supports("avx512f")) {
    return "avx512f";
  }
  if (__builtin_cpu_supports("avx2")) {
    return "avx2";
  }
#endif
  return "baseline";
}

/// Batched-kernel metrics.  The dispatch counter is suffixed with the ISA
/// picked at load time so a metrics snapshot records which clone produced
/// the numbers (the simple registry has no label support).
struct GemmMetrics {
  telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::global();
  telemetry::Counter& dispatch = reg.counter(
      std::string("trident_gemm_dispatch_") + kernel_isa() + "_total",
      "batched GEMM calls dispatched to this machine's best kernel clone");
  telemetry::Counter& matmul_calls =
      reg.counter("trident_gemm_matmul_total", "blocked y = x*W^T calls");
  telemetry::Counter& matmul_transposed_calls = reg.counter(
      "trident_gemm_matmul_transposed_total", "blocked y = x*W calls");
  telemetry::Counter& add_outer_calls =
      reg.counter("trident_gemm_add_outer_batch_total",
                  "batched outer-product accumulations");
  telemetry::Histogram& matmul_seconds =
      reg.histogram("trident_gemm_matmul_seconds",
                    telemetry::duration_buckets_seconds(),
                    "wall time of one blocked matmul_into call");
  telemetry::Histogram& matmul_transposed_seconds =
      reg.histogram("trident_gemm_matmul_transposed_seconds",
                    telemetry::duration_buckets_seconds(),
                    "wall time of one blocked matmul_transposed_into call");
  telemetry::Histogram& add_outer_seconds =
      reg.histogram("trident_gemm_add_outer_batch_seconds",
                    telemetry::duration_buckets_seconds(),
                    "wall time of one add_outer_batch call");
};

[[nodiscard]] GemmMetrics& gemm_metrics() {
  static GemmMetrics m;
  return m;
}

[[nodiscard]] double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

Vector Matrix::matvec(const Vector& x) const {
  Vector y;
  matvec_into(x, y);
  return y;
}

void Matrix::matvec_into(const Vector& x, Vector& y) const {
  TRIDENT_REQUIRE(x.size() == cols_, "matvec dimension mismatch");
  y.resize(rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* w = data_.data() + r * cols_;
    double acc = 0.0;
    for (std::size_t c = 0; c < cols_; ++c) {
      acc += w[c] * x[c];
    }
    y[r] = acc;
  }
}

Vector Matrix::matvec_transposed(const Vector& x) const {
  Vector y;
  matvec_transposed_into(x, y);
  return y;
}

void Matrix::matvec_transposed_into(const Vector& x, Vector& y) const {
  TRIDENT_REQUIRE(x.size() == rows_, "transposed matvec dimension mismatch");
  y.assign(cols_, 0.0);
  for (std::size_t r = 0; r < rows_; ++r) {
    const double* w = data_.data() + r * cols_;
    const double xr = x[r];
    for (std::size_t c = 0; c < cols_; ++c) {
      y[c] += w[c] * xr;
    }
  }
}

Matrix Matrix::matmul(const Matrix& x) const {
  Matrix y(x.rows(), rows_);
  matmul_into(x, y);
  return y;
}

void Matrix::matmul_into(const Matrix& x, Matrix& y) const {
  TRIDENT_REQUIRE(x.cols() == cols_, "matmul dimension mismatch");
  TRIDENT_REQUIRE(y.rows() == x.rows() && y.cols() == rows_,
                  "matmul output shape mismatch");
  const bool telem = telemetry::enabled();
  std::chrono::steady_clock::time_point t0;
  if (telem) {
    t0 = std::chrono::steady_clock::now();
  }
  const std::size_t batch = x.rows();
  const std::size_t full_blocks = batch / kBatchBlock;
  std::fill(y.data().begin(), y.data().end(), 0.0);

  parallel_for(
      0, full_blocks,
      [&](std::size_t blk) {
        matmul_block_wide(data_.data(), rows_, cols_, x.data().data(),
                          y.data().data(), blk * kBatchBlock);
      },
      grain_for(rows_ * cols_ * kBatchBlock));

  // Tail: one half-width panel if at least 8 samples remain, then the
  // per-sample kernel for the rest.
  std::size_t b = full_blocks * kBatchBlock;
  if (batch - b >= kBatchBlockSmall) {
    matmul_block_small(data_.data(), rows_, cols_, x.data().data(),
                       y.data().data(), b);
    b += kBatchBlockSmall;
  }
  for (; b < batch; ++b) {
    const double* xr = x.data().data() + b * cols_;
    double* yr = y.data().data() + b * rows_;
    for (std::size_t r = 0; r < rows_; ++r) {
      const double* w = data_.data() + r * cols_;
      double acc = 0.0;
      for (std::size_t c = 0; c < cols_; ++c) {
        acc += w[c] * xr[c];
      }
      yr[r] = acc;
    }
  }
  if (telem) {
    GemmMetrics& m = gemm_metrics();
    m.dispatch.add(1);
    m.matmul_calls.add(1);
    m.matmul_seconds.observe(seconds_since(t0));
  }
}

Matrix Matrix::matmul_transposed(const Matrix& x) const {
  Matrix y(x.rows(), cols_);
  matmul_transposed_into(x, y);
  return y;
}

void Matrix::matmul_transposed_into(const Matrix& x, Matrix& y) const {
  TRIDENT_REQUIRE(x.cols() == rows_, "transposed matmul dimension mismatch");
  TRIDENT_REQUIRE(y.rows() == x.rows() && y.cols() == cols_,
                  "transposed matmul output shape mismatch");
  const bool telem = telemetry::enabled();
  std::chrono::steady_clock::time_point t0;
  if (telem) {
    t0 = std::chrono::steady_clock::now();
  }
  const std::size_t batch = x.rows();
  std::fill(y.data().begin(), y.data().end(), 0.0);

  // Each sample owns its output row, so blocking over samples keeps every
  // weight row hot in L1 across the block while workers write disjoint rows.
  const std::size_t blocks = (batch + kBatchBlock - 1) / kBatchBlock;
  parallel_for(
      0, blocks,
      [&](std::size_t blk) {
        const std::size_t b0 = blk * kBatchBlock;
        matmul_transposed_block(data_.data(), rows_, cols_, x.data().data(),
                                y.data().data(), b0,
                                std::min(kBatchBlock, batch - b0));
      },
      grain_for(rows_ * cols_ * kBatchBlock));
  if (telem) {
    GemmMetrics& m = gemm_metrics();
    m.dispatch.add(1);
    m.matmul_transposed_calls.add(1);
    m.matmul_transposed_seconds.observe(seconds_since(t0));
  }
}

void Matrix::add_outer_batch(const Matrix& a, const Matrix& b, double scale) {
  TRIDENT_REQUIRE(a.rows() == b.rows(), "outer-product batch mismatch");
  TRIDENT_REQUIRE(a.cols() == rows_ && b.cols() == cols_,
                  "outer-product dimension mismatch");
  const bool telem = telemetry::enabled();
  std::chrono::steady_clock::time_point t0;
  if (telem) {
    t0 = std::chrono::steady_clock::now();
  }
  const std::size_t batch = a.rows();
  // Workers own disjoint weight rows; per element the batch accumulates in
  // sample order, matching sequential add_outer calls exactly.
  parallel_for(
      0, rows_,
      [&](std::size_t r) {
        add_outer_row(data_.data() + r * cols_, a.data().data(),
                      b.data().data(), rows_, cols_, batch, r, scale);
      },
      grain_for(batch * cols_));
  if (telem) {
    GemmMetrics& m = gemm_metrics();
    m.dispatch.add(1);
    m.add_outer_calls.add(1);
    m.add_outer_seconds.observe(seconds_since(t0));
  }
}

void Matrix::add_outer(const Vector& a, const Vector& b, double scale) {
  TRIDENT_REQUIRE(a.size() == rows_ && b.size() == cols_,
                  "outer-product dimension mismatch");
  for (std::size_t r = 0; r < rows_; ++r) {
    double* w = data_.data() + r * cols_;
    const double ar = scale * a[r];
    for (std::size_t c = 0; c < cols_; ++c) {
      w[c] += ar * b[c];
    }
  }
}

Matrix Matrix::transposed() const {
  Matrix t(cols_, rows_);
  for (std::size_t r = 0; r < rows_; ++r) {
    for (std::size_t c = 0; c < cols_; ++c) {
      t.at(c, r) = at(r, c);
    }
  }
  return t;
}

Matrix Matrix::xavier(std::size_t rows, std::size_t cols, Rng& rng) {
  Matrix m(rows, cols);
  const double limit =
      std::sqrt(6.0 / static_cast<double>(rows + cols));
  for (double& v : m.data_) {
    v = rng.uniform(-limit, limit);
  }
  return m;
}

double Matrix::max_abs() const {
  double m = 0.0;
  for (double v : data_) {
    m = std::max(m, std::abs(v));
  }
  return m;
}

Vector hadamard(const Vector& a, const Vector& b) {
  TRIDENT_REQUIRE(a.size() == b.size(), "hadamard dimension mismatch");
  Vector out(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] = a[i] * b[i];
  }
  return out;
}

void hadamard_into(const Vector& a, Vector& out) {
  TRIDENT_REQUIRE(a.size() == out.size(), "hadamard dimension mismatch");
  for (std::size_t i = 0; i < a.size(); ++i) {
    out[i] *= a[i];
  }
}

double dot(const Vector& a, const Vector& b) {
  TRIDENT_REQUIRE(a.size() == b.size(), "dot dimension mismatch");
  double acc = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    acc += a[i] * b[i];
  }
  return acc;
}

std::size_t argmax(const Vector& v) {
  TRIDENT_REQUIRE(!v.empty(), "argmax of empty vector");
  return static_cast<std::size_t>(
      std::distance(v.begin(), std::max_element(v.begin(), v.end())));
}

}  // namespace trident::nn
