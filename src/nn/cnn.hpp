// Functional convolutional layers over a MatvecBackend.
//
// The analytical side of this project only needs layer *shapes*; this
// module executes small CNNs for real, with every linear operation routed
// through a MatvecBackend — so the same network runs on exact float
// arithmetic or on the quantized/noisy photonic model, forward and
// backward.  Convolution is expressed as im2col columns hitting the
// backend's matvec, which is exactly how the Trident PE sees a conv layer
// (§IV: weight-stationary, one column per spatial position).
#pragma once

#include <memory>
#include <span>
#include <vector>

#include "common/rng.hpp"
#include "nn/matrix.hpp"
#include "nn/mlp.hpp"

namespace trident::nn {

/// A HxWxC feature map, channel-fastest row-major storage.
struct FeatureMap {
  int height = 0;
  int width = 0;
  int channels = 0;
  Vector data;

  FeatureMap() = default;
  FeatureMap(int h, int w, int c, double fill = 0.0);

  [[nodiscard]] double& at(int y, int x, int ch);
  [[nodiscard]] double at(int y, int x, int ch) const;
  [[nodiscard]] std::size_t size() const { return data.size(); }
  void validate() const;
};

/// 2-D convolution with square kernels; weights live in a Matrix of shape
/// (out_c × k·k·in_c) so the backend treats it like any PE weight bank.
class Conv2D {
 public:
  Conv2D(int in_c, int out_c, int kernel, int stride, int padding, Rng& rng);

  [[nodiscard]] int out_height(int in_h) const;
  [[nodiscard]] int out_width(int in_w) const;
  [[nodiscard]] const Matrix& weights() const { return weights_; }
  [[nodiscard]] Matrix& weights() { return weights_; }

  struct Cache {
    FeatureMap input;          ///< needed for the weight gradient
    Matrix columns;            ///< im2col block: one column per row, spatial order
    FeatureMap pre_activation; ///< h before the non-linearity
  };

  /// Forward pass: returns the activated output map and the cache the
  /// backward pass needs.  `activation` applies element-wise.
  [[nodiscard]] std::pair<FeatureMap, Cache> forward(
      const FeatureMap& in, Activation activation,
      MatvecBackend& backend) const;

  /// Backward pass: consumes dL/d(output activations), applies the SGD
  /// update through `backend`, and returns dL/d(input).
  [[nodiscard]] FeatureMap backward(const Cache& cache,
                                    const FeatureMap& grad_out,
                                    Activation activation,
                                    double learning_rate,
                                    MatvecBackend& backend);

  /// Update-only variant (no input gradient): used by training rules like
  /// DFA that obtain this layer's error signal from a feedback path
  /// instead of the downstream layers.
  void apply_gradient(const Cache& cache, const FeatureMap& grad_out,
                      Activation activation, double learning_rate,
                      MatvecBackend& backend);

  [[nodiscard]] int in_channels() const { return in_c_; }
  [[nodiscard]] int out_channels() const { return out_c_; }
  [[nodiscard]] int kernel() const { return kernel_; }

 private:
  /// Fills `col` (kernel²·in_c doubles) with the im2col column for output
  /// position (oy, ox); zero-padding is written explicitly.
  void column_into(const FeatureMap& in, int oy, int ox,
                   std::span<double> col) const;

  int in_c_;
  int out_c_;
  int kernel_;
  int stride_;
  int padding_;
  Matrix weights_;
};

/// 2×2 (or k×k) max pooling.
class MaxPool2D {
 public:
  explicit MaxPool2D(int kernel = 2, int stride = 2);

  struct Cache {
    int in_h = 0;
    int in_w = 0;
    int channels = 0;
    std::vector<std::size_t> argmax;  ///< winning input index per output
  };

  [[nodiscard]] std::pair<FeatureMap, Cache> forward(
      const FeatureMap& in) const;
  [[nodiscard]] FeatureMap backward(const Cache& cache,
                                    const FeatureMap& grad_out) const;

 private:
  int kernel_;
  int stride_;
};

/// A small conv-pool-conv-pool-dense classifier for functional studies:
/// every matvec / rank-1 update goes through the supplied backend, so the
/// whole CNN can train in-situ on the photonic model.
class SmallCnn {
 public:
  struct Config {
    int input_hw = 12;
    int input_channels = 1;
    int conv1_channels = 6;
    int conv2_channels = 12;
    int classes = 3;
    Activation activation = Activation::kGstPhotonic;
  };

  SmallCnn(const Config& config, Rng& rng);

  [[nodiscard]] const Config& config() const { return config_; }

  /// Logits for one image.
  [[nodiscard]] Vector predict(const FeatureMap& image,
                               MatvecBackend& backend) const;

  /// One SGD step on (image, label); returns the loss.
  double train_step(const FeatureMap& image, int label, double learning_rate,
                    MatvecBackend& backend);

  /// Accuracy over a set of images.
  [[nodiscard]] double evaluate(const std::vector<FeatureMap>& images,
                                const std::vector<int>& labels,
                                MatvecBackend& backend) const;

  /// Full forward state (activations, caches, logits) for training rules
  /// implemented outside the class (e.g. DFA in nn/dfa.hpp).
  struct TraceState {
    Conv2D::Cache conv1_cache;
    MaxPool2D::Cache pool1_cache;
    Conv2D::Cache conv2_cache;
    MaxPool2D::Cache pool2_cache;
    FeatureMap pooled2;  ///< the flattened dense-head input
    Vector logits;
  };
  [[nodiscard]] TraceState forward_trace(const FeatureMap& image,
                                         MatvecBackend& backend) const;

  [[nodiscard]] Conv2D& conv1() { return conv1_; }
  [[nodiscard]] Conv2D& conv2() { return conv2_; }
  [[nodiscard]] Matrix& fc() { return fc_; }
  [[nodiscard]] int flat_features() const { return flat_features_; }

 private:
  Config config_;
  Conv2D conv1_;
  MaxPool2D pool1_;
  Conv2D conv2_;
  MaxPool2D pool2_;
  Matrix fc_;  ///< (classes × flattened features)
  int flat_features_;
};

/// Synthetic image task: `classes` structured patterns (stripes at
/// class-specific orientations) with additive pixel noise — a stand-in for
/// small-image classification that needs convolutional features.
struct ImageDataset {
  std::vector<FeatureMap> images;
  std::vector<int> labels;
  int classes = 0;
  [[nodiscard]] std::size_t size() const { return images.size(); }
};

[[nodiscard]] ImageDataset striped_images(int samples, int classes, int hw,
                                          double noise, Rng& rng);

/// Translation-invariant image task: one of three 5×5 motifs (cross,
/// hollow square, diagonal) placed at a RANDOM position in each image.
/// Unlike the stripes, this task genuinely requires learned convolutional
/// features — a dense head over random conv features cannot solve it —
/// which is what makes it the right probe for conv-training rules (the
/// backprop-vs-DFA comparison of §VI / [35]).
[[nodiscard]] ImageDataset shape_images(int samples, int hw, double noise,
                                        Rng& rng);

}  // namespace trident::nn
