#include "nn/train.hpp"

namespace trident::nn {

TrainResult fit(Mlp& net, Dataset data, const TrainConfig& config,
                MatvecBackend& backend) {
  TRIDENT_REQUIRE(config.epochs >= 1, "need at least one epoch");
  TRIDENT_REQUIRE(config.learning_rate > 0.0, "learning rate must be positive");
  data.validate();
  TRIDENT_REQUIRE(data.features == net.layer_sizes().front(),
                  "dataset features do not match network input");
  TRIDENT_REQUIRE(data.classes == net.layer_sizes().back(),
                  "dataset classes do not match network output");

  Rng shuffle_rng(config.shuffle_seed);
  TrainResult result;
  result.epoch_loss.reserve(static_cast<std::size_t>(config.epochs));
  result.epoch_accuracy.reserve(static_cast<std::size_t>(config.epochs));

  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    if (config.shuffle) {
      data.shuffle(shuffle_rng);
    }
    double loss_sum = 0.0;
    std::size_t correct = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      const ForwardTrace trace = net.forward(data.inputs[i], backend);
      const Vector& logits = trace.activations.back();
      const LossGrad lg = softmax_cross_entropy(logits, data.labels[i]);
      loss_sum += lg.loss;
      if (argmax(logits) == static_cast<std::size_t>(data.labels[i])) {
        ++correct;
      }
      net.backward(trace, lg.grad, config.learning_rate, backend);
    }
    result.epoch_loss.push_back(loss_sum / static_cast<double>(data.size()));
    result.epoch_accuracy.push_back(static_cast<double>(correct) /
                                    static_cast<double>(data.size()));
  }
  return result;
}

double evaluate(const Mlp& net, const Dataset& data, MatvecBackend& backend) {
  data.validate();
  std::size_t correct = 0;
  for (std::size_t i = 0; i < data.size(); ++i) {
    const ForwardTrace trace = net.forward(data.inputs[i], backend);
    if (argmax(trace.activations.back()) ==
        static_cast<std::size_t>(data.labels[i])) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

}  // namespace trident::nn
