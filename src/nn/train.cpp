#include "nn/train.hpp"

#include <algorithm>
#include <optional>
#include <string>

#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace trident::nn {

namespace {

/// Packs samples [start, start+count) of `data` into one (count × features)
/// input block.
[[nodiscard]] Matrix pack_block(const Dataset& data, std::size_t start,
                                std::size_t count) {
  Matrix x(count, static_cast<std::size_t>(data.features));
  for (std::size_t m = 0; m < count; ++m) {
    const Vector& in = data.inputs[start + m];
    std::copy(in.begin(), in.end(), x.row(m).begin());
  }
  return x;
}

}  // namespace

TrainResult fit(Mlp& net, Dataset data, const TrainConfig& config,
                MatvecBackend& backend) {
  TRIDENT_REQUIRE(config.epochs >= 1, "need at least one epoch");
  TRIDENT_REQUIRE(config.learning_rate > 0.0, "learning rate must be positive");
  TRIDENT_REQUIRE(config.batch_size >= 1, "batch size must be positive");
  TRIDENT_REQUIRE(config.start_epoch >= 0 && config.start_epoch <= config.epochs,
                  "start_epoch must lie in [0, epochs]");
  data.validate();
  TRIDENT_REQUIRE(data.features == net.layer_sizes().front(),
                  "dataset features do not match network input");
  TRIDENT_REQUIRE(data.classes == net.layer_sizes().back(),
                  "dataset classes do not match network output");

  Rng shuffle_rng(config.shuffle_seed);
  // Resume: replay the shuffles of the epochs already trained so the data
  // order of epoch k matches what a single uninterrupted run would see.
  for (int epoch = 0; epoch < config.start_epoch; ++epoch) {
    if (config.shuffle) {
      data.shuffle(shuffle_rng);
    }
  }
  TrainResult result;
  result.epoch_loss.reserve(
      static_cast<std::size_t>(config.epochs - config.start_epoch));
  result.epoch_accuracy.reserve(
      static_cast<std::size_t>(config.epochs - config.start_epoch));

  const auto bs = static_cast<std::size_t>(config.batch_size);
  Vector logits_b(static_cast<std::size_t>(data.classes));
  for (int epoch = config.start_epoch; epoch < config.epochs; ++epoch) {
    std::optional<telemetry::Span> span;
    if (telemetry::enabled()) {
      span.emplace("train/epoch" + std::to_string(epoch), "train");
    }
    if (config.shuffle) {
      data.shuffle(shuffle_rng);
    }
    double loss_sum = 0.0;
    std::size_t correct = 0;
    for (std::size_t start = 0; start < data.size(); start += bs) {
      const std::size_t count = std::min(bs, data.size() - start);
      const Matrix xb = pack_block(data, start, count);
      const BatchForwardTrace trace = net.forward_batch(xb, backend);
      const Matrix& logits = trace.activations.back();
      Matrix grad(count, static_cast<std::size_t>(data.classes));
      for (std::size_t m = 0; m < count; ++m) {
        const auto lr = logits.row(m);
        std::copy(lr.begin(), lr.end(), logits_b.begin());
        const LossGrad lg =
            softmax_cross_entropy(logits_b, data.labels[start + m]);
        loss_sum += lg.loss;
        if (argmax(logits_b) ==
            static_cast<std::size_t>(data.labels[start + m])) {
          ++correct;
        }
        std::copy(lg.grad.begin(), lg.grad.end(), grad.row(m).begin());
      }
      net.backward_batch(trace, grad, config.learning_rate, backend);
    }
    result.epoch_loss.push_back(loss_sum / static_cast<double>(data.size()));
    result.epoch_accuracy.push_back(static_cast<double>(correct) /
                                    static_cast<double>(data.size()));
    if (config.on_epoch_end) {
      config.on_epoch_end(epoch, result);
    }
  }
  return result;
}

double evaluate(const Mlp& net, const Dataset& data, MatvecBackend& backend) {
  std::optional<telemetry::Span> span;
  if (telemetry::enabled()) {
    span.emplace("train/evaluate", "train");
  }
  data.validate();
  // Inference-only pass: stream the set in blocks through the batched
  // kernels (block size is a throughput knob only — every row equals the
  // per-sample forward bit-for-bit).
  constexpr std::size_t kEvalBlock = 32;
  std::size_t correct = 0;
  for (std::size_t start = 0; start < data.size(); start += kEvalBlock) {
    const std::size_t count = std::min(kEvalBlock, data.size() - start);
    const Matrix xb = pack_block(data, start, count);
    const BatchForwardTrace trace = net.forward_batch(xb, backend);
    const Matrix& logits = trace.activations.back();
    for (std::size_t m = 0; m < count; ++m) {
      const auto row = logits.row(m);
      const std::size_t best = static_cast<std::size_t>(
          std::max_element(row.begin(), row.end()) - row.begin());
      if (best == static_cast<std::size_t>(data.labels[start + m])) {
        ++correct;
      }
    }
  }
  return static_cast<double>(correct) / static_cast<double>(data.size());
}

}  // namespace trident::nn
