// Dense matrix / vector math for the functional neural-network simulation.
//
// The functional side of this project (in-situ training, quantization
// studies) works on small dense layers, so a simple row-major matrix with
// explicit loops is all that is needed; the heavy analytical sweeps use the
// layer *descriptors* in layer.hpp instead and never materialise tensors.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace trident::nn {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {
    TRIDENT_REQUIRE(rows > 0 && cols > 0, "matrix dimensions must be positive");
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    TRIDENT_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    TRIDENT_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<double> row(std::size_t r) {
    TRIDENT_ASSERT(r < rows_, "row index out of range");
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    TRIDENT_ASSERT(r < rows_, "row index out of range");
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] std::vector<double>& data() { return data_; }
  [[nodiscard]] const std::vector<double>& data() const { return data_; }

  /// Re-shapes to (rows × cols) in place, discarding the contents.  The
  /// backing vector only grows — shrinking and re-growing within the
  /// high-water mark never reallocates, which is what lets a PlanArena
  /// (nn/plan.hpp) reuse one Matrix across layers of different widths with
  /// zero steady-state allocation.
  void reshape(std::size_t rows, std::size_t cols) {
    TRIDENT_REQUIRE(rows > 0 && cols > 0, "matrix dimensions must be positive");
    rows_ = rows;
    cols_ = cols;
    data_.resize(rows * cols);
  }

  /// y = W x
  [[nodiscard]] Vector matvec(const Vector& x) const;
  /// y = Wᵀ x
  [[nodiscard]] Vector matvec_transposed(const Vector& x) const;
  /// In-place y = W x (y is resized; no allocation when already sized).
  void matvec_into(const Vector& x, Vector& y) const;
  /// In-place y = Wᵀ x.
  void matvec_transposed_into(const Vector& x, Vector& y) const;
  /// W += scale · a bᵀ  (rank-1 update; the backprop outer product).
  void add_outer(const Vector& a, const Vector& b, double scale);

  // --- batched (GEMM) kernels --------------------------------------------
  //
  // A batch is a Matrix whose ROWS are samples.  The kernels are cache
  // blocked (samples are packed into column-major panels so the weight row
  // is loaded once per panel instead of once per sample) and dispatched
  // over the thread pool, but each sample's accumulation runs in the same
  // strict column order as the per-sample kernel — so every output row is
  // bit-identical to the corresponding matvec call.

  /// Y = X Wᵀ: x is (batch × cols); returns (batch × rows), row b equal to
  /// matvec(x.row(b)) bit-for-bit.
  [[nodiscard]] Matrix matmul(const Matrix& x) const;
  /// In-place variant; y must be (x.rows() × rows()).
  void matmul_into(const Matrix& x, Matrix& y) const;

  /// Y = X W: x is (batch × rows); returns (batch × cols), row b equal to
  /// matvec_transposed(x.row(b)) bit-for-bit.
  [[nodiscard]] Matrix matmul_transposed(const Matrix& x) const;
  /// In-place variant; y must be (x.rows() × cols()).
  void matmul_transposed_into(const Matrix& x, Matrix& y) const;

  /// W += scale · Σ_b a.row(b) ⊗ b.row(b): the accumulated outer product of
  /// a batch (a is batch × rows, b is batch × cols).  Per element, samples
  /// accumulate in batch order — bit-identical to sequential add_outer
  /// calls.
  void add_outer_batch(const Matrix& a, const Matrix& b, double scale);

  [[nodiscard]] Matrix transposed() const;

  /// Xavier/Glorot-uniform initialisation.
  static Matrix xavier(std::size_t rows, std::size_t cols, Rng& rng);

  /// Max |element|.
  [[nodiscard]] double max_abs() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Element-wise (Hadamard) product.
[[nodiscard]] Vector hadamard(const Vector& a, const Vector& b);

/// In-place Hadamard product: out[i] *= a[i].
void hadamard_into(const Vector& a, Vector& out);

/// Dot product.
[[nodiscard]] double dot(const Vector& a, const Vector& b);

/// Index of the maximum element (argmax); ties resolve to the first.
[[nodiscard]] std::size_t argmax(const Vector& v);

}  // namespace trident::nn
