// Dense matrix / vector math for the functional neural-network simulation.
//
// The functional side of this project (in-situ training, quantization
// studies) works on small dense layers, so a simple row-major matrix with
// explicit loops is all that is needed; the heavy analytical sweeps use the
// layer *descriptors* in layer.hpp instead and never materialise tensors.
#pragma once

#include <cstddef>
#include <span>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"

namespace trident::nn {

using Vector = std::vector<double>;

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_(rows), cols_(cols), data_(rows * cols, fill) {
    TRIDENT_REQUIRE(rows > 0 && cols > 0, "matrix dimensions must be positive");
  }

  [[nodiscard]] std::size_t rows() const { return rows_; }
  [[nodiscard]] std::size_t cols() const { return cols_; }
  [[nodiscard]] std::size_t size() const { return data_.size(); }

  [[nodiscard]] double& at(std::size_t r, std::size_t c) {
    TRIDENT_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }
  [[nodiscard]] double at(std::size_t r, std::size_t c) const {
    TRIDENT_ASSERT(r < rows_ && c < cols_, "matrix index out of range");
    return data_[r * cols_ + c];
  }

  [[nodiscard]] std::span<double> row(std::size_t r) {
    TRIDENT_ASSERT(r < rows_, "row index out of range");
    return {data_.data() + r * cols_, cols_};
  }
  [[nodiscard]] std::span<const double> row(std::size_t r) const {
    TRIDENT_ASSERT(r < rows_, "row index out of range");
    return {data_.data() + r * cols_, cols_};
  }

  [[nodiscard]] std::vector<double>& data() { return data_; }
  [[nodiscard]] const std::vector<double>& data() const { return data_; }

  /// y = W x
  [[nodiscard]] Vector matvec(const Vector& x) const;
  /// y = Wᵀ x
  [[nodiscard]] Vector matvec_transposed(const Vector& x) const;
  /// W += scale · a bᵀ  (rank-1 update; the backprop outer product).
  void add_outer(const Vector& a, const Vector& b, double scale);

  [[nodiscard]] Matrix transposed() const;

  /// Xavier/Glorot-uniform initialisation.
  static Matrix xavier(std::size_t rows, std::size_t cols, Rng& rng);

  /// Max |element|.
  [[nodiscard]] double max_abs() const;

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

/// Element-wise (Hadamard) product.
[[nodiscard]] Vector hadamard(const Vector& a, const Vector& b);

/// Dot product.
[[nodiscard]] double dot(const Vector& a, const Vector& b);

/// Index of the maximum element (argmax); ties resolve to the first.
[[nodiscard]] std::size_t argmax(const Vector& v);

}  // namespace trident::nn
