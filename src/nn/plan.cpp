#include "nn/plan.hpp"

#include <algorithm>
#include <atomic>
#include <optional>

#include "common/quantize.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace trident::nn {

namespace {

struct PlanMetrics {
  telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::global();
  telemetry::Counter& compiles = reg.counter(
      "trident_plan_compiles_total", "models compiled into execution plans");
  telemetry::Counter& runs = reg.counter(
      "trident_plan_runs_total", "input blocks executed through Plan::run");
  telemetry::Counter& layers =
      reg.counter("trident_plan_layers_total",
                  "layer executions performed inside Plan::run");
  telemetry::Counter& fallbacks =
      reg.counter("trident_plan_fallback_runs_total",
                  "Plan::run calls interpreted per-op because the backend "
                  "had no fused path for the plan");
};

PlanMetrics& plan_metrics() {
  static PlanMetrics m;
  return m;
}

/// Process-wide plan id source — see ExecutionPlan::id().
std::atomic<std::uint64_t> g_next_plan_id{0};

}  // namespace

// ---------------------------------------------------------------------------
// PlanArena
// ---------------------------------------------------------------------------

void PlanArena::ensure(const ExecutionPlan& plan, std::size_t batch) {
  TRIDENT_REQUIRE(batch >= 1, "plan arena batch must be non-empty");
  const std::size_t width = plan.max_width();
  if (batch <= batch_hw_ && width <= width_hw_) {
    return;  // high-water extents already cover this run (steady state)
  }
  batch_hw_ = std::max(batch_hw_, batch);
  width_hw_ = std::max(width_hw_, width);
  out_.reshape(batch_hw_, width_hw_);
  act_a_.reshape(batch_hw_, width_hw_);
  act_b_.reshape(batch_hw_, width_hw_);
  quantized_.reshape(batch_hw_, width_hw_);
  scale_.resize(batch_hw_);
  scratch_.resize(width_hw_);
  int8_.resize(batch_hw_ * width_hw_);
  acc_.resize(batch_hw_ * width_hw_);
}

// ---------------------------------------------------------------------------
// ExecutionPlan
// ---------------------------------------------------------------------------

ExecutionPlan::ExecutionPlan(const Mlp& model, const PlanConfig& config)
    : config_(config),
      sizes_(model.layer_sizes()),
      hidden_(model.hidden_activation()) {
  TRIDENT_REQUIRE(config.weight_bits >= 1 && config.weight_bits <= 8,
                  "plan weight grid must fit int8");
  std::optional<telemetry::Span> span;
  if (telemetry::enabled()) {
    span.emplace("plan/compile", "plan");
  }

  const SymmetricQuantizer wq(config.weight_bits, 1.0);
  const int depth = model.depth();
  layers_.reserve(static_cast<std::size_t>(depth));
  for (int k = 0; k < depth; ++k) {
    PlanLayer layer;
    layer.weights = model.weight(k);
    layer.rows = layer.weights.rows();
    layer.cols = layer.weights.cols();
    layer.activation =
        (k == depth - 1) ? Activation::kIdentity : model.hidden_activation();
    // Photonic panel: the saturation legacy matmul applies to a fresh copy
    // per call, done once here.
    layer.clamped = layer.weights;
    for (double& v : layer.clamped.data()) {
      v = std::clamp(v, -1.0, 1.0);
    }
    // Quantized panel: same packing as QuantizedBackend::plan_for
    // (to_level saturates outside [-1, 1], which doubles as the clamp).
    layer.levels.resize(layer.weights.size());
    wq.to_levels(layer.weights.data(), layer.levels);
    layers_.push_back(std::move(layer));
  }

  max_width_ = 0;
  for (int s : sizes_) {
    max_width_ = std::max(max_width_, static_cast<std::size_t>(s));
  }

  // The id is taken last so a throwing compile never consumes one.
  id_ = g_next_plan_id.fetch_add(1, std::memory_order_relaxed) + 1;
  if (telemetry::enabled()) {
    plan_metrics().compiles.add(1);
  }
}

std::shared_ptr<const ExecutionPlan> ExecutionPlan::compile(
    const Mlp& model, const PlanConfig& config) {
  return std::make_shared<const ExecutionPlan>(model, config);
}

const PlanLayer& ExecutionPlan::layer(int k) const {
  TRIDENT_REQUIRE(k >= 0 && k < depth(), "plan layer index out of range");
  return layers_[static_cast<std::size_t>(k)];
}

bool ExecutionPlan::matches(const Mlp& model) const {
  return model.layer_sizes() == sizes_ &&
         model.hidden_activation() == hidden_;
}

const Matrix& ExecutionPlan::run(MatvecBackend& backend, const Matrix& x,
                                 PlanArena& arena) const {
  TRIDENT_REQUIRE(x.cols() == input_dim(), "plan input size mismatch");
  arena.ensure(*this, x.rows());
  const bool telem = telemetry::enabled();
  std::optional<telemetry::Span> span;
  if (telem) {
    span.emplace("plan/run", "plan");
  }
  if (!backend.run_plan(*this, x, arena)) {
    if (telem) {
      plan_metrics().fallbacks.add(1);
    }
    run_interpreted(backend, x, arena);
  }
  if (telem) {
    PlanMetrics& m = plan_metrics();
    m.runs.add(1);
    m.layers.add(layers_.size());
  }
  return arena.out();
}

void ExecutionPlan::run_interpreted(MatvecBackend& backend, const Matrix& x,
                                    PlanArena& arena) const {
  // One backend.matmul per layer — the identical op sequence (and thus
  // fault/ledger/noise order) Mlp::forward_batch issues, so backends
  // without a fused path (chaos injectors, counting shims) behave exactly
  // as they do on the per-op path.  This path allocates per layer; the
  // zero-allocation guarantee belongs to the fused paths only.
  const Matrix* cur = &x;
  Matrix carry;
  for (std::size_t k = 0; k < layers_.size(); ++k) {
    const PlanLayer& layer = layers_[k];
    Matrix h = backend.matmul(layer.weights, *cur);
    if (k + 1 == layers_.size()) {
      arena.out() = std::move(h);  // identity epilogue: logits are the output
      return;
    }
    for (double& v : h.data()) {
      v = apply_activation(layer.activation, v);
    }
    carry = std::move(h);
    cur = &carry;
  }
}

// ---------------------------------------------------------------------------
// Backend fused paths that belong to nn (core backends override in core/)
// ---------------------------------------------------------------------------

bool MatvecBackend::run_plan(const ExecutionPlan& plan, const Matrix& x,
                             PlanArena& arena) {
  (void)plan;
  (void)x;
  (void)arena;
  return false;  // no fused path — Plan::run interprets per-op
}

bool FloatBackend::run_plan(const ExecutionPlan& plan, const Matrix& x,
                            PlanArena& arena) {
  const int depth = plan.depth();
  const Matrix* cur = &x;
  for (int k = 0; k < depth; ++k) {
    const PlanLayer& layer = plan.layer(k);
    const bool last = (k == depth - 1);
    Matrix& h = last ? arena.out() : arena.act(k);
    h.reshape(x.rows(), layer.rows);
    layer.weights.matmul_into(*cur, h);
    if (!last) {
      for (double& v : h.data()) {
        v = apply_activation(layer.activation, v);
      }
      cur = &h;
    }
  }
  return true;
}

}  // namespace trident::nn
