// Direct Feedback Alignment (DFA) training.
//
// The photonic-training baseline of Filipovich et al. [9] avoids the
// weight-transport problem by projecting the *output* error straight to
// every hidden layer through fixed random feedback matrices:
//
//     δh_k = (B_k · e) ⊙ f'(h_k),    e = dL/d(logits),  B_k fixed random
//
// instead of backprop's  δh_k = (W_{k+1}ᵀ δh_{k+1}) ⊙ f'(h_k).  The paper
// dismisses that route for Trident's workloads: "DFA is not effective for
// training convolutional layers" (§VI, after Webster et al. [35]).  This
// module implements DFA over the same Mlp / SmallCnn functional networks
// and the same MatvecBackend abstraction, so the claim can be measured:
// DFA tracks backprop on fully connected nets and falls behind on the
// CNN (see tests/test_dfa.cpp and bench/ablation_dfa.cpp).
#pragma once

#include "common/rng.hpp"
#include "nn/cnn.hpp"
#include "nn/dataset.hpp"
#include "nn/mlp.hpp"
#include "nn/train.hpp"

namespace trident::nn {

/// Fixed random feedback matrices for an Mlp (one per hidden layer,
/// shape: layer_size × classes).  Entries are scaled like Xavier fan-in so
/// the projected error has a sane magnitude.
class DfaFeedback {
 public:
  DfaFeedback(const Mlp& net, Rng& rng);

  /// B_k · e for hidden layer k (0 … depth-2).
  [[nodiscard]] Vector project(int hidden_layer, const Vector& error) const;

  [[nodiscard]] int hidden_layers() const {
    return static_cast<int>(feedback_.size());
  }

 private:
  std::vector<Matrix> feedback_;
};

/// One DFA update on `net` for (x, label); returns the loss.  The forward
/// pass and every weight update run through `backend` (so DFA can also be
/// executed on the photonic hardware model); the error projection itself
/// is the fixed electronic feedback path.
double dfa_step(Mlp& net, const DfaFeedback& feedback, const Vector& x,
                int label, double learning_rate, MatvecBackend& backend);

/// DFA analogue of nn::fit: per-sample updates over shuffled epochs.
TrainResult fit_dfa(Mlp& net, Dataset data, const TrainConfig& config,
                    MatvecBackend& backend, Rng& feedback_rng);

/// Fixed feedback for the SmallCnn: the output error is projected straight
/// onto each conv stage's pre-activation map.
class CnnDfaFeedback {
 public:
  CnnDfaFeedback(const SmallCnn& net, Rng& rng);

  /// Projected error for conv stage 1 / 2 (flattened feature-map layout).
  [[nodiscard]] Vector project_conv1(const Vector& error) const;
  [[nodiscard]] Vector project_conv2(const Vector& error) const;

 private:
  Matrix b1_;
  Matrix b2_;
};

/// One DFA update of the SmallCnn; returns the loss.  The dense head still
/// trains with its true gradient (as in [9]); the conv stages receive the
/// DFA projection — the configuration whose failure [35] documents.
double dfa_cnn_step(SmallCnn& net, const CnnDfaFeedback& feedback,
                    const FeatureMap& image, int label, double learning_rate,
                    MatvecBackend& backend);

}  // namespace trident::nn
