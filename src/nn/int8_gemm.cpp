#include "nn/int8_gemm.hpp"

#include <algorithm>
#include <chrono>
#include <string>
#include <vector>

#include "common/error.hpp"
#include "parallel/thread_pool.hpp"
#include "telemetry/metrics.hpp"
#include "telemetry/telemetry.hpp"

namespace trident::nn {

// Same multiversioning gate as the double kernels (src/nn/matrix.cpp): GCC
// ifunc dispatch over AVX-512/AVX2/baseline, disabled under TSan (resolver
// runs before the interceptors) and under TRIDENT_NO_KERNEL_CLONES (the
// -DTRIDENT_SIMD=OFF fallback build).  Integer arithmetic is associative,
// so unlike the FP kernels the clones are trivially bit-identical.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_THREAD__) && !defined(TRIDENT_NO_KERNEL_CLONES)
#define TRIDENT_INT8_KERNEL_CLONES \
  __attribute__((target_clones("avx512f", "avx2", "default")))
#else
#define TRIDENT_INT8_KERNEL_CLONES
#endif

// 16-lane int32 vector: one zmm on AVX-512, two ymm on AVX2, four xmm on
// baseline.  Each lane is one sample's accumulator chain.
#if defined(__GNUC__) || defined(__clang__)
#define TRIDENT_HAVE_INT_VECTOR_EXT 1
using v16si = std::int32_t __attribute__((vector_size(64), aligned(64)));
#endif

// vpmaddwd tier (AVX-512BW): int8 levels widen to int16, and one
// multiply-add instruction folds a *pair* of columns into each int32 lane —
// |w·x| ≤ 127², so the adjacent-pair sum ≤ 2·127² fits int16×int16→int32
// exactly and the kernel stays bit-identical to every other tier.  This
// needs real intrinsics (no vector-extension spelling of vpmaddwd), so it
// is a separate runtime-dispatched function rather than a target_clones
// member.
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_THREAD__) && !defined(TRIDENT_NO_KERNEL_CLONES)
#define TRIDENT_INT8_MADD 1
#include <immintrin.h>
#endif

namespace {

/// Samples per wide panel: 32 chains (two 16-lane vectors in flight) hide
/// the vpmulld latency the same way the double path's 16 chains hide the
/// FP-add latency.
constexpr std::size_t kBatchBlock = 32;
/// Half-width panel for mid-sized tails (16 ≤ tail < 32 samples).
constexpr std::size_t kBatchBlockSmall = 16;
/// Fan-in block: a kColBlock × kBatchBlock int32 panel is 32 KiB — the
/// same L1 budget as the double path's panel, at twice the samples.
constexpr std::size_t kColBlock = 256;

/// Grain for parallel_for: target roughly 256k multiply-adds per task
/// (mirrors grain_for in matrix.cpp).
[[nodiscard]] std::size_t grain_for(std::size_t ops_per_index) {
  constexpr std::size_t kTargetOps = 262144;
  return std::max<std::size_t>(
      1, kTargetOps / std::max<std::size_t>(1, ops_per_index));
}

/// Computes output rows [b0, b0+MB) of y = x·Wᵀ.  The panel pre-widens the
/// int8 sample levels to int32 once per column block, so the inner loop is
/// a stride-1 broadcast-multiply-add over MB independent int32 chains.
template <std::size_t MB>
[[gnu::always_inline]] inline void int8_panel(const std::int8_t* w,
                                              std::size_t rows,
                                              std::size_t cols,
                                              const std::int8_t* x,
                                              std::int32_t* y,
                                              std::size_t b0) {
#ifdef TRIDENT_HAVE_INT_VECTOR_EXT
  static_assert(MB % 16 == 0);
  constexpr std::size_t kNV = MB / 16;
  v16si panel[kColBlock * kNV];
  std::int32_t* const pd = reinterpret_cast<std::int32_t*>(panel);
  for (std::size_t c0 = 0; c0 < cols; c0 += kColBlock) {
    const std::size_t kc = std::min(kColBlock, cols - c0);
    for (std::size_t m = 0; m < MB; ++m) {
      const std::int8_t* xr = x + (b0 + m) * cols + c0;
      for (std::size_t c = 0; c < kc; ++c) {
        pd[c * MB + m] = static_cast<std::int32_t>(xr[c]);
      }
    }
    for (std::size_t r = 0; r < rows; ++r) {
      const std::int8_t* wr = w + r * cols + c0;
      alignas(64) std::int32_t lanes[MB];
      for (std::size_t m = 0; m < MB; ++m) {
        lanes[m] = y[(b0 + m) * rows + r];
      }
      v16si acc[kNV];
      __builtin_memcpy(acc, lanes, sizeof(lanes));
      for (std::size_t c = 0; c < kc; ++c) {
        const std::int32_t wc = static_cast<std::int32_t>(wr[c]);
        const v16si* px = panel + c * kNV;
        for (std::size_t v = 0; v < kNV; ++v) {
          acc[v] += wc * px[v];
        }
      }
      __builtin_memcpy(lanes, acc, sizeof(lanes));
      for (std::size_t m = 0; m < MB; ++m) {
        y[(b0 + m) * rows + r] = lanes[m];
      }
    }
  }
#else
  std::int32_t panel[kColBlock * MB];
  for (std::size_t c0 = 0; c0 < cols; c0 += kColBlock) {
    const std::size_t kc = std::min(kColBlock, cols - c0);
    for (std::size_t m = 0; m < MB; ++m) {
      const std::int8_t* xr = x + (b0 + m) * cols + c0;
      for (std::size_t c = 0; c < kc; ++c) {
        panel[c * MB + m] = static_cast<std::int32_t>(xr[c]);
      }
    }
    for (std::size_t r = 0; r < rows; ++r) {
      const std::int8_t* wr = w + r * cols + c0;
      std::int32_t acc[MB];
      for (std::size_t m = 0; m < MB; ++m) {
        acc[m] = y[(b0 + m) * rows + r];
      }
      for (std::size_t c = 0; c < kc; ++c) {
        const std::int32_t wc = static_cast<std::int32_t>(wr[c]);
        const std::int32_t* px = panel + c * MB;
        for (std::size_t m = 0; m < MB; ++m) {
          acc[m] += wc * px[m];
        }
      }
      for (std::size_t m = 0; m < MB; ++m) {
        y[(b0 + m) * rows + r] = acc[m];
      }
    }
  }
#endif
}

TRIDENT_INT8_KERNEL_CLONES
void int8_block_wide(const std::int8_t* w, std::size_t rows, std::size_t cols,
                     const std::int8_t* x, std::int32_t* y, std::size_t b0) {
  int8_panel<kBatchBlock>(w, rows, cols, x, y, b0);
}

TRIDENT_INT8_KERNEL_CLONES
void int8_block_small(const std::int8_t* w, std::size_t rows,
                      std::size_t cols, const std::int8_t* x, std::int32_t* y,
                      std::size_t b0) {
  int8_panel<kBatchBlockSmall>(w, rows, cols, x, y, b0);
}

#ifdef TRIDENT_INT8_MADD
/// vpmaddwd block for mb ∈ {16, 32} samples: the x panel is widened to
/// int16 column *pairs* (odd trailing column zero-padded), so each inner
/// iteration retires 32 multiply-adds per zmm vector — double the vpmulld
/// tier's rate.  Accumulation is exact int32, identical to every other
/// tier by associativity.
__attribute__((target("avx512f,avx512bw"))) void int8_block_madd(
    const std::int8_t* w, std::size_t rows, std::size_t cols,
    const std::int8_t* x, std::int32_t* y, std::size_t b0, std::size_t mb) {
  const std::size_t nv = mb / 16;  // zmm vectors per column pair
  alignas(64) std::int16_t panel[kColBlock * kBatchBlock];
  for (std::size_t c0 = 0; c0 < cols; c0 += kColBlock) {
    const std::size_t kc = std::min(kColBlock, cols - c0);
    const std::size_t pairs = (kc + 1) / 2;
    for (std::size_t m = 0; m < mb; ++m) {
      const std::int8_t* xr = x + (b0 + m) * cols + c0;
      // Vector v holds samples [16v, 16v+16); lane i packs the int16 pair
      // (x[c], x[c+1]) of sample 16v+i.
      std::int16_t* pd = panel + (m / 16) * 32 + 2 * (m % 16);
      for (std::size_t p = 0; p < pairs; ++p) {
        const std::size_t c = 2 * p;
        pd[p * nv * 32] = static_cast<std::int16_t>(xr[c]);
        pd[p * nv * 32 + 1] =
            c + 1 < kc ? static_cast<std::int16_t>(xr[c + 1]) : std::int16_t{0};
      }
    }
    for (std::size_t r = 0; r < rows; ++r) {
      const std::int8_t* wr = w + r * cols + c0;
      __m512i acc[2] = {_mm512_setzero_si512(), _mm512_setzero_si512()};
      for (std::size_t p = 0; p < pairs; ++p) {
        const std::size_t c = 2 * p;
        const auto w0 = static_cast<std::uint32_t>(
            static_cast<std::uint16_t>(static_cast<std::int16_t>(wr[c])));
        const std::uint32_t w1 =
            c + 1 < kc ? static_cast<std::uint32_t>(static_cast<std::uint16_t>(
                             static_cast<std::int16_t>(wr[c + 1])))
                       : 0u;
        const __m512i wv =
            _mm512_set1_epi32(static_cast<int>(w0 | (w1 << 16)));
        for (std::size_t v = 0; v < nv; ++v) {
          const __m512i xv = _mm512_load_si512(
              reinterpret_cast<const void*>(panel + (p * nv + v) * 32));
          acc[v] = _mm512_add_epi32(acc[v], _mm512_madd_epi16(wv, xv));
        }
      }
      alignas(64) std::int32_t lanes[kBatchBlock];
      for (std::size_t v = 0; v < nv; ++v) {
        _mm512_store_si512(reinterpret_cast<void*>(lanes + v * 16), acc[v]);
      }
      for (std::size_t m = 0; m < mb; ++m) {
        y[(b0 + m) * rows + r] += lanes[m];
      }
    }
  }
}

[[nodiscard]] bool int8_madd_supported() {
  static const bool supported = __builtin_cpu_supports("avx512bw") != 0;
  return supported;
}
#endif

/// Transposed block: each sample owns its output row (no cross-column
/// chain), so the column loop auto-vectorises at full width per clone.
TRIDENT_INT8_KERNEL_CLONES
void int8_transposed_block(const std::int8_t* w, std::size_t rows,
                           std::size_t cols, const std::int8_t* x,
                           std::int32_t* y, std::size_t b0, std::size_t mb) {
  for (std::size_t r = 0; r < rows; ++r) {
    const std::int8_t* wr = w + r * cols;
    for (std::size_t m = 0; m < mb; ++m) {
      const std::int32_t xr =
          static_cast<std::int32_t>(x[(b0 + m) * rows + r]);
      std::int32_t* yr = y + (b0 + m) * cols;
      for (std::size_t c = 0; c < cols; ++c) {
        yr[c] += static_cast<std::int32_t>(wr[c]) * xr;
      }
    }
  }
}

/// Per-ISA metrics for the int8 path: the dispatch counter and the timing
/// histograms are suffixed with the resolved clone, so a snapshot records
/// which ISA produced the kernel times (the registry has no labels).
struct Int8GemmMetrics {
  telemetry::MetricsRegistry& reg = telemetry::MetricsRegistry::global();
  telemetry::Counter& dispatch = reg.counter(
      std::string("trident_int8_gemm_dispatch_") + int8_kernel_isa() +
          "_total",
      "int8 GEMM calls dispatched to this machine's best kernel clone");
  telemetry::Counter& matmul_calls = reg.counter(
      "trident_int8_gemm_matmul_total", "blocked int8 y = x*W^T calls");
  telemetry::Counter& matmul_transposed_calls =
      reg.counter("trident_int8_gemm_matmul_transposed_total",
                  "blocked int8 y = x*W calls");
  telemetry::Histogram& matmul_seconds = reg.histogram(
      std::string("trident_int8_gemm_matmul_seconds_") + int8_kernel_isa(),
      telemetry::duration_buckets_seconds(),
      "wall time of one blocked int8_gemm call on the resolved ISA");
  telemetry::Histogram& matmul_transposed_seconds = reg.histogram(
      std::string("trident_int8_gemm_matmul_transposed_seconds_") +
          int8_kernel_isa(),
      telemetry::duration_buckets_seconds(),
      "wall time of one blocked int8_gemm_transposed call on the resolved "
      "ISA");
};

[[nodiscard]] Int8GemmMetrics& int8_metrics() {
  static Int8GemmMetrics m;
  return m;
}

[[nodiscard]] double seconds_since(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

}  // namespace

const char* int8_kernel_isa() {
#if defined(__x86_64__) && defined(__GNUC__) && !defined(__clang__) && \
    !defined(__SANITIZE_THREAD__) && !defined(TRIDENT_NO_KERNEL_CLONES)
  if (__builtin_cpu_supports("avx512bw")) {
    return "avx512bw";  // vpmaddwd pair-multiply tier
  }
  if (__builtin_cpu_supports("avx512f")) {
    return "avx512f";
  }
  if (__builtin_cpu_supports("avx2")) {
    return "avx2";
  }
#endif
  return "baseline";
}

void int8_gemm(const std::int8_t* w, std::size_t rows, std::size_t cols,
               const std::int8_t* x, std::size_t batch, std::int32_t* y) {
  TRIDENT_REQUIRE(cols <= kInt8GemmMaxCols,
                  "int8_gemm fan-in exceeds int32 overflow headroom");
  const bool telem = telemetry::enabled();
  std::chrono::steady_clock::time_point t0;
  if (telem) {
    t0 = std::chrono::steady_clock::now();
  }
  std::fill(y, y + batch * rows, 0);
#ifdef TRIDENT_INT8_MADD
  const bool madd = int8_madd_supported();
#endif
  const std::size_t full_blocks = batch / kBatchBlock;
  parallel_for(
      0, full_blocks,
      [&](std::size_t blk) {
#ifdef TRIDENT_INT8_MADD
        if (madd) {
          int8_block_madd(w, rows, cols, x, y, blk * kBatchBlock, kBatchBlock);
          return;
        }
#endif
        int8_block_wide(w, rows, cols, x, y, blk * kBatchBlock);
      },
      grain_for(rows * cols * kBatchBlock));

  std::size_t b = full_blocks * kBatchBlock;
  if (batch - b >= kBatchBlockSmall) {
#ifdef TRIDENT_INT8_MADD
    if (madd) {
      int8_block_madd(w, rows, cols, x, y, b, kBatchBlockSmall);
    } else {
      int8_block_small(w, rows, cols, x, y, b);
    }
#else
    int8_block_small(w, rows, cols, x, y, b);
#endif
    b += kBatchBlockSmall;
  }
#ifdef TRIDENT_INT8_MADD
  // Mid-size tails (serving micro-batches sit here): zero-pad up to one
  // small panel and run the vpmaddwd block anyway — the discarded lanes
  // cost less than a scalar loop from ~4 samples up, and int32 exactness
  // makes the padded path bit-identical to the scalar one.
  if (madd && batch - b >= 4) {
    const std::size_t tail = batch - b;
    std::vector<std::int8_t> xp(kBatchBlockSmall * cols, 0);
    std::vector<std::int32_t> yp(kBatchBlockSmall * rows, 0);
    std::copy(x + b * cols, x + batch * cols, xp.begin());
    int8_block_madd(w, rows, cols, xp.data(), yp.data(), 0, kBatchBlockSmall);
    std::copy(yp.begin(),
              yp.begin() + static_cast<std::ptrdiff_t>(tail * rows),
              y + b * rows);
    b = batch;
  }
#endif
  for (; b < batch; ++b) {
    const std::int8_t* xr = x + b * cols;
    std::int32_t* yr = y + b * rows;
    for (std::size_t r = 0; r < rows; ++r) {
      const std::int8_t* wr = w + r * cols;
      std::int32_t acc = 0;
      for (std::size_t c = 0; c < cols; ++c) {
        acc += static_cast<std::int32_t>(wr[c]) *
               static_cast<std::int32_t>(xr[c]);
      }
      yr[r] = acc;
    }
  }
  if (telem) {
    Int8GemmMetrics& m = int8_metrics();
    m.dispatch.add(1);
    m.matmul_calls.add(1);
    m.matmul_seconds.observe(seconds_since(t0));
  }
}

void int8_gemm_transposed(const std::int8_t* w, std::size_t rows,
                          std::size_t cols, const std::int8_t* x,
                          std::size_t batch, std::int32_t* y) {
  TRIDENT_REQUIRE(rows <= kInt8GemmMaxCols,
                  "int8_gemm_transposed fan-in exceeds int32 overflow "
                  "headroom");
  const bool telem = telemetry::enabled();
  std::chrono::steady_clock::time_point t0;
  if (telem) {
    t0 = std::chrono::steady_clock::now();
  }
  std::fill(y, y + batch * cols, 0);
  const std::size_t blocks = (batch + kBatchBlock - 1) / kBatchBlock;
  parallel_for(
      0, blocks,
      [&](std::size_t blk) {
        const std::size_t b0 = blk * kBatchBlock;
        int8_transposed_block(w, rows, cols, x, y, b0,
                              std::min(kBatchBlock, batch - b0));
      },
      grain_for(rows * cols * kBatchBlock));
  if (telem) {
    Int8GemmMetrics& m = int8_metrics();
    m.dispatch.add(1);
    m.matmul_transposed_calls.add(1);
    m.matmul_transposed_seconds.observe(seconds_since(t0));
  }
}

}  // namespace trident::nn
