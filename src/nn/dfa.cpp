#include "nn/dfa.hpp"

#include <cmath>

#include "common/error.hpp"

namespace trident::nn {

DfaFeedback::DfaFeedback(const Mlp& net, Rng& rng) {
  const auto& sizes = net.layer_sizes();
  TRIDENT_REQUIRE(sizes.size() >= 2, "network too shallow for DFA");
  const auto classes = static_cast<std::size_t>(sizes.back());
  feedback_.reserve(sizes.size() - 2);
  for (std::size_t k = 1; k + 1 < sizes.size(); ++k) {
    // B_k: hidden_size × classes, Xavier-ish scale over the class fan-in.
    Matrix b(static_cast<std::size_t>(sizes[k]), classes);
    const double limit =
        std::sqrt(6.0 / static_cast<double>(sizes[k] + sizes.back()));
    for (double& v : b.data()) {
      v = rng.uniform(-limit, limit);
    }
    feedback_.push_back(std::move(b));
  }
}

Vector DfaFeedback::project(int hidden_layer, const Vector& error) const {
  TRIDENT_REQUIRE(hidden_layer >= 0 && hidden_layer < hidden_layers(),
                  "hidden layer index out of range");
  return feedback_[static_cast<std::size_t>(hidden_layer)].matvec(error);
}

double dfa_step(Mlp& net, const DfaFeedback& feedback, const Vector& x,
                int label, double learning_rate, MatvecBackend& backend) {
  const ForwardTrace trace = net.forward(x, backend);
  const LossGrad lg = softmax_cross_entropy(trace.activations.back(), label);

  // Output layer: true gradient, as in [9].
  const auto last = static_cast<std::size_t>(net.depth() - 1);
  backend.rank1_update(net.weight(static_cast<int>(last)), lg.grad,
                       trace.activations[last], learning_rate);

  // Hidden layers: δh_k = (B_k e) ⊙ f'(h_k), no weight transport.
  for (int k = 0; k < net.depth() - 1; ++k) {
    Vector dh = feedback.project(k, lg.grad);
    const Vector& h = trace.logits[static_cast<std::size_t>(k)];
    for (std::size_t i = 0; i < dh.size(); ++i) {
      dh[i] *= activation_derivative(net.hidden_activation(), h[i]);
    }
    backend.rank1_update(net.weight(k), dh,
                         trace.activations[static_cast<std::size_t>(k)],
                         learning_rate);
  }
  return lg.loss;
}

TrainResult fit_dfa(Mlp& net, Dataset data, const TrainConfig& config,
                    MatvecBackend& backend, Rng& feedback_rng) {
  TRIDENT_REQUIRE(config.epochs >= 1, "need at least one epoch");
  data.validate();
  TRIDENT_REQUIRE(data.features == net.layer_sizes().front() &&
                      data.classes == net.layer_sizes().back(),
                  "dataset does not match network shape");

  const DfaFeedback feedback(net, feedback_rng);
  Rng shuffle_rng(config.shuffle_seed);
  TrainResult result;
  for (int epoch = 0; epoch < config.epochs; ++epoch) {
    if (config.shuffle) {
      data.shuffle(shuffle_rng);
    }
    double loss_sum = 0.0;
    std::size_t correct = 0;
    for (std::size_t i = 0; i < data.size(); ++i) {
      const Vector logits =
          net.forward(data.inputs[i], backend).activations.back();
      if (argmax(logits) == static_cast<std::size_t>(data.labels[i])) {
        ++correct;
      }
      loss_sum += dfa_step(net, feedback, data.inputs[i], data.labels[i],
                           config.learning_rate, backend);
    }
    result.epoch_loss.push_back(loss_sum / static_cast<double>(data.size()));
    result.epoch_accuracy.push_back(static_cast<double>(correct) /
                                    static_cast<double>(data.size()));
  }
  return result;
}

CnnDfaFeedback::CnnDfaFeedback(const SmallCnn& net, Rng& rng) {
  const auto& cfg = net.config();
  const auto classes = static_cast<std::size_t>(cfg.classes);
  const auto conv1_elems = static_cast<std::size_t>(cfg.input_hw) *
                           static_cast<std::size_t>(cfg.input_hw) *
                           static_cast<std::size_t>(cfg.conv1_channels);
  const int hw2 = cfg.input_hw / 2;
  const auto conv2_elems = static_cast<std::size_t>(hw2) *
                           static_cast<std::size_t>(hw2) *
                           static_cast<std::size_t>(cfg.conv2_channels);
  auto fill = [&](Matrix& b, std::size_t rows) {
    b = Matrix(rows, classes);
    const double limit =
        std::sqrt(6.0 / static_cast<double>(rows + classes));
    for (double& v : b.data()) {
      v = rng.uniform(-limit, limit);
    }
  };
  fill(b1_, conv1_elems);
  fill(b2_, conv2_elems);
}

Vector CnnDfaFeedback::project_conv1(const Vector& error) const {
  return b1_.matvec(error);
}

Vector CnnDfaFeedback::project_conv2(const Vector& error) const {
  return b2_.matvec(error);
}

double dfa_cnn_step(SmallCnn& net, const CnnDfaFeedback& feedback,
                    const FeatureMap& image, int label, double learning_rate,
                    MatvecBackend& backend) {
  const SmallCnn::TraceState state = net.forward_trace(image, backend);
  const LossGrad lg = softmax_cross_entropy(state.logits, label);

  // Dense head: true gradient.
  backend.rank1_update(net.fc(), lg.grad, state.pooled2.data, learning_rate);

  const Activation act = net.config().activation;

  // Conv stage 2: error projected straight to its output map.
  const auto& pre2 = state.conv2_cache.pre_activation;
  FeatureMap grad2(pre2.height, pre2.width, pre2.channels);
  grad2.data = feedback.project_conv2(lg.grad);
  net.conv2().apply_gradient(state.conv2_cache, grad2, act, learning_rate,
                             backend);

  // Conv stage 1 likewise.
  const auto& pre1 = state.conv1_cache.pre_activation;
  FeatureMap grad1(pre1.height, pre1.width, pre1.channels);
  grad1.data = feedback.project_conv1(lg.grad);
  net.conv1().apply_gradient(state.conv1_cache, grad1, act, learning_rate,
                             backend);
  return lg.loss;
}

}  // namespace trident::nn
