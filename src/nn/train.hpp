// SGD training loop over an Mlp and a MatvecBackend.
//
// One loop serves the float reference, the quantized-photonic backend, and
// every bit-resolution ablation — the only variable is which backend is
// plugged in, mirroring the paper's claim that inference and training run
// on the *same* hardware with different encodings (Table II).
#pragma once

#include <functional>
#include <vector>

#include "common/error.hpp"
#include "common/rng.hpp"
#include "nn/dataset.hpp"
#include "nn/mlp.hpp"

namespace trident::nn {

struct TrainResult;

struct TrainConfig {
  int epochs = 20;
  double learning_rate = 0.05;
  /// Shuffle samples between epochs.
  bool shuffle = true;
  unsigned long long shuffle_seed = 7;
  /// Samples per forward/backward block.  Every block runs through the
  /// batched GEMM path; batch_size = 1 reproduces per-sample SGD
  /// bit-for-bit.  Larger blocks amortise kernel and ledger overhead but
  /// switch the weight updates to minibatch semantics (all samples of a
  /// block see the same pre-update weights on the way down).
  int batch_size = 1;
  /// Resume point: replay this many epoch shuffles (advancing the shuffle
  /// stream without touching the weights), then train epochs
  /// [start_epoch, epochs).  With the same seeds and a restored network,
  /// fit(start_epoch = k) continues a longer schedule bit-identically —
  /// the checkpoint/resume contract of state::Snapshot rests on this.
  int start_epoch = 0;
  /// Invoked after each trained epoch with the absolute 0-based epoch just
  /// completed and the result so far (epochs trained by *this* call).
  /// Checkpoint hooks live here; exceptions propagate out of fit().
  std::function<void(int epoch, const TrainResult& so_far)> on_epoch_end;
};

struct TrainResult {
  std::vector<double> epoch_loss;      ///< mean cross-entropy per epoch
  std::vector<double> epoch_accuracy;  ///< training accuracy per epoch
  [[nodiscard]] double final_loss() const {
    TRIDENT_REQUIRE(!epoch_loss.empty(),
                    "final_loss() on a result with no trained epochs");
    return epoch_loss.back();
  }
  [[nodiscard]] double final_accuracy() const {
    TRIDENT_REQUIRE(!epoch_accuracy.empty(),
                    "final_accuracy() on a result with no trained epochs");
    return epoch_accuracy.back();
  }
};

/// Trains `net` on `data` via per-sample SGD through `backend`.
TrainResult fit(Mlp& net, Dataset data, const TrainConfig& config,
                MatvecBackend& backend);

/// Classification accuracy of `net` on `data` evaluated through `backend`.
[[nodiscard]] double evaluate(const Mlp& net, const Dataset& data,
                              MatvecBackend& backend);

}  // namespace trident::nn
