// Functional multi-layer perceptron with a pluggable linear-algebra backend.
//
// The paper's training story (§III.A.2, Table II) maps three linear
// primitives onto the same PE hardware:
//
//   forward         y_k  = f(W_k · y_{k-1})        weight bank ← W_k
//   gradient vector δh_k = (W_{k+1}ᵀ · δh_{k+1}) ⊙ f'(h_k)
//                                                   weight bank ← W_{k+1}ᵀ
//   outer product   δW_k = δh_k · y_{k-1}ᵀ          weight bank ← y_{k-1}ᵀ
//
// The Mlp below expresses backprop in exactly those three primitives and
// delegates them to a MatvecBackend: the exact float backend gives the
// reference, and the photonic backend (src/core/photonic_backend) runs the
// same network through quantized, noisy, GST-programmed hardware — which is
// how the 8-bit-trains / 6-bit-doesn't ablation is carried out.
#pragma once

#include <memory>
#include <vector>

#include "common/rng.hpp"
#include "nn/matrix.hpp"
#include "photonics/constants.hpp"

namespace trident::nn {

/// Hidden-layer non-linearity.
enum class Activation {
  kReLU,         ///< max(0, h): used by every CNN in the evaluation
  kGstPhotonic,  ///< Trident's GST cell, linearised: 0.34·max(0, h) (§III.C)
  kIdentity,
};

// Both activation helpers are defined inline: the compiled-plan fused
// epilogues (core/*_backend run_plan) evaluate them per output element, and
// an out-of-line call there measurably dominates the B=32 forward.
[[nodiscard]] inline double apply_activation(Activation a, double h) {
  switch (a) {
    case Activation::kReLU:
      return h > 0.0 ? h : 0.0;
    case Activation::kGstPhotonic:
      return h > 0.0 ? phot::kActivationDerivativeHigh * h : 0.0;
    case Activation::kIdentity:
      return h;
  }
  // A value outside the enum (a new Activation missing its case above, or a
  // corrupted enum) must fail loudly — silently computing identity here
  // would mask the missing device model.
  TRIDENT_REQUIRE(false, "unhandled Activation in apply_activation");
}

[[nodiscard]] inline double activation_derivative(Activation a, double h) {
  switch (a) {
    case Activation::kReLU:
      return h > 0.0 ? 1.0 : 0.0;
    case Activation::kGstPhotonic:
      return h > 0.0 ? phot::kActivationDerivativeHigh
                     : phot::kActivationDerivativeLow;
    case Activation::kIdentity:
      return 1.0;
  }
  TRIDENT_REQUIRE(false, "unhandled Activation in activation_derivative");
}

class ExecutionPlan;  // nn/plan.hpp: compiled layer schedule + packed panels
class PlanArena;      // nn/plan.hpp: per-replica scratch for Plan runs

/// Linear-primitive backend.  Implementations may quantize, add noise, and
/// keep energy/latency accounts.
///
/// The batched entry points carry a whole symbol block through the same
/// primitives (rows of the batch Matrix are samples).  The base-class
/// defaults simply loop the per-sample virtuals, so every backend gets
/// bit-identical batched semantics for free; backends override them to
/// amortise quantization, bookkeeping, and memory traffic per block.
///
/// Failure contract (what the serving runtime relies on): a backend that
/// hits a *transient* fault (a glitched read, a chaos-injected error)
/// throws an ordinary exception — the caller may retry the same call,
/// possibly on another replica.  A backend whose hardware is *gone*
/// throws trident::HardwareFailure instead — the owning replica must be
/// decommissioned and rebuilt, not retried.  Backends may also return
/// non-finite outputs to model silent data corruption; batch consumers
/// are expected to scrub for NaN/Inf before trusting a row.  A backend
/// instance is only ever driven from one thread at a time (each serving
/// replica owns a private instance), so implementations need no locking.
class MatvecBackend {
 public:
  virtual ~MatvecBackend() = default;
  /// y = W x
  [[nodiscard]] virtual Vector matvec(const Matrix& w, const Vector& x) = 0;
  /// y = Wᵀ x
  [[nodiscard]] virtual Vector matvec_transposed(const Matrix& w,
                                                 const Vector& x) = 0;
  /// W ← W − lr · (δh · yᵀ): the weight-update outer product (Eqs. 1-2).
  virtual void rank1_update(Matrix& w, const Vector& dh, const Vector& y_prev,
                            double lr) = 0;

  /// In-place y = W x (reuses y's storage; default delegates to matvec).
  virtual void matvec_into(const Matrix& w, const Vector& x, Vector& y);
  /// In-place y = Wᵀ x.
  virtual void matvec_transposed_into(const Matrix& w, const Vector& x,
                                      Vector& y);
  /// Batched forward: x is (batch × cols); returns (batch × rows) with row b
  /// equal to matvec(w, x.row(b)), including any noise/ledger side effects in
  /// batch order.
  [[nodiscard]] virtual Matrix matmul(const Matrix& w, const Matrix& x);
  /// Batched gradient-vector pass: x is (batch × rows); returns
  /// (batch × cols), loop-equivalent to matvec_transposed per sample.
  [[nodiscard]] virtual Matrix matmul_transposed(const Matrix& w,
                                                 const Matrix& x);
  /// Batched weight update: applies rank1_update once per sample in batch
  /// order (in-situ hardware programs sequentially, so the quantized result
  /// depends on the order — the default loop IS the semantics).
  virtual void update_batch(Matrix& w, const Matrix& dh, const Matrix& y_prev,
                            double lr);

  /// Fused whole-model execution of a compiled ExecutionPlan (nn/plan.hpp):
  /// runs every layer of `plan` on `x` (batch × input), leaving the output
  /// logits in `arena.out()`, with outputs, RNG draws, and ledger counters
  /// bit-identical to forward_batch through the per-op entry points above.
  /// Returns false when this backend has no fused path for `plan` (the base
  /// default) — the caller then interprets the plan per-op instead, so
  /// decorated/custom backends keep their exact call sequence.
  virtual bool run_plan(const ExecutionPlan& plan, const Matrix& x,
                        PlanArena& arena);
};

/// Exact double-precision backend (the digital reference).
class FloatBackend final : public MatvecBackend {
 public:
  [[nodiscard]] Vector matvec(const Matrix& w, const Vector& x) override;
  [[nodiscard]] Vector matvec_transposed(const Matrix& w,
                                         const Vector& x) override;
  void rank1_update(Matrix& w, const Vector& dh, const Vector& y_prev,
                    double lr) override;
  void matvec_into(const Matrix& w, const Vector& x, Vector& y) override;
  void matvec_transposed_into(const Matrix& w, const Vector& x,
                              Vector& y) override;
  [[nodiscard]] Matrix matmul(const Matrix& w, const Matrix& x) override;
  [[nodiscard]] Matrix matmul_transposed(const Matrix& w,
                                         const Matrix& x) override;
  void update_batch(Matrix& w, const Matrix& dh, const Matrix& y_prev,
                    double lr) override;
  /// Fused plan path: per-layer matmul_into + activation into the arena,
  /// zero steady-state allocation, bit-identical to forward_batch.
  bool run_plan(const ExecutionPlan& plan, const Matrix& x,
                PlanArena& arena) override;
};

/// Activations and logits recorded during a forward pass (needed by
/// backprop, mirroring what Trident keeps in the LDSU / caches).
struct ForwardTrace {
  std::vector<Vector> activations;  ///< y_0 (input) … y_N (output logits)
  std::vector<Vector> logits;       ///< h_1 … h_N
};

/// Batched forward state: the same trace with a (batch × size_k) Matrix per
/// layer, one sample per row.
struct BatchForwardTrace {
  std::vector<Matrix> activations;  ///< y_0 (input) … y_N (output logits)
  std::vector<Matrix> logits;       ///< h_1 … h_N
  [[nodiscard]] std::size_t batch() const {
    return activations.empty() ? 0 : activations.front().rows();
  }
};

class Mlp {
 public:
  /// `layer_sizes` = {in, hidden…, out}.  Hidden layers use `hidden`
  /// activation; the output layer is linear (losses attach externally).
  Mlp(std::vector<int> layer_sizes, Activation hidden, Rng& rng);

  [[nodiscard]] int depth() const { return static_cast<int>(weights_.size()); }
  [[nodiscard]] const std::vector<int>& layer_sizes() const { return sizes_; }
  [[nodiscard]] Activation hidden_activation() const { return hidden_; }
  [[nodiscard]] const Matrix& weight(int k) const;
  [[nodiscard]] Matrix& weight(int k);

  /// Forward pass through `backend`.
  [[nodiscard]] ForwardTrace forward(const Vector& x,
                                     MatvecBackend& backend) const;

  /// Backward pass: given dL/d(output logits), computes δh_k for every layer
  /// (Eq. 3) and applies the SGD update (Eqs. 1-2) through `backend`.
  void backward(const ForwardTrace& trace, const Vector& output_grad,
                double learning_rate, MatvecBackend& backend);

  /// Batched forward pass: x is (batch × input); whole symbol blocks stream
  /// through the backend's batched primitives.  Row b of every trace entry
  /// is bit-identical to forward(x.row(b)) under the same weights.
  [[nodiscard]] BatchForwardTrace forward_batch(const Matrix& x,
                                                MatvecBackend& backend) const;

  /// Batched backward pass (minibatch SGD): per layer, the gradient block
  /// propagates through the pre-update weights, then every sample's rank-1
  /// update applies in batch order.
  void backward_batch(const BatchForwardTrace& trace, const Matrix& output_grad,
                      double learning_rate, MatvecBackend& backend);

  /// Convenience inference with a private float backend.
  [[nodiscard]] Vector predict(const Vector& x) const;

 private:
  std::vector<int> sizes_;
  Activation hidden_;
  std::vector<Matrix> weights_;  ///< weights_[k]: (sizes_[k+1] × sizes_[k])
};

/// Softmax of logits (numerically stabilised).
[[nodiscard]] Vector softmax(const Vector& logits);

/// Cross-entropy loss of softmax(logits) against a class label, and its
/// gradient with respect to the logits.
struct LossGrad {
  double loss = 0.0;
  Vector grad;
};
[[nodiscard]] LossGrad softmax_cross_entropy(const Vector& logits, int label);

}  // namespace trident::nn
