// CNN layer descriptors used by the analytical (MAESTRO-style) evaluation.
//
// The paper's latency/energy numbers come from a per-layer analysis of the
// CNN workloads, not from executing real tensors: each layer contributes a
// MAC count and weight / input / output traffic, which the dataflow model
// turns into cycles and joules.  These descriptors capture exactly the
// shape information that analysis needs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/error.hpp"

namespace trident::nn {

enum class LayerType {
  kConv,           ///< standard convolution
  kDepthwiseConv,  ///< depthwise (per-channel) convolution
  kDense,          ///< fully connected
  kPool,           ///< max/avg pooling (no MACs, data movement only)
  kGlobalPool,     ///< global average pooling
};

/// Shape description of one layer.  Spatial sizes refer to the layer input.
struct LayerSpec {
  std::string name;
  LayerType type = LayerType::kConv;
  int in_h = 1;
  int in_w = 1;
  int in_c = 1;
  int out_c = 1;
  int kernel = 1;
  int stride = 1;
  int padding = 0;
  /// Number of filter groups (1 = dense conv; in_c = depthwise).
  int groups = 1;
  bool has_activation = true;  ///< followed by ReLU (all evaluated models)

  [[nodiscard]] int out_h() const {
    return (in_h + 2 * padding - kernel) / stride + 1;
  }
  [[nodiscard]] int out_w() const {
    return (in_w + 2 * padding - kernel) / stride + 1;
  }

  /// Multiply-accumulate operations for one inference.
  [[nodiscard]] std::uint64_t macs() const;
  /// Weight parameter count (0 for pooling).
  [[nodiscard]] std::uint64_t weights() const;
  /// Input activation element count.
  [[nodiscard]] std::uint64_t inputs() const {
    return static_cast<std::uint64_t>(in_h) * static_cast<std::uint64_t>(in_w) *
           static_cast<std::uint64_t>(in_c);
  }
  /// Output activation element count.
  [[nodiscard]] std::uint64_t outputs() const {
    return static_cast<std::uint64_t>(out_h()) *
           static_cast<std::uint64_t>(out_w()) *
           static_cast<std::uint64_t>(out_c);
  }
  /// Number of output neurons that receive an activation function.
  [[nodiscard]] std::uint64_t activations() const {
    return has_activation ? outputs() : 0;
  }

  /// Validates internal consistency (divisibility of groups, positive dims).
  void validate() const;

  // --- factory helpers (keep the zoo tables terse) -------------------------
  static LayerSpec conv(std::string name, int in_hw, int in_c, int out_c,
                        int kernel, int stride, int padding);
  static LayerSpec dwconv(std::string name, int in_hw, int channels,
                          int kernel, int stride, int padding);
  static LayerSpec dense(std::string name, int in_features, int out_features);
  static LayerSpec pool(std::string name, int in_hw, int channels, int kernel,
                        int stride);
  static LayerSpec global_pool(std::string name, int in_hw, int channels);
};

/// A whole network: an ordered list of layers plus aggregate queries.
struct ModelSpec {
  std::string name;
  std::vector<LayerSpec> layers;

  [[nodiscard]] std::uint64_t total_macs() const;
  [[nodiscard]] std::uint64_t total_weights() const;
  [[nodiscard]] std::uint64_t total_activations() const;
  /// Layers that actually multiply (conv/dense), i.e. map onto PEs.
  [[nodiscard]] int compute_layers() const;
  void validate() const;
};

}  // namespace trident::nn
