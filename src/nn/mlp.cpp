#include "nn/mlp.hpp"

#include <algorithm>
#include <cmath>
#include <optional>
#include <string>

#include "photonics/constants.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace trident::nn {

namespace {

/// Span name for one layer of a forward/backward pass ("mlp/forward/L2").
/// Only called when telemetry is enabled — the string is never built on the
/// disabled path.
[[nodiscard]] std::string layer_span_name(const char* pass, int layer) {
  return std::string("mlp/") + pass + "/L" + std::to_string(layer);
}

}  // namespace

void MatvecBackend::matvec_into(const Matrix& w, const Vector& x, Vector& y) {
  y = matvec(w, x);
}

void MatvecBackend::matvec_transposed_into(const Matrix& w, const Vector& x,
                                           Vector& y) {
  y = matvec_transposed(w, x);
}

Matrix MatvecBackend::matmul(const Matrix& w, const Matrix& x) {
  TRIDENT_REQUIRE(x.cols() == w.cols(), "matmul dimension mismatch");
  Matrix y(x.rows(), w.rows());
  // Both scratch vectors are hoisted out of the sample loop, and the output
  // goes through matvec_into so backends with an in-place override allocate
  // nothing per sample (the matvec_into base delegates to matvec, keeping
  // per-sample semantics — noise draws, ledger order — unchanged).
  Vector xb(w.cols());
  Vector yb(w.rows());
  for (std::size_t b = 0; b < x.rows(); ++b) {
    const auto row = x.row(b);
    std::copy(row.begin(), row.end(), xb.begin());
    matvec_into(w, xb, yb);
    std::copy(yb.begin(), yb.end(), y.row(b).begin());
  }
  return y;
}

Matrix MatvecBackend::matmul_transposed(const Matrix& w, const Matrix& x) {
  TRIDENT_REQUIRE(x.cols() == w.rows(), "transposed matmul dimension mismatch");
  Matrix y(x.rows(), w.cols());
  Vector xb(w.rows());
  Vector yb(w.cols());
  for (std::size_t b = 0; b < x.rows(); ++b) {
    const auto row = x.row(b);
    std::copy(row.begin(), row.end(), xb.begin());
    matvec_transposed_into(w, xb, yb);
    std::copy(yb.begin(), yb.end(), y.row(b).begin());
  }
  return y;
}

void MatvecBackend::update_batch(Matrix& w, const Matrix& dh,
                                 const Matrix& y_prev, double lr) {
  TRIDENT_REQUIRE(dh.rows() == y_prev.rows(), "update batch mismatch");
  TRIDENT_REQUIRE(dh.cols() == w.rows() && y_prev.cols() == w.cols(),
                  "update dimension mismatch");
  Vector dhb(w.rows());
  Vector yb(w.cols());
  for (std::size_t b = 0; b < dh.rows(); ++b) {
    const auto dhr = dh.row(b);
    const auto yr = y_prev.row(b);
    std::copy(dhr.begin(), dhr.end(), dhb.begin());
    std::copy(yr.begin(), yr.end(), yb.begin());
    rank1_update(w, dhb, yb, lr);
  }
}

Vector FloatBackend::matvec(const Matrix& w, const Vector& x) {
  return w.matvec(x);
}

Vector FloatBackend::matvec_transposed(const Matrix& w, const Vector& x) {
  return w.matvec_transposed(x);
}

void FloatBackend::rank1_update(Matrix& w, const Vector& dh,
                                const Vector& y_prev, double lr) {
  w.add_outer(dh, y_prev, -lr);
}

void FloatBackend::matvec_into(const Matrix& w, const Vector& x, Vector& y) {
  w.matvec_into(x, y);
}

void FloatBackend::matvec_transposed_into(const Matrix& w, const Vector& x,
                                          Vector& y) {
  w.matvec_transposed_into(x, y);
}

Matrix FloatBackend::matmul(const Matrix& w, const Matrix& x) {
  return w.matmul(x);
}

Matrix FloatBackend::matmul_transposed(const Matrix& w, const Matrix& x) {
  return w.matmul_transposed(x);
}

void FloatBackend::update_batch(Matrix& w, const Matrix& dh,
                                const Matrix& y_prev, double lr) {
  w.add_outer_batch(dh, y_prev, -lr);
}

Mlp::Mlp(std::vector<int> layer_sizes, Activation hidden, Rng& rng)
    : sizes_(std::move(layer_sizes)), hidden_(hidden) {
  TRIDENT_REQUIRE(sizes_.size() >= 2, "MLP needs at least input and output");
  for (int s : sizes_) {
    TRIDENT_REQUIRE(s >= 1, "layer sizes must be positive");
  }
  weights_.reserve(sizes_.size() - 1);
  for (std::size_t k = 0; k + 1 < sizes_.size(); ++k) {
    weights_.push_back(Matrix::xavier(static_cast<std::size_t>(sizes_[k + 1]),
                                      static_cast<std::size_t>(sizes_[k]),
                                      rng));
  }
}

const Matrix& Mlp::weight(int k) const {
  TRIDENT_REQUIRE(k >= 0 && k < depth(), "layer index out of range");
  return weights_[static_cast<std::size_t>(k)];
}

Matrix& Mlp::weight(int k) {
  TRIDENT_REQUIRE(k >= 0 && k < depth(), "layer index out of range");
  return weights_[static_cast<std::size_t>(k)];
}

ForwardTrace Mlp::forward(const Vector& x, MatvecBackend& backend) const {
  TRIDENT_REQUIRE(static_cast<int>(x.size()) == sizes_.front(),
                  "input size mismatch");
  ForwardTrace trace;
  trace.activations.reserve(static_cast<std::size_t>(depth()) + 1);
  trace.logits.reserve(static_cast<std::size_t>(depth()));
  trace.activations.push_back(x);
  for (int k = 0; k < depth(); ++k) {
    std::optional<telemetry::Span> span;
    if (telemetry::enabled()) {
      span.emplace(layer_span_name("forward", k), "nn");
    }
    // Activations and logits are filled in place inside the trace — the
    // training loop allocates nothing per layer beyond the trace itself.
    trace.logits.emplace_back();
    Vector& h = trace.logits.back();
    backend.matvec_into(weights_[static_cast<std::size_t>(k)],
                        trace.activations.back(), h);
    const bool is_output = (k == depth() - 1);
    const Activation act = is_output ? Activation::kIdentity : hidden_;
    trace.activations.emplace_back(h.size());
    Vector& y = trace.activations.back();
    for (std::size_t i = 0; i < h.size(); ++i) {
      y[i] = apply_activation(act, h[i]);
    }
  }
  return trace;
}

BatchForwardTrace Mlp::forward_batch(const Matrix& x,
                                     MatvecBackend& backend) const {
  TRIDENT_REQUIRE(static_cast<int>(x.cols()) == sizes_.front(),
                  "input size mismatch");
  BatchForwardTrace trace;
  trace.activations.reserve(static_cast<std::size_t>(depth()) + 1);
  trace.logits.reserve(static_cast<std::size_t>(depth()));
  trace.activations.push_back(x);
  for (int k = 0; k < depth(); ++k) {
    std::optional<telemetry::Span> span;
    if (telemetry::enabled()) {
      span.emplace(layer_span_name("forward_batch", k), "nn");
    }
    trace.logits.push_back(backend.matmul(weights_[static_cast<std::size_t>(k)],
                                          trace.activations.back()));
    const Matrix& h = trace.logits.back();
    const bool is_output = (k == depth() - 1);
    const Activation act = is_output ? Activation::kIdentity : hidden_;
    Matrix y(h.rows(), h.cols());
    for (std::size_t i = 0; i < h.data().size(); ++i) {
      y.data()[i] = apply_activation(act, h.data()[i]);
    }
    trace.activations.push_back(std::move(y));
  }
  return trace;
}

void Mlp::backward(const ForwardTrace& trace, const Vector& output_grad,
                   double learning_rate, MatvecBackend& backend) {
  TRIDENT_REQUIRE(static_cast<int>(trace.logits.size()) == depth(),
                  "trace does not match network depth");
  TRIDENT_REQUIRE(output_grad.size() == trace.logits.back().size(),
                  "output gradient size mismatch");

  // δh for the (linear) output layer is the loss gradient itself.  The two
  // gradient buffers are swapped between layers instead of reallocated.
  Vector dh = output_grad;
  Vector upstream;
  Vector deriv;
  for (int k = depth() - 1; k >= 0; --k) {
    std::optional<telemetry::Span> span;
    if (telemetry::enabled()) {
      span.emplace(layer_span_name("backward", k), "nn");
    }
    const auto uk = static_cast<std::size_t>(k);
    const Vector& y_prev = trace.activations[uk];

    // Weight update first (Eq. 2 needs this layer's δh and y_{k-1}), then
    // propagate δh to the previous layer using the *pre-update* weights —
    // matching standard backprop semantics, we compute the propagation
    // before applying the rank-1 update.
    if (k > 0) {
      // Eq. 3: δh_{k-1} = (W_kᵀ · δh_k) ⊙ f'(h_{k-1})
      backend.matvec_transposed_into(weights_[uk], dh, upstream);
      const Vector& h_prev = trace.logits[uk - 1];
      deriv.resize(h_prev.size());
      for (std::size_t i = 0; i < h_prev.size(); ++i) {
        deriv[i] = activation_derivative(hidden_, h_prev[i]);
      }
      hadamard_into(deriv, upstream);
    }

    // Eqs. 1-2: W_k ← W_k − β · δh_k · y_{k-1}ᵀ.
    backend.rank1_update(weights_[uk], dh, y_prev, learning_rate);

    std::swap(dh, upstream);
  }
}

void Mlp::backward_batch(const BatchForwardTrace& trace,
                         const Matrix& output_grad, double learning_rate,
                         MatvecBackend& backend) {
  TRIDENT_REQUIRE(static_cast<int>(trace.logits.size()) == depth(),
                  "trace does not match network depth");
  TRIDENT_REQUIRE(output_grad.rows() == trace.batch() &&
                      output_grad.cols() == trace.logits.back().cols(),
                  "output gradient shape mismatch");

  Matrix dh = output_grad;
  for (int k = depth() - 1; k >= 0; --k) {
    std::optional<telemetry::Span> span;
    if (telemetry::enabled()) {
      span.emplace(layer_span_name("backward_batch", k), "nn");
    }
    const auto uk = static_cast<std::size_t>(k);

    // Whole-block propagation through the pre-update weights, then the
    // per-sample updates in batch order (minibatch semantics: every sample
    // of the block sees the same weights on the way down).
    Matrix upstream;
    if (k > 0) {
      upstream = backend.matmul_transposed(weights_[uk], dh);
      const Matrix& h_prev = trace.logits[uk - 1];
      for (std::size_t i = 0; i < upstream.data().size(); ++i) {
        upstream.data()[i] *=
            activation_derivative(hidden_, h_prev.data()[i]);
      }
    }

    backend.update_batch(weights_[uk], dh, trace.activations[uk],
                         learning_rate);
    dh = std::move(upstream);
  }
}

Vector Mlp::predict(const Vector& x) const {
  FloatBackend backend;
  return forward(x, backend).activations.back();
}

Vector softmax(const Vector& logits) {
  TRIDENT_REQUIRE(!logits.empty(), "softmax of empty vector");
  const double m = *std::max_element(logits.begin(), logits.end());
  Vector out(logits.size());
  double denom = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    out[i] = std::exp(logits[i] - m);
    denom += out[i];
  }
  for (double& v : out) {
    v /= denom;
  }
  return out;
}

LossGrad softmax_cross_entropy(const Vector& logits, int label) {
  TRIDENT_REQUIRE(label >= 0 && label < static_cast<int>(logits.size()),
                  "label out of range");
  LossGrad lg;
  lg.grad = softmax(logits);
  const auto ul = static_cast<std::size_t>(label);
  lg.loss = -std::log(std::max(lg.grad[ul], 1e-12));
  lg.grad[ul] -= 1.0;
  return lg;
}

}  // namespace trident::nn
