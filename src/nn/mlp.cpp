#include "nn/mlp.hpp"

#include <algorithm>
#include <cmath>

#include "photonics/constants.hpp"

namespace trident::nn {

double apply_activation(Activation a, double h) {
  switch (a) {
    case Activation::kReLU:
      return h > 0.0 ? h : 0.0;
    case Activation::kGstPhotonic:
      return h > 0.0 ? phot::kActivationDerivativeHigh * h : 0.0;
    case Activation::kIdentity:
      return h;
  }
  return h;
}

double activation_derivative(Activation a, double h) {
  switch (a) {
    case Activation::kReLU:
      return h > 0.0 ? 1.0 : 0.0;
    case Activation::kGstPhotonic:
      return h > 0.0 ? phot::kActivationDerivativeHigh
                     : phot::kActivationDerivativeLow;
    case Activation::kIdentity:
      return 1.0;
  }
  return 1.0;
}

Vector FloatBackend::matvec(const Matrix& w, const Vector& x) {
  return w.matvec(x);
}

Vector FloatBackend::matvec_transposed(const Matrix& w, const Vector& x) {
  return w.matvec_transposed(x);
}

void FloatBackend::rank1_update(Matrix& w, const Vector& dh,
                                const Vector& y_prev, double lr) {
  w.add_outer(dh, y_prev, -lr);
}

Mlp::Mlp(std::vector<int> layer_sizes, Activation hidden, Rng& rng)
    : sizes_(std::move(layer_sizes)), hidden_(hidden) {
  TRIDENT_REQUIRE(sizes_.size() >= 2, "MLP needs at least input and output");
  for (int s : sizes_) {
    TRIDENT_REQUIRE(s >= 1, "layer sizes must be positive");
  }
  weights_.reserve(sizes_.size() - 1);
  for (std::size_t k = 0; k + 1 < sizes_.size(); ++k) {
    weights_.push_back(Matrix::xavier(static_cast<std::size_t>(sizes_[k + 1]),
                                      static_cast<std::size_t>(sizes_[k]),
                                      rng));
  }
}

const Matrix& Mlp::weight(int k) const {
  TRIDENT_REQUIRE(k >= 0 && k < depth(), "layer index out of range");
  return weights_[static_cast<std::size_t>(k)];
}

Matrix& Mlp::weight(int k) {
  TRIDENT_REQUIRE(k >= 0 && k < depth(), "layer index out of range");
  return weights_[static_cast<std::size_t>(k)];
}

ForwardTrace Mlp::forward(const Vector& x, MatvecBackend& backend) const {
  TRIDENT_REQUIRE(static_cast<int>(x.size()) == sizes_.front(),
                  "input size mismatch");
  ForwardTrace trace;
  trace.activations.push_back(x);
  Vector y = x;
  for (int k = 0; k < depth(); ++k) {
    Vector h = backend.matvec(weights_[static_cast<std::size_t>(k)], y);
    trace.logits.push_back(h);
    const bool is_output = (k == depth() - 1);
    const Activation act = is_output ? Activation::kIdentity : hidden_;
    y.resize(h.size());
    for (std::size_t i = 0; i < h.size(); ++i) {
      y[i] = apply_activation(act, h[i]);
    }
    trace.activations.push_back(y);
  }
  return trace;
}

void Mlp::backward(const ForwardTrace& trace, const Vector& output_grad,
                   double learning_rate, MatvecBackend& backend) {
  TRIDENT_REQUIRE(static_cast<int>(trace.logits.size()) == depth(),
                  "trace does not match network depth");
  TRIDENT_REQUIRE(output_grad.size() == trace.logits.back().size(),
                  "output gradient size mismatch");

  // δh for the (linear) output layer is the loss gradient itself.
  Vector dh = output_grad;
  for (int k = depth() - 1; k >= 0; --k) {
    const auto uk = static_cast<std::size_t>(k);
    const Vector& y_prev = trace.activations[uk];

    // Weight update first (Eq. 2 needs this layer's δh and y_{k-1}), then
    // propagate δh to the previous layer using the *pre-update* weights —
    // matching standard backprop semantics, we compute the propagation
    // before applying the rank-1 update.
    Vector upstream;
    if (k > 0) {
      // Eq. 3: δh_{k-1} = (W_kᵀ · δh_k) ⊙ f'(h_{k-1})
      upstream = backend.matvec_transposed(weights_[uk], dh);
      const Vector& h_prev = trace.logits[uk - 1];
      for (std::size_t i = 0; i < upstream.size(); ++i) {
        upstream[i] *= activation_derivative(hidden_, h_prev[i]);
      }
    }

    // Eqs. 1-2: W_k ← W_k − β · δh_k · y_{k-1}ᵀ.
    backend.rank1_update(weights_[uk], dh, y_prev, learning_rate);

    dh = std::move(upstream);
  }
}

Vector Mlp::predict(const Vector& x) const {
  FloatBackend backend;
  return forward(x, backend).activations.back();
}

Vector softmax(const Vector& logits) {
  TRIDENT_REQUIRE(!logits.empty(), "softmax of empty vector");
  const double m = *std::max_element(logits.begin(), logits.end());
  Vector out(logits.size());
  double denom = 0.0;
  for (std::size_t i = 0; i < logits.size(); ++i) {
    out[i] = std::exp(logits[i] - m);
    denom += out[i];
  }
  for (double& v : out) {
    v /= denom;
  }
  return out;
}

LossGrad softmax_cross_entropy(const Vector& logits, int label) {
  TRIDENT_REQUIRE(label >= 0 && label < static_cast<int>(logits.size()),
                  "label out of range");
  LossGrad lg;
  lg.grad = softmax(logits);
  const auto ul = static_cast<std::size_t>(label);
  lg.loss = -std::log(std::max(lg.grad[ul], 1e-12));
  lg.grad[ul] -= 1.0;
  return lg;
}

}  // namespace trident::nn
