// Plan-compiled execution runtime: compile an Mlp once, run it many times.
//
// The paper's dataflow is weight-stationary — GST cells hold the weights in
// place and activations stream through — so the natural serving shape is
// compile-once/run-many: everything derivable from the weights alone is
// hoisted out of the request path into an immutable ExecutionPlan:
//
//   * the ordered layer schedule with the fused activation epilogue per
//     layer (hidden activation for k < depth-1, identity for the output —
//     the LDSU firing pattern);
//   * pre-packed weight panels: the double panel (the exact tier), the
//     [-1, 1]-saturated panel the photonic tier multiplies with (legacy
//     matmul re-clamps a fresh copy per call), and the int8 level panel
//     the quantized tier streams through int8_gemm (legacy re-fingerprints
//     the weight buffer on every lookup);
//   * arena extents, so a PlanArena sized once at adoption serves every
//     later batch with zero steady-state heap allocation.
//
// Plans are immutable after construction and carry a process-wide monotone
// id, so concurrent replicas share one plan by shared_ptr and hot-swap is
// "publish a new plan", never "mutate the old one".  Execution dispatches
// to MatvecBackend::run_plan; backends without a fused path fall back to a
// per-op interpretation that issues exactly one matmul per layer — the
// same op sequence as Mlp::forward_batch, so decorated backends (chaos
// fault injection, counting shims) observe identical calls.
//
// Bit-identity contract (docs/performance.md): for a given backend and
// input block, Plan::run produces the same output bits, the same RNG draw
// sequence, and the same ledger counters as Mlp::forward_batch through the
// per-op path.
#pragma once

#include <cstdint>
#include <memory>
#include <vector>

#include "nn/matrix.hpp"
#include "nn/mlp.hpp"

namespace trident::nn {

struct PlanConfig {
  /// Grid of the packed int8 level panel (must be 1..8).  The quantized
  /// tier only takes its fused path when this matches its own weight grid;
  /// otherwise it interprets the plan per-op (still bit-exact).
  int weight_bits = 8;
};

/// One compiled layer: the schedule entry plus every pre-packed panel.
struct PlanLayer {
  Matrix weights;                   ///< exact double panel (rows × cols)
  Matrix clamped;                   ///< weights saturated to [-1, 1]
  std::vector<std::int8_t> levels;  ///< int8 level panel on the weight grid
  Activation activation = Activation::kIdentity;  ///< fused epilogue
  std::size_t rows = 0;
  std::size_t cols = 0;
};

class ExecutionPlan;

/// Per-replica scratch for plan runs.  All buffers are grow-only (Matrix
/// re-shapes inside the high-water mark never reallocate), so after the
/// first batch at the largest (model, batch) extent every later run
/// performs zero heap allocations.  One arena serves one backend at a
/// time — like backends themselves, arenas are single-threaded.
class PlanArena {
 public:
  PlanArena() = default;

  /// Grows every buffer to cover `plan` at `batch` samples.  No-op when the
  /// high-water extents already cover the request (the steady state).
  void ensure(const ExecutionPlan& plan, std::size_t batch);

  /// Output logits of the last run (batch × output_dim).
  [[nodiscard]] Matrix& out() { return out_; }
  [[nodiscard]] const Matrix& out() const { return out_; }

  /// Activation ping-pong buffer for layer `k` (parity-indexed so layer
  /// k's output never aliases layer k-1's input).
  [[nodiscard]] Matrix& act(int k) { return (k & 1) != 0 ? act_b_ : act_a_; }
  /// Quantized-input block (photonic tier DAC output).
  [[nodiscard]] Matrix& quantized() { return quantized_; }
  /// Per-sample DAC scales.
  [[nodiscard]] Vector& scale() { return scale_; }
  /// Per-sample normalised row (quantized tier staging).
  [[nodiscard]] Vector& scratch() { return scratch_; }
  /// int8 input levels (batch × max_width).
  [[nodiscard]] std::vector<std::int8_t>& int8_input() { return int8_; }
  /// int32 GEMM accumulators (batch × max_width).
  [[nodiscard]] std::vector<std::int32_t>& int32_acc() { return acc_; }

 private:
  std::size_t batch_hw_ = 0;  ///< high-water batch extent
  std::size_t width_hw_ = 0;  ///< high-water layer width extent
  Matrix out_;
  Matrix act_a_;
  Matrix act_b_;
  Matrix quantized_;
  Vector scale_;
  Vector scratch_;
  std::vector<std::int8_t> int8_;
  std::vector<std::int32_t> acc_;
};

/// Immutable compiled form of one Mlp.  Compile once (off the request
/// path), share by shared_ptr, run concurrently from any number of
/// replicas — each with its own backend and arena.
class ExecutionPlan {
 public:
  explicit ExecutionPlan(const Mlp& model, const PlanConfig& config = {});

  /// Compile to the sharing-friendly form serving/fleet pass around.
  [[nodiscard]] static std::shared_ptr<const ExecutionPlan> compile(
      const Mlp& model, const PlanConfig& config = {});

  /// Process-wide monotone plan id: every compiled plan gets a fresh one,
  /// so "same id" means "same immutable panels" (canary promotion reuses
  /// the candidate's plan — same id — instead of re-deriving it).
  [[nodiscard]] std::uint64_t id() const { return id_; }
  [[nodiscard]] const PlanConfig& config() const { return config_; }

  [[nodiscard]] int depth() const { return static_cast<int>(layers_.size()); }
  [[nodiscard]] const std::vector<int>& layer_sizes() const { return sizes_; }
  [[nodiscard]] Activation hidden_activation() const { return hidden_; }
  [[nodiscard]] const PlanLayer& layer(int k) const;
  [[nodiscard]] std::size_t input_dim() const {
    return static_cast<std::size_t>(sizes_.front());
  }
  [[nodiscard]] std::size_t output_dim() const {
    return static_cast<std::size_t>(sizes_.back());
  }
  /// Widest layer boundary (including the input) — the arena row extent.
  [[nodiscard]] std::size_t max_width() const { return max_width_; }

  /// Architecture check: true when `model` has the layer sizes and hidden
  /// activation this plan was compiled from.  (Weight VALUES are not
  /// compared — the caller owns the "this plan came from this model"
  /// pairing, which is what the versioned publish path guarantees.)
  [[nodiscard]] bool matches(const Mlp& model) const;

  /// Runs the whole model on `x` (batch × input_dim) through `backend`,
  /// returning the logits block living in `arena.out()`.  Dispatches to
  /// the backend's fused run_plan; backends without one are interpreted
  /// per-op (one matmul per layer, the Mlp::forward_batch op sequence).
  /// Outputs, RNG draws, and ledger counters are bit-identical to
  /// Mlp::forward_batch on the same backend either way.
  const Matrix& run(MatvecBackend& backend, const Matrix& x,
                    PlanArena& arena) const;

 private:
  void run_interpreted(MatvecBackend& backend, const Matrix& x,
                       PlanArena& arena) const;

  std::uint64_t id_ = 0;
  PlanConfig config_;
  std::vector<int> sizes_;
  Activation hidden_ = Activation::kIdentity;
  std::vector<PlanLayer> layers_;
  std::size_t max_width_ = 0;
};

}  // namespace trident::nn
