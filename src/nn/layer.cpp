#include "nn/layer.hpp"

namespace trident::nn {

std::uint64_t LayerSpec::macs() const {
  const auto oh = static_cast<std::uint64_t>(out_h());
  const auto ow = static_cast<std::uint64_t>(out_w());
  switch (type) {
    case LayerType::kConv: {
      const std::uint64_t per_output =
          static_cast<std::uint64_t>(kernel) * static_cast<std::uint64_t>(kernel) *
          static_cast<std::uint64_t>(in_c) / static_cast<std::uint64_t>(groups);
      return oh * ow * static_cast<std::uint64_t>(out_c) * per_output;
    }
    case LayerType::kDepthwiseConv: {
      return oh * ow * static_cast<std::uint64_t>(in_c) *
             static_cast<std::uint64_t>(kernel) *
             static_cast<std::uint64_t>(kernel);
    }
    case LayerType::kDense:
      return static_cast<std::uint64_t>(in_c) *
             static_cast<std::uint64_t>(out_c);
    case LayerType::kPool:
    case LayerType::kGlobalPool:
      return 0;
  }
  return 0;
}

std::uint64_t LayerSpec::weights() const {
  switch (type) {
    case LayerType::kConv:
      return static_cast<std::uint64_t>(kernel) *
             static_cast<std::uint64_t>(kernel) *
             (static_cast<std::uint64_t>(in_c) /
              static_cast<std::uint64_t>(groups)) *
             static_cast<std::uint64_t>(out_c);
    case LayerType::kDepthwiseConv:
      return static_cast<std::uint64_t>(kernel) *
             static_cast<std::uint64_t>(kernel) *
             static_cast<std::uint64_t>(in_c);
    case LayerType::kDense:
      return static_cast<std::uint64_t>(in_c) *
             static_cast<std::uint64_t>(out_c);
    case LayerType::kPool:
    case LayerType::kGlobalPool:
      return 0;
  }
  return 0;
}

void LayerSpec::validate() const {
  TRIDENT_REQUIRE(in_h >= 1 && in_w >= 1 && in_c >= 1 && out_c >= 1,
                  "layer dimensions must be positive: " + name);
  TRIDENT_REQUIRE(kernel >= 1 && stride >= 1 && padding >= 0,
                  "kernel geometry invalid: " + name);
  TRIDENT_REQUIRE(groups >= 1 && in_c % groups == 0 && out_c % groups == 0,
                  "groups must divide channel counts: " + name);
  TRIDENT_REQUIRE(out_h() >= 1 && out_w() >= 1,
                  "kernel/stride/padding produce empty output: " + name);
  if (type == LayerType::kDepthwiseConv) {
    TRIDENT_REQUIRE(in_c == out_c, "depthwise conv must preserve channels: " + name);
  }
  if (type == LayerType::kDense) {
    TRIDENT_REQUIRE(in_h == 1 && in_w == 1,
                    "dense layers use in_c/out_c as features: " + name);
  }
}

LayerSpec LayerSpec::conv(std::string name, int in_hw, int in_c, int out_c,
                          int kernel, int stride, int padding) {
  LayerSpec l;
  l.name = std::move(name);
  l.type = LayerType::kConv;
  l.in_h = l.in_w = in_hw;
  l.in_c = in_c;
  l.out_c = out_c;
  l.kernel = kernel;
  l.stride = stride;
  l.padding = padding;
  return l;
}

LayerSpec LayerSpec::dwconv(std::string name, int in_hw, int channels,
                            int kernel, int stride, int padding) {
  LayerSpec l;
  l.name = std::move(name);
  l.type = LayerType::kDepthwiseConv;
  l.in_h = l.in_w = in_hw;
  l.in_c = l.out_c = channels;
  l.kernel = kernel;
  l.stride = stride;
  l.padding = padding;
  l.groups = channels;
  return l;
}

LayerSpec LayerSpec::dense(std::string name, int in_features,
                           int out_features) {
  LayerSpec l;
  l.name = std::move(name);
  l.type = LayerType::kDense;
  l.in_h = l.in_w = 1;
  l.in_c = in_features;
  l.out_c = out_features;
  return l;
}

LayerSpec LayerSpec::pool(std::string name, int in_hw, int channels,
                          int kernel, int stride) {
  LayerSpec l;
  l.name = std::move(name);
  l.type = LayerType::kPool;
  l.in_h = l.in_w = in_hw;
  l.in_c = l.out_c = channels;
  l.kernel = kernel;
  l.stride = stride;
  l.has_activation = false;
  return l;
}

LayerSpec LayerSpec::global_pool(std::string name, int in_hw, int channels) {
  LayerSpec l;
  l.name = std::move(name);
  l.type = LayerType::kGlobalPool;
  l.in_h = l.in_w = in_hw;
  l.in_c = l.out_c = channels;
  l.kernel = in_hw;
  l.stride = in_hw;
  l.has_activation = false;
  return l;
}

std::uint64_t ModelSpec::total_macs() const {
  std::uint64_t total = 0;
  for (const auto& l : layers) {
    total += l.macs();
  }
  return total;
}

std::uint64_t ModelSpec::total_weights() const {
  std::uint64_t total = 0;
  for (const auto& l : layers) {
    total += l.weights();
  }
  return total;
}

std::uint64_t ModelSpec::total_activations() const {
  std::uint64_t total = 0;
  for (const auto& l : layers) {
    total += l.activations();
  }
  return total;
}

int ModelSpec::compute_layers() const {
  int n = 0;
  for (const auto& l : layers) {
    if (l.macs() > 0) {
      ++n;
    }
  }
  return n;
}

void ModelSpec::validate() const {
  TRIDENT_REQUIRE(!layers.empty(), "model has no layers: " + name);
  for (const auto& l : layers) {
    l.validate();
  }
}

}  // namespace trident::nn
