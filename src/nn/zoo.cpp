#include "nn/zoo.hpp"

#include <algorithm>
#include <string>

#include "common/error.hpp"

namespace trident::nn::zoo {

namespace {

using L = LayerSpec;

/// Appends one GoogLeNet inception module.  `hw` is the spatial size, `in_c`
/// the input channels; the four branches are 1×1, 1×1→3×3, 1×1→5×5, and
/// 3×3-maxpool→1×1 projection.
void inception(std::vector<LayerSpec>& layers, const std::string& name, int hw,
               int in_c, int c1x1, int c3x3_red, int c3x3, int c5x5_red,
               int c5x5, int pool_proj) {
  layers.push_back(L::conv(name + "/1x1", hw, in_c, c1x1, 1, 1, 0));
  layers.push_back(L::conv(name + "/3x3_reduce", hw, in_c, c3x3_red, 1, 1, 0));
  layers.push_back(L::conv(name + "/3x3", hw, c3x3_red, c3x3, 3, 1, 1));
  layers.push_back(L::conv(name + "/5x5_reduce", hw, in_c, c5x5_red, 1, 1, 0));
  layers.push_back(L::conv(name + "/5x5", hw, c5x5_red, c5x5, 5, 1, 2));
  layers.push_back(L::pool(name + "/pool", hw, in_c, 3, 1));
  layers.push_back(L::conv(name + "/pool_proj", hw, in_c, pool_proj, 1, 1, 0));
}

/// Appends one ResNet-50 bottleneck block (1×1 reduce, 3×3, 1×1 expand);
/// `stride` applies to the first 1×1 (ResNet v1 convention).  When the
/// block changes channels or strides, a 1×1 projection shortcut is added.
void bottleneck(std::vector<LayerSpec>& layers, const std::string& name,
                int hw, int in_c, int mid_c, int out_c, int stride) {
  layers.push_back(L::conv(name + "/conv1", hw, in_c, mid_c, 1, stride, 0));
  const int hw2 = (hw - 1) / stride + 1;
  layers.push_back(L::conv(name + "/conv2", hw2, mid_c, mid_c, 3, 1, 1));
  layers.push_back(L::conv(name + "/conv3", hw2, mid_c, out_c, 1, 1, 0));
  if (in_c != out_c || stride != 1) {
    layers.push_back(
        L::conv(name + "/shortcut", hw, in_c, out_c, 1, stride, 0));
  }
}

/// Appends one MobileNetV2 inverted-residual block: optional 1×1 expansion
/// (factor t), 3×3 depthwise (stride s), 1×1 linear projection (no ReLU).
void inverted_residual(std::vector<LayerSpec>& layers, const std::string& name,
                       int hw, int in_c, int out_c, int t, int stride) {
  const int expanded = in_c * t;
  if (t != 1) {
    layers.push_back(L::conv(name + "/expand", hw, in_c, expanded, 1, 1, 0));
  }
  layers.push_back(L::dwconv(name + "/dw", hw, expanded, 3, stride, 1));
  const int hw2 = (hw + 2 - 3) / stride + 1;
  LayerSpec proj = L::conv(name + "/project", hw2, expanded, out_c, 1, 1, 0);
  proj.has_activation = false;  // linear bottleneck
  layers.push_back(proj);
}

}  // namespace

ModelSpec alexnet() {
  ModelSpec m;
  m.name = "AlexNet";
  auto& v = m.layers;
  v.push_back(L::conv("conv1", 224, 3, 96, 11, 4, 2));    // -> 55
  v.push_back(L::pool("pool1", 55, 96, 3, 2));            // -> 27
  LayerSpec conv2 = L::conv("conv2", 27, 96, 256, 5, 1, 2);  // -> 27
  conv2.groups = 2;  // AlexNet's historical dual-GPU split
  v.push_back(conv2);
  v.push_back(L::pool("pool2", 27, 256, 3, 2));           // -> 13
  v.push_back(L::conv("conv3", 13, 256, 384, 3, 1, 1));
  LayerSpec conv4 = L::conv("conv4", 13, 384, 384, 3, 1, 1);
  conv4.groups = 2;
  v.push_back(conv4);
  LayerSpec conv5 = L::conv("conv5", 13, 384, 256, 3, 1, 1);
  conv5.groups = 2;
  v.push_back(conv5);
  v.push_back(L::pool("pool5", 13, 256, 3, 2));           // -> 6
  v.push_back(L::dense("fc6", 6 * 6 * 256, 4096));
  v.push_back(L::dense("fc7", 4096, 4096));
  LayerSpec fc8 = L::dense("fc8", 4096, 1000);
  fc8.has_activation = false;
  v.push_back(fc8);
  m.validate();
  return m;
}

ModelSpec lenet5() {
  ModelSpec m;
  m.name = "LeNet-5";
  auto& v = m.layers;
  v.push_back(L::conv("conv1", 28, 1, 6, 5, 1, 2));   // -> 28
  v.push_back(L::pool("pool1", 28, 6, 2, 2));         // -> 14
  v.push_back(L::conv("conv2", 14, 6, 16, 5, 1, 0));  // -> 10
  v.push_back(L::pool("pool2", 10, 16, 2, 2));        // -> 5
  v.push_back(L::dense("fc1", 5 * 5 * 16, 120));
  v.push_back(L::dense("fc2", 120, 84));
  LayerSpec fc3 = L::dense("fc3", 84, 10);
  fc3.has_activation = false;
  v.push_back(fc3);
  m.validate();
  return m;
}

ModelSpec vgg16() {
  ModelSpec m;
  m.name = "VGG-16";
  auto& v = m.layers;
  v.push_back(L::conv("conv1_1", 224, 3, 64, 3, 1, 1));
  v.push_back(L::conv("conv1_2", 224, 64, 64, 3, 1, 1));
  v.push_back(L::pool("pool1", 224, 64, 2, 2));  // -> 112
  v.push_back(L::conv("conv2_1", 112, 64, 128, 3, 1, 1));
  v.push_back(L::conv("conv2_2", 112, 128, 128, 3, 1, 1));
  v.push_back(L::pool("pool2", 112, 128, 2, 2));  // -> 56
  v.push_back(L::conv("conv3_1", 56, 128, 256, 3, 1, 1));
  v.push_back(L::conv("conv3_2", 56, 256, 256, 3, 1, 1));
  v.push_back(L::conv("conv3_3", 56, 256, 256, 3, 1, 1));
  v.push_back(L::pool("pool3", 56, 256, 2, 2));  // -> 28
  v.push_back(L::conv("conv4_1", 28, 256, 512, 3, 1, 1));
  v.push_back(L::conv("conv4_2", 28, 512, 512, 3, 1, 1));
  v.push_back(L::conv("conv4_3", 28, 512, 512, 3, 1, 1));
  v.push_back(L::pool("pool4", 28, 512, 2, 2));  // -> 14
  v.push_back(L::conv("conv5_1", 14, 512, 512, 3, 1, 1));
  v.push_back(L::conv("conv5_2", 14, 512, 512, 3, 1, 1));
  v.push_back(L::conv("conv5_3", 14, 512, 512, 3, 1, 1));
  v.push_back(L::pool("pool5", 14, 512, 2, 2));  // -> 7
  v.push_back(L::dense("fc6", 7 * 7 * 512, 4096));
  v.push_back(L::dense("fc7", 4096, 4096));
  LayerSpec fc8 = L::dense("fc8", 4096, 1000);
  fc8.has_activation = false;
  v.push_back(fc8);
  m.validate();
  return m;
}

ModelSpec googlenet() {
  ModelSpec m;
  m.name = "GoogleNet";
  auto& v = m.layers;
  v.push_back(L::conv("conv1", 224, 3, 64, 7, 2, 3));  // -> 112
  v.push_back(L::pool("pool1", 112, 64, 3, 2));        // -> 56 (ceil ~55)
  v.push_back(L::conv("conv2_reduce", 55, 64, 64, 1, 1, 0));
  v.push_back(L::conv("conv2", 55, 64, 192, 3, 1, 1));
  v.push_back(L::pool("pool2", 55, 192, 3, 2));  // -> 27 (~28)
  inception(v, "3a", 27, 192, 64, 96, 128, 16, 32, 32);    // out 256
  inception(v, "3b", 27, 256, 128, 128, 192, 32, 96, 64);  // out 480
  v.push_back(L::pool("pool3", 27, 480, 3, 2));            // -> 13 (~14)
  inception(v, "4a", 13, 480, 192, 96, 208, 16, 48, 64);     // 512
  inception(v, "4b", 13, 512, 160, 112, 224, 24, 64, 64);    // 512
  inception(v, "4c", 13, 512, 128, 128, 256, 24, 64, 64);    // 512
  inception(v, "4d", 13, 512, 112, 144, 288, 32, 64, 64);    // 528
  inception(v, "4e", 13, 528, 256, 160, 320, 32, 128, 128);  // 832
  v.push_back(L::pool("pool4", 13, 832, 3, 2));              // -> 6 (~7)
  inception(v, "5a", 6, 832, 256, 160, 320, 32, 128, 128);   // 832
  inception(v, "5b", 6, 832, 384, 192, 384, 48, 128, 128);   // 1024
  v.push_back(L::global_pool("gpool", 6, 1024));
  LayerSpec fc = L::dense("fc", 1024, 1000);
  fc.has_activation = false;
  v.push_back(fc);
  m.validate();
  return m;
}

ModelSpec resnet50() {
  ModelSpec m;
  m.name = "ResNet-50";
  auto& v = m.layers;
  v.push_back(L::conv("conv1", 224, 3, 64, 7, 2, 3));  // -> 112
  v.push_back(L::pool("pool1", 112, 64, 3, 2));        // -> 55 (~56)
  // Stage 2: 3 × [64, 64, 256] @56
  bottleneck(v, "res2a", 55, 64, 64, 256, 1);
  bottleneck(v, "res2b", 55, 256, 64, 256, 1);
  bottleneck(v, "res2c", 55, 256, 64, 256, 1);
  // Stage 3: 4 × [128, 128, 512] @28
  bottleneck(v, "res3a", 55, 256, 128, 512, 2);
  bottleneck(v, "res3b", 28, 512, 128, 512, 1);
  bottleneck(v, "res3c", 28, 512, 128, 512, 1);
  bottleneck(v, "res3d", 28, 512, 128, 512, 1);
  // Stage 4: 6 × [256, 256, 1024] @14
  bottleneck(v, "res4a", 28, 512, 256, 1024, 2);
  bottleneck(v, "res4b", 14, 1024, 256, 1024, 1);
  bottleneck(v, "res4c", 14, 1024, 256, 1024, 1);
  bottleneck(v, "res4d", 14, 1024, 256, 1024, 1);
  bottleneck(v, "res4e", 14, 1024, 256, 1024, 1);
  bottleneck(v, "res4f", 14, 1024, 256, 1024, 1);
  // Stage 5: 3 × [512, 512, 2048] @7
  bottleneck(v, "res5a", 14, 1024, 512, 2048, 2);
  bottleneck(v, "res5b", 7, 2048, 512, 2048, 1);
  bottleneck(v, "res5c", 7, 2048, 512, 2048, 1);
  v.push_back(L::global_pool("gpool", 7, 2048));
  LayerSpec fc = L::dense("fc", 2048, 1000);
  fc.has_activation = false;
  v.push_back(fc);
  m.validate();
  return m;
}

ModelSpec mobilenet_v2() {
  ModelSpec m;
  m.name = "MobileNetV2";
  auto& v = m.layers;
  v.push_back(L::conv("conv1", 224, 3, 32, 3, 2, 1));  // -> 112
  inverted_residual(v, "block1", 112, 32, 16, 1, 1);
  inverted_residual(v, "block2_1", 112, 16, 24, 6, 2);  // -> 56
  inverted_residual(v, "block2_2", 56, 24, 24, 6, 1);
  inverted_residual(v, "block3_1", 56, 24, 32, 6, 2);  // -> 28
  inverted_residual(v, "block3_2", 28, 32, 32, 6, 1);
  inverted_residual(v, "block3_3", 28, 32, 32, 6, 1);
  inverted_residual(v, "block4_1", 28, 32, 64, 6, 2);  // -> 14
  inverted_residual(v, "block4_2", 14, 64, 64, 6, 1);
  inverted_residual(v, "block4_3", 14, 64, 64, 6, 1);
  inverted_residual(v, "block4_4", 14, 64, 64, 6, 1);
  inverted_residual(v, "block5_1", 14, 64, 96, 6, 1);
  inverted_residual(v, "block5_2", 14, 96, 96, 6, 1);
  inverted_residual(v, "block5_3", 14, 96, 96, 6, 1);
  inverted_residual(v, "block6_1", 14, 96, 160, 6, 2);  // -> 7
  inverted_residual(v, "block6_2", 7, 160, 160, 6, 1);
  inverted_residual(v, "block6_3", 7, 160, 160, 6, 1);
  inverted_residual(v, "block7", 7, 160, 320, 6, 1);
  v.push_back(L::conv("conv_last", 7, 320, 1280, 1, 1, 0));
  v.push_back(L::global_pool("gpool", 7, 1280));
  LayerSpec fc = L::dense("fc", 1280, 1000);
  fc.has_activation = false;
  v.push_back(fc);
  m.validate();
  return m;
}

std::vector<ModelSpec> evaluation_models() {
  return {googlenet(), mobilenet_v2(), vgg16(), alexnet(), resnet50()};
}

Mlp surrogate_mlp(const ModelSpec& spec, const SurrogateConfig& config) {
  TRIDENT_REQUIRE(config.max_width >= 4, "surrogate width cap too small");
  TRIDENT_REQUIRE(config.max_hidden_layers >= 1,
                  "surrogate needs at least one compute layer");

  // Compute-layer silhouette: the out_c sequence of every layer that
  // actually multiplies, evenly subsampled down to the cap.
  std::vector<const LayerSpec*> compute;
  for (const LayerSpec& l : spec.layers) {
    if (l.weights() > 0) {
      compute.push_back(&l);
    }
  }
  TRIDENT_REQUIRE(!compute.empty(), "model spec has no compute layers");

  const auto cap = [&config](std::uint64_t v) {
    return static_cast<int>(
        std::clamp<std::uint64_t>(v, 4,
                                  static_cast<std::uint64_t>(config.max_width)));
  };

  std::vector<int> sizes;
  sizes.push_back(cap(compute.front()->inputs()));
  const std::size_t picks = std::min<std::size_t>(
      compute.size(), static_cast<std::size_t>(config.max_hidden_layers) + 1);
  for (std::size_t i = 0; i < picks; ++i) {
    // Even subsample that always keeps the first and last compute layer.
    const std::size_t idx =
        picks == 1 ? compute.size() - 1
                   : i * (compute.size() - 1) / (picks - 1);
    sizes.push_back(cap(static_cast<std::uint64_t>(compute[idx]->out_c)));
  }

  // Per-model seed so every surrogate draws distinct (but reproducible)
  // weights even under the same base seed.
  std::uint64_t seed = config.seed ^ 0x9e3779b97f4a7c15ULL;
  for (char ch : spec.name) {
    seed = (seed ^ static_cast<std::uint64_t>(static_cast<unsigned char>(ch))) *
           1099511628211ULL;
  }
  Rng rng(seed);
  return Mlp(std::move(sizes), Activation::kReLU, rng);
}

std::vector<ModelSpec> training_models() {
  return {mobilenet_v2(), googlenet(), resnet50(), vgg16()};
}

}  // namespace trident::nn::zoo
