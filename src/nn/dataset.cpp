#include "nn/dataset.hpp"

#include <algorithm>
#include <cmath>
#include <numbers>
#include <numeric>

#include "common/error.hpp"

namespace trident::nn {

void Dataset::validate() const {
  TRIDENT_REQUIRE(inputs.size() == labels.size(),
                  "inputs/labels size mismatch");
  TRIDENT_REQUIRE(features >= 1 && classes >= 2, "dataset shape invalid");
  for (const auto& x : inputs) {
    TRIDENT_REQUIRE(static_cast<int>(x.size()) == features,
                    "sample feature size mismatch");
  }
  for (int y : labels) {
    TRIDENT_REQUIRE(y >= 0 && y < classes, "label out of range");
  }
}

void Dataset::shuffle(Rng& rng) {
  std::vector<std::size_t> perm(inputs.size());
  std::iota(perm.begin(), perm.end(), std::size_t{0});
  std::shuffle(perm.begin(), perm.end(), rng.engine());
  std::vector<Vector> new_inputs(inputs.size());
  std::vector<int> new_labels(labels.size());
  for (std::size_t i = 0; i < perm.size(); ++i) {
    new_inputs[i] = std::move(inputs[perm[i]]);
    new_labels[i] = labels[perm[i]];
  }
  inputs = std::move(new_inputs);
  labels = std::move(new_labels);
}

std::pair<Dataset, Dataset> Dataset::split(double fraction) const {
  TRIDENT_REQUIRE(fraction > 0.0 && fraction < 1.0,
                  "split fraction must be in (0, 1)");
  const auto held = static_cast<std::size_t>(
      std::round(fraction * static_cast<double>(size())));
  TRIDENT_REQUIRE(held >= 1 && held < size(), "split produces empty part");
  Dataset train, test;
  train.features = test.features = features;
  train.classes = test.classes = classes;
  const std::size_t cut = size() - held;
  train.inputs.assign(inputs.begin(), inputs.begin() + static_cast<long>(cut));
  train.labels.assign(labels.begin(), labels.begin() + static_cast<long>(cut));
  test.inputs.assign(inputs.begin() + static_cast<long>(cut), inputs.end());
  test.labels.assign(labels.begin() + static_cast<long>(cut), labels.end());
  return {std::move(train), std::move(test)};
}

void Dataset::augment_bias() {
  for (auto& x : inputs) {
    x.push_back(1.0);
  }
  ++features;
}

Dataset two_moons(int samples, double noise, Rng& rng) {
  TRIDENT_REQUIRE(samples >= 2, "need at least two samples");
  TRIDENT_REQUIRE(noise >= 0.0, "noise must be non-negative");
  Dataset d;
  d.features = 2;
  d.classes = 2;
  d.inputs.reserve(static_cast<std::size_t>(samples));
  d.labels.reserve(static_cast<std::size_t>(samples));
  for (int i = 0; i < samples; ++i) {
    const int label = i % 2;
    const double t = rng.uniform(0.0, std::numbers::pi);
    double x, y;
    if (label == 0) {
      x = std::cos(t);
      y = std::sin(t);
    } else {
      x = 1.0 - std::cos(t);
      y = 0.5 - std::sin(t);
    }
    x += rng.normal(0.0, noise);
    y += rng.normal(0.0, noise);
    d.inputs.push_back({x, y});
    d.labels.push_back(label);
  }
  d.validate();
  return d;
}

Dataset gaussian_blobs(int samples, int classes, int features,
                       double separation, double noise, Rng& rng) {
  TRIDENT_REQUIRE(classes >= 2 && features >= 1, "blob shape invalid");
  TRIDENT_REQUIRE(noise >= 0.0 && separation > 0.0, "blob scales invalid");
  // Random unit-ish centers scaled by `separation`.
  std::vector<Vector> centers(static_cast<std::size_t>(classes));
  for (auto& c : centers) {
    c.resize(static_cast<std::size_t>(features));
    for (double& v : c) {
      v = rng.normal(0.0, separation);
    }
  }
  Dataset d;
  d.features = features;
  d.classes = classes;
  for (int i = 0; i < samples; ++i) {
    const int label = i % classes;
    Vector x = centers[static_cast<std::size_t>(label)];
    for (double& v : x) {
      v += rng.normal(0.0, noise);
    }
    d.inputs.push_back(std::move(x));
    d.labels.push_back(label);
  }
  d.validate();
  return d;
}

Dataset pattern_classes(int samples, int classes, int features,
                        double flip_probability, Rng& rng) {
  TRIDENT_REQUIRE(classes >= 2 && features >= 1, "pattern shape invalid");
  TRIDENT_REQUIRE(flip_probability >= 0.0 && flip_probability < 0.5,
                  "flip probability must be in [0, 0.5)");
  std::vector<Vector> templates(static_cast<std::size_t>(classes));
  for (auto& t : templates) {
    t.resize(static_cast<std::size_t>(features));
    for (double& v : t) {
      v = rng.bernoulli(0.5) ? 1.0 : 0.0;
    }
  }
  Dataset d;
  d.features = features;
  d.classes = classes;
  for (int i = 0; i < samples; ++i) {
    const int label = i % classes;
    Vector x = templates[static_cast<std::size_t>(label)];
    for (double& v : x) {
      if (rng.bernoulli(flip_probability)) {
        v = 1.0 - v;
      }
    }
    d.inputs.push_back(std::move(x));
    d.labels.push_back(label);
  }
  d.validate();
  return d;
}

}  // namespace trident::nn
