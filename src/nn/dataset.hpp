// Synthetic datasets for the functional in-situ-training demonstrations.
//
// The paper trains on standard image corpora we cannot ship; the training
// *mechanics* (does 8-bit in-situ backprop converge? does 6-bit?) are what
// the functional simulation must exercise, and for that any separable /
// non-linearly-separable classification task works (see DESIGN.md §2).
#pragma once

#include <vector>

#include "common/rng.hpp"
#include "nn/matrix.hpp"

namespace trident::nn {

struct Dataset {
  std::vector<Vector> inputs;
  std::vector<int> labels;
  int features = 0;
  int classes = 0;

  [[nodiscard]] std::size_t size() const { return inputs.size(); }
  void validate() const;

  /// Deterministic shuffle (epoch reordering).
  void shuffle(Rng& rng);

  /// Split off the last `fraction` of samples as a held-out set.
  [[nodiscard]] std::pair<Dataset, Dataset> split(double fraction) const;

  /// Appends a constant-1 feature to every sample (the classic bias trick:
  /// the Mlp has no separate bias terms, mirroring a weight-bank-only PE,
  /// so shifts are learned through an always-on input wavelength).
  void augment_bias();
};

/// Two interleaving half-circles — not linearly separable, the classic
/// smoke test that a *non-linear* activation is actually doing work.
[[nodiscard]] Dataset two_moons(int samples, double noise, Rng& rng);

/// `classes` isotropic Gaussian blobs in `features` dimensions.
[[nodiscard]] Dataset gaussian_blobs(int samples, int classes, int features,
                                     double separation, double noise, Rng& rng);

/// Digit-like task: `classes` random binary templates of `features` pixels;
/// samples are templates with pixel-flip noise.  Mimics small-image
/// classification without shipping image data.
[[nodiscard]] Dataset pattern_classes(int samples, int classes, int features,
                                      double flip_probability, Rng& rng);

}  // namespace trident::nn
