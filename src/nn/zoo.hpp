// Canonical layer tables of the CNN workloads evaluated in the paper (§IV):
// AlexNet, VGG-16, GoogleNet (Inception v1), ResNet-50, and MobileNetV2,
// all taking 224×224×3 inputs.  These descriptors drive the per-layer
// dataflow analysis; no trained weights are involved (see DESIGN.md §2).
#pragma once

#include <cstdint>
#include <vector>

#include "nn/layer.hpp"
#include "nn/mlp.hpp"

namespace trident::nn::zoo {

[[nodiscard]] ModelSpec alexnet();

/// LeNet-5 (28×28×1): the classic small CNN — the scale at which the
/// §III.A one-PE-per-layer pipeline and weight residency actually apply
/// (used by the pipelining and power-profile studies, not by the paper's
/// evaluation set).
[[nodiscard]] ModelSpec lenet5();
[[nodiscard]] ModelSpec vgg16();
[[nodiscard]] ModelSpec googlenet();
[[nodiscard]] ModelSpec resnet50();
[[nodiscard]] ModelSpec mobilenet_v2();

/// The five models in the paper's evaluation order.
[[nodiscard]] std::vector<ModelSpec> evaluation_models();

/// Shape parameters for `surrogate_mlp` — caps keep the dense surrogate
/// test-sized while preserving the spec's depth/width silhouette.
struct SurrogateConfig {
  int max_width = 96;         ///< widest layer the surrogate may use
  int max_hidden_layers = 6;  ///< compute layers sampled from the spec
  std::uint64_t seed = 0x5eedULL;
};

/// Deterministic dense Mlp surrogate of an analytic model spec, for tests
/// that need executable weights (e.g. the fast-vs-exact equivalence suite):
/// layer widths follow the spec's compute-layer silhouette (clamped to
/// `max_width`), Xavier-initialised from a seed derived from the model
/// name, ReLU hidden activations.  The same spec + config always yields
/// bit-identical weights.
[[nodiscard]] Mlp surrogate_mlp(const ModelSpec& spec,
                                const SurrogateConfig& config = {});

/// The four models of Table V (training-time comparison).
[[nodiscard]] std::vector<ModelSpec> training_models();

}  // namespace trident::nn::zoo
