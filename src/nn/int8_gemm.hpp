// Integer GEMM kernels for the quantized inference tier.
//
// The photonic hardware computes with 8-bit quantities by construction:
// GST cells store one of 255 transmission levels, the modulator DAC emits
// 8-bit symbols.  The quantized tier exploits that directly — weights and
// inputs travel as signed level indices (int8, in [-127, 127]) and the
// GEMM accumulates in int32, which is EXACT: |w·x| ≤ 127² = 16129 per
// term, so any fan-in below ~133k columns fits int32 without overflow and
// integer addition is associative.  Unlike the double kernels there is no
// lane-order subtlety — every blocking strategy produces bit-identical
// accumulators, which is what makes B=1 vs batched bit-identity trivial
// for this tier.
//
// The kernels mirror the PR-1 double GEMM in src/nn/matrix.cpp: samples
// pack into column-major panels (pre-widened to int32 so the inner loop is
// a pure vector multiply-add), `target_clones` multiversioning picks
// AVX-512/AVX2/baseline at load time, and blocks dispatch over the shared
// thread pool.
#pragma once

#include <cstddef>
#include <cstdint>

namespace trident::nn {

/// y[b·rows + r] = Σ_c w[r·cols + c] · x[b·cols + c], int32 accumulation.
/// `w` is a row-major (rows × cols) level panel, `x` a row-major
/// (batch × cols) level block, `y` a row-major (batch × rows) output.
/// Requires cols ≤ kInt8GemmMaxCols (int32 overflow headroom).
void int8_gemm(const std::int8_t* w, std::size_t rows, std::size_t cols,
               const std::int8_t* x, std::size_t batch, std::int32_t* y);

/// Transposed variant: y[b·cols + c] = Σ_r w[r·cols + c] · x[b·rows + r]
/// (`x` is batch × rows, `y` is batch × cols).  Requires rows ≤
/// kInt8GemmMaxCols — the fan-in runs over rows here.
void int8_gemm_transposed(const std::int8_t* w, std::size_t rows,
                          std::size_t cols, const std::int8_t* x,
                          std::size_t batch, std::int32_t* y);

/// Largest fan-in the int32 accumulator provably absorbs:
/// floor((2³¹ − 1) / 127²).
inline constexpr std::size_t kInt8GemmMaxCols = 133152;

/// ISA tier the int8 kernels resolve to on this machine ("avx512bw" —
/// the vpmaddwd pair-multiply tier — "avx512f", "avx2" or "baseline");
/// same resolver logic as the double kernels plus the BW check.
[[nodiscard]] const char* int8_kernel_isa();

}  // namespace trident::nn
