#include "nn/cnn.hpp"

#include <algorithm>
#include <cmath>
#include <optional>

#include "common/error.hpp"
#include "telemetry/telemetry.hpp"
#include "telemetry/trace.hpp"

namespace trident::nn {

FeatureMap::FeatureMap(int h, int w, int c, double fill)
    : height(h),
      width(w),
      channels(c),
      data(static_cast<std::size_t>(h) * static_cast<std::size_t>(w) *
               static_cast<std::size_t>(c),
           fill) {
  TRIDENT_REQUIRE(h >= 1 && w >= 1 && c >= 1,
                  "feature map dimensions must be positive");
}

double& FeatureMap::at(int y, int x, int ch) {
  TRIDENT_ASSERT(y >= 0 && y < height && x >= 0 && x < width && ch >= 0 &&
                     ch < channels,
                 "feature map index out of range");
  return data[(static_cast<std::size_t>(y) * static_cast<std::size_t>(width) +
               static_cast<std::size_t>(x)) *
                  static_cast<std::size_t>(channels) +
              static_cast<std::size_t>(ch)];
}

double FeatureMap::at(int y, int x, int ch) const {
  return const_cast<FeatureMap*>(this)->at(y, x, ch);
}

void FeatureMap::validate() const {
  TRIDENT_REQUIRE(data.size() == static_cast<std::size_t>(height) *
                                     static_cast<std::size_t>(width) *
                                     static_cast<std::size_t>(channels),
                  "feature map storage does not match dimensions");
}

Conv2D::Conv2D(int in_c, int out_c, int kernel, int stride, int padding,
               Rng& rng)
    : in_c_(in_c),
      out_c_(out_c),
      kernel_(kernel),
      stride_(stride),
      padding_(padding),
      weights_(Matrix::xavier(
          static_cast<std::size_t>(out_c),
          static_cast<std::size_t>(kernel) * static_cast<std::size_t>(kernel) *
              static_cast<std::size_t>(in_c),
          rng)) {
  TRIDENT_REQUIRE(in_c >= 1 && out_c >= 1, "channel counts must be positive");
  TRIDENT_REQUIRE(kernel >= 1 && stride >= 1 && padding >= 0,
                  "kernel geometry invalid");
}

int Conv2D::out_height(int in_h) const {
  return (in_h + 2 * padding_ - kernel_) / stride_ + 1;
}

int Conv2D::out_width(int in_w) const {
  return (in_w + 2 * padding_ - kernel_) / stride_ + 1;
}

void Conv2D::column_into(const FeatureMap& in, int oy, int ox,
                         std::span<double> col) const {
  std::size_t i = 0;
  for (int ky = 0; ky < kernel_; ++ky) {
    for (int kx = 0; kx < kernel_; ++kx) {
      const int y = oy * stride_ + ky - padding_;
      const int x = ox * stride_ + kx - padding_;
      for (int c = 0; c < in_c_; ++c, ++i) {
        col[i] = (y >= 0 && y < in.height && x >= 0 && x < in.width)
                     ? in.at(y, x, c)
                     : 0.0;
      }
    }
  }
}

std::pair<FeatureMap, Conv2D::Cache> Conv2D::forward(
    const FeatureMap& in, Activation activation,
    MatvecBackend& backend) const {
  std::optional<telemetry::Span> span;
  if (telemetry::enabled()) {
    span.emplace("cnn/conv_forward", "nn");
  }
  in.validate();
  TRIDENT_REQUIRE(in.channels == in_c_, "input channel mismatch");
  const int oh = out_height(in.height);
  const int ow = out_width(in.width);
  TRIDENT_REQUIRE(oh >= 1 && ow >= 1, "convolution output is empty");

  FeatureMap out(oh, ow, out_c_);
  Cache cache;
  cache.input = in;
  cache.pre_activation = FeatureMap(oh, ow, out_c_);

  // Whole-layer im2col block, then one GEMM: the PE streams every spatial
  // position of the layer through the same weight bank (weight-stationary),
  // so a conv layer IS a batch of matvecs over one resident matrix.
  const std::size_t positions =
      static_cast<std::size_t>(oh) * static_cast<std::size_t>(ow);
  cache.columns = Matrix(positions, weights_.cols());
  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      const std::size_t pos = static_cast<std::size_t>(oy) *
                                  static_cast<std::size_t>(ow) +
                              static_cast<std::size_t>(ox);
      column_into(in, oy, ox, cache.columns.row(pos));
    }
  }
  const Matrix h = backend.matmul(weights_, cache.columns);
  for (std::size_t pos = 0; pos < positions; ++pos) {
    const auto hr = h.row(pos);
    const int oy = static_cast<int>(pos) / ow;
    const int ox = static_cast<int>(pos) % ow;
    for (int oc = 0; oc < out_c_; ++oc) {
      const double hv = hr[static_cast<std::size_t>(oc)];
      cache.pre_activation.at(oy, ox, oc) = hv;
      out.at(oy, ox, oc) = apply_activation(activation, hv);
    }
  }
  return {std::move(out), std::move(cache)};
}

FeatureMap Conv2D::backward(const Cache& cache, const FeatureMap& grad_out,
                            Activation activation, double learning_rate,
                            MatvecBackend& backend) {
  std::optional<telemetry::Span> span;
  if (telemetry::enabled()) {
    span.emplace("cnn/conv_backward", "nn");
  }
  const FeatureMap& in = cache.input;
  const int oh = grad_out.height;
  const int ow = grad_out.width;
  TRIDENT_REQUIRE(grad_out.channels == out_c_, "gradient channel mismatch");
  const std::size_t positions =
      static_cast<std::size_t>(oh) * static_cast<std::size_t>(ow);
  TRIDENT_REQUIRE(cache.columns.rows() == positions,
                  "cache does not match gradient dimensions");

  // dL/dh at every position (chain through the activation derivative),
  // packed as one (positions × out_c) block.
  Matrix dh(positions, static_cast<std::size_t>(out_c_));
  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      const std::size_t pos = static_cast<std::size_t>(oy) *
                                  static_cast<std::size_t>(ow) +
                              static_cast<std::size_t>(ox);
      auto dr = dh.row(pos);
      for (int oc = 0; oc < out_c_; ++oc) {
        dr[static_cast<std::size_t>(oc)] =
            grad_out.at(oy, ox, oc) *
            activation_derivative(activation,
                                  cache.pre_activation.at(oy, ox, oc));
      }
    }
  }

  // Input gradient first (uses the pre-update weights, matching standard
  // backprop semantics): one transposed GEMM over every position, then the
  // per-window scatter back into the input map.
  const Matrix col_grads = backend.matmul_transposed(weights_, dh);
  FeatureMap grad_in(in.height, in.width, in_c_);
  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      const std::size_t pos = static_cast<std::size_t>(oy) *
                                  static_cast<std::size_t>(ow) +
                              static_cast<std::size_t>(ox);
      const auto col_grad = col_grads.row(pos);
      std::size_t i = 0;
      for (int ky = 0; ky < kernel_; ++ky) {
        for (int kx = 0; kx < kernel_; ++kx) {
          const int y = oy * stride_ + ky - padding_;
          const int x = ox * stride_ + kx - padding_;
          for (int c = 0; c < in_c_; ++c, ++i) {
            if (y >= 0 && y < in.height && x >= 0 && x < in.width) {
              grad_in.at(y, x, c) += col_grad[i];
            }
          }
        }
      }
    }
  }

  // Weight update: the conv weight gradient is the sum over positions;
  // update_batch applies the outer products sequentially in spatial order,
  // which is the in-situ hardware's behaviour.
  backend.update_batch(weights_, dh, cache.columns, learning_rate);
  return grad_in;
}

void Conv2D::apply_gradient(const Cache& cache, const FeatureMap& grad_out,
                            Activation activation, double learning_rate,
                            MatvecBackend& backend) {
  const int oh = grad_out.height;
  const int ow = grad_out.width;
  TRIDENT_REQUIRE(grad_out.channels == out_c_, "gradient channel mismatch");
  const std::size_t positions =
      static_cast<std::size_t>(oh) * static_cast<std::size_t>(ow);
  TRIDENT_REQUIRE(cache.columns.rows() == positions,
                  "cache does not match gradient dimensions");
  Matrix dh(positions, static_cast<std::size_t>(out_c_));
  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      const std::size_t pos = static_cast<std::size_t>(oy) *
                                  static_cast<std::size_t>(ow) +
                              static_cast<std::size_t>(ox);
      auto dr = dh.row(pos);
      for (int oc = 0; oc < out_c_; ++oc) {
        dr[static_cast<std::size_t>(oc)] =
            grad_out.at(oy, ox, oc) *
            activation_derivative(activation,
                                  cache.pre_activation.at(oy, ox, oc));
      }
    }
  }
  backend.update_batch(weights_, dh, cache.columns, learning_rate);
}

MaxPool2D::MaxPool2D(int kernel, int stride) : kernel_(kernel), stride_(stride) {
  TRIDENT_REQUIRE(kernel >= 1 && stride >= 1, "pool geometry invalid");
}

std::pair<FeatureMap, MaxPool2D::Cache> MaxPool2D::forward(
    const FeatureMap& in) const {
  in.validate();
  const int oh = (in.height - kernel_) / stride_ + 1;
  const int ow = (in.width - kernel_) / stride_ + 1;
  TRIDENT_REQUIRE(oh >= 1 && ow >= 1, "pool output is empty");

  FeatureMap out(oh, ow, in.channels);
  Cache cache;
  cache.in_h = in.height;
  cache.in_w = in.width;
  cache.channels = in.channels;
  cache.argmax.resize(out.size());

  for (int oy = 0; oy < oh; ++oy) {
    for (int ox = 0; ox < ow; ++ox) {
      for (int c = 0; c < in.channels; ++c) {
        double best = -1e300;
        std::size_t best_idx = 0;
        for (int ky = 0; ky < kernel_; ++ky) {
          for (int kx = 0; kx < kernel_; ++kx) {
            const int y = oy * stride_ + ky;
            const int x = ox * stride_ + kx;
            const double v = in.at(y, x, c);
            if (v > best) {
              best = v;
              best_idx =
                  (static_cast<std::size_t>(y) *
                       static_cast<std::size_t>(in.width) +
                   static_cast<std::size_t>(x)) *
                      static_cast<std::size_t>(in.channels) +
                  static_cast<std::size_t>(c);
            }
          }
        }
        out.at(oy, ox, c) = best;
        cache.argmax[(static_cast<std::size_t>(oy) *
                          static_cast<std::size_t>(ow) +
                      static_cast<std::size_t>(ox)) *
                         static_cast<std::size_t>(in.channels) +
                     static_cast<std::size_t>(c)] = best_idx;
      }
    }
  }
  return {std::move(out), std::move(cache)};
}

FeatureMap MaxPool2D::backward(const Cache& cache,
                               const FeatureMap& grad_out) const {
  TRIDENT_REQUIRE(cache.argmax.size() == grad_out.size(),
                  "pool cache does not match gradient");
  FeatureMap grad_in(cache.in_h, cache.in_w, cache.channels);
  for (std::size_t i = 0; i < grad_out.data.size(); ++i) {
    grad_in.data[cache.argmax[i]] += grad_out.data[i];
  }
  return grad_in;
}

SmallCnn::SmallCnn(const Config& config, Rng& rng)
    : config_(config),
      conv1_(config.input_channels, config.conv1_channels, 3, 1, 1, rng),
      pool1_(2, 2),
      conv2_(config.conv1_channels, config.conv2_channels, 3, 1, 1, rng),
      pool2_(2, 2),
      flat_features_(0) {
  TRIDENT_REQUIRE(config.input_hw % 4 == 0,
                  "input size must survive two 2x2 pools");
  const int after = config.input_hw / 4;
  flat_features_ = after * after * config.conv2_channels;
  fc_ = Matrix::xavier(static_cast<std::size_t>(config.classes),
                       static_cast<std::size_t>(flat_features_), rng);
}

Vector SmallCnn::predict(const FeatureMap& image,
                         MatvecBackend& backend) const {
  auto [a1, c1] = conv1_.forward(image, config_.activation, backend);
  auto [p1, pc1] = pool1_.forward(a1);
  auto [a2, c2] = conv2_.forward(p1, config_.activation, backend);
  auto [p2, pc2] = pool2_.forward(a2);
  return backend.matvec(fc_, p2.data);
}

double SmallCnn::train_step(const FeatureMap& image, int label,
                            double learning_rate, MatvecBackend& backend) {
  std::optional<telemetry::Span> span;
  if (telemetry::enabled()) {
    span.emplace("cnn/train_step", "train");
  }
  auto [a1, c1] = conv1_.forward(image, config_.activation, backend);
  auto [p1, pc1] = pool1_.forward(a1);
  auto [a2, c2] = conv2_.forward(p1, config_.activation, backend);
  auto [p2, pc2] = pool2_.forward(a2);
  const Vector logits = backend.matvec(fc_, p2.data);

  const LossGrad lg = softmax_cross_entropy(logits, label);

  // Dense layer: propagate first, then update (Eqs. 2-3 ordering).
  const Vector grad_flat = backend.matvec_transposed(fc_, lg.grad);
  backend.rank1_update(fc_, lg.grad, p2.data, learning_rate);

  FeatureMap grad_p2(p2.height, p2.width, p2.channels);
  grad_p2.data = grad_flat;
  const FeatureMap grad_a2 = pool2_.backward(pc2, grad_p2);
  const FeatureMap grad_p1 = conv2_.backward(c2, grad_a2, config_.activation,
                                             learning_rate, backend);
  const FeatureMap grad_a1 = pool1_.backward(pc1, grad_p1);
  (void)conv1_.backward(c1, grad_a1, config_.activation, learning_rate,
                        backend);
  return lg.loss;
}

SmallCnn::TraceState SmallCnn::forward_trace(const FeatureMap& image,
                                             MatvecBackend& backend) const {
  TraceState state;
  auto [a1, c1] = conv1_.forward(image, config_.activation, backend);
  state.conv1_cache = std::move(c1);
  auto [p1, pc1] = pool1_.forward(a1);
  state.pool1_cache = std::move(pc1);
  auto [a2, c2] = conv2_.forward(p1, config_.activation, backend);
  state.conv2_cache = std::move(c2);
  auto [p2, pc2] = pool2_.forward(a2);
  state.pool2_cache = std::move(pc2);
  state.logits = backend.matvec(fc_, p2.data);
  state.pooled2 = std::move(p2);
  return state;
}

double SmallCnn::evaluate(const std::vector<FeatureMap>& images,
                          const std::vector<int>& labels,
                          MatvecBackend& backend) const {
  TRIDENT_REQUIRE(images.size() == labels.size() && !images.empty(),
                  "evaluation set malformed");
  std::size_t correct = 0;
  for (std::size_t i = 0; i < images.size(); ++i) {
    const Vector logits = predict(images[i], backend);
    if (argmax(logits) == static_cast<std::size_t>(labels[i])) {
      ++correct;
    }
  }
  return static_cast<double>(correct) / static_cast<double>(images.size());
}

ImageDataset striped_images(int samples, int classes, int hw, double noise,
                            Rng& rng) {
  TRIDENT_REQUIRE(samples >= 1 && classes >= 2 && classes <= 4,
                  "striped_images supports 2-4 orientation classes");
  TRIDENT_REQUIRE(hw >= 4 && noise >= 0.0, "image parameters invalid");
  ImageDataset d;
  d.classes = classes;
  for (int i = 0; i < samples; ++i) {
    const int label = i % classes;
    FeatureMap img(hw, hw, 1);
    for (int y = 0; y < hw; ++y) {
      for (int x = 0; x < hw; ++x) {
        int phase = 0;
        switch (label) {
          case 0: phase = y; break;          // horizontal stripes
          case 1: phase = x; break;          // vertical stripes
          case 2: phase = x + y; break;      // diagonal
          default: phase = x - y + hw; break;  // anti-diagonal
        }
        double v = (phase % 3 == 0) ? 1.0 : 0.0;
        v += rng.normal(0.0, noise);
        img.at(y, x, 0) = std::clamp(v, 0.0, 1.0);
      }
    }
    d.images.push_back(std::move(img));
    d.labels.push_back(label);
  }
  return d;
}

ImageDataset shape_images(int samples, int hw, double noise, Rng& rng) {
  TRIDENT_REQUIRE(samples >= 1 && hw >= 8 && noise >= 0.0,
                  "shape_images parameters invalid");
  const auto motif = [](int cls, int y, int x) -> bool {
    switch (cls) {
      case 0:
        return y == 2 || x == 2;  // cross
      case 1:
        return y == 0 || y == 4 || x == 0 || x == 4;  // hollow square
      default:
        return y == x;  // diagonal
    }
  };
  ImageDataset d;
  d.classes = 3;
  for (int i = 0; i < samples; ++i) {
    const int label = i % 3;
    FeatureMap img(hw, hw, 1);
    for (double& v : img.data) {
      v = std::clamp(rng.normal(0.0, noise), 0.0, 1.0);
    }
    const int oy = static_cast<int>(rng.uniform_int(0, hw - 5));
    const int ox = static_cast<int>(rng.uniform_int(0, hw - 5));
    for (int y = 0; y < 5; ++y) {
      for (int x = 0; x < 5; ++x) {
        if (motif(label, y, x)) {
          img.at(oy + y, ox + x, 0) =
              std::clamp(1.0 + rng.normal(0.0, noise), 0.0, 1.0);
        }
      }
    }
    d.images.push_back(std::move(img));
    d.labels.push_back(label);
  }
  return d;
}

}  // namespace trident::nn
